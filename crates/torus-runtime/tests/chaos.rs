//! Chaos suite (feature `chaos`): random torus shapes under random
//! seeded *recoverable* fault plans must still deliver exactly what the
//! verified counting executor delivers, block-for-block, bit-exact — the
//! wire can lie, the collective cannot.
//!
//! Run with `cargo test -p torus-runtime --features chaos`.

#![cfg(feature = "chaos")]

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use torus_runtime::{pattern_payload, FaultPlan, RetryPolicy, Runtime, RuntimeConfig};
use torus_topology::{NodeId, TorusShape};

/// Random 2D/3D shapes: extents 2..=8 (canonical forms stay ≤ 512 nodes
/// after padding, keeping thread fan-out reasonable).
fn arb_shape() -> impl Strategy<Value = TorusShape> {
    prop::collection::vec(2u32..=8, 2..=3).prop_map(|dims| TorusShape::new(&dims).expect("valid"))
}

/// Random recoverable fault plans: a seed plus modest rates of every
/// message-level fault. Worker kills are excluded — those are
/// *unrecoverable* by design and covered by the abort matrix in
/// `fault_recovery.rs`.
fn arb_recoverable_plan() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0.0f64..=0.3,
        0.0f64..=0.2,
        0.0f64..=0.2,
        0.0f64..=0.2,
    )
        .prop_map(|(seed, drop, corrupt, truncate, duplicate)| {
            FaultPlan::seeded(seed)
                .with_drop_rate(drop)
                .with_corrupt_rate(corrupt)
                .with_truncate_rate(truncate)
                .with_duplicate_rate(duplicate)
        })
}

/// Tight deadlines: chaos cases inject hundreds of timeouts, so the
/// production half-second default would take minutes per case.
fn quick_retry() -> RetryPolicy {
    RetryPolicy::default()
        .with_deadline(Duration::from_millis(20))
        .with_backoff(Duration::from_micros(200))
}

/// The counting executor's verified delivery map for `shape` under the
/// pattern payload: `map[d]` = `(src, payload)` sorted by source.
fn executor_deliveries(shape: &TorusShape, len: usize) -> Vec<Vec<(NodeId, Bytes)>> {
    let (report, deliveries) = alltoall_core::Exchange::new(shape)
        .expect("shape accepted")
        .run_with_payloads(&cost_model::CommParams::unit(), |s, d| {
            pattern_payload(s, d, len)
        })
        .expect("executor run succeeds");
    assert!(report.verified);
    deliveries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn chaotic_runtime_matches_counting_executor(
        shape in arb_shape(),
        plan in arb_recoverable_plan(),
        len in 1usize..=64,
    ) {
        let runtime = Runtime::new(
            &shape,
            RuntimeConfig::default()
                .with_workers(4)
                .with_block_bytes(len)
                .with_faults(plan)
                .with_retry(quick_retry()),
        )
        .unwrap();
        let (report, got) = runtime
            .run_with_payloads(|s, d| pattern_payload(s, d, len))
            .unwrap();
        prop_assert!(report.verified, "{shape}");
        prop_assert!(report.failure.is_none());
        let want = executor_deliveries(&shape, len);
        prop_assert_eq!(got, want, "deliveries diverge on {}", shape);
    }

    #[test]
    fn chaos_counters_are_seed_reproducible(
        shape in arb_shape(),
        seed in any::<u64>(),
    ) {
        let mk = || {
            Runtime::new(
                &shape,
                RuntimeConfig::default()
                    .with_workers(4)
                    .with_block_bytes(16)
                    .with_faults(
                        FaultPlan::seeded(seed)
                            .with_drop_rate(0.25)
                            .with_corrupt_rate(0.15),
                    )
                    .with_retry(quick_retry()),
            )
            .unwrap()
            .run()
            .unwrap()
        };
        let a = mk();
        let b = mk();
        prop_assert!(a.verified && b.verified);
        prop_assert_eq!(a.faults, b.faults, "counters diverged on {}", shape);
        prop_assert_eq!(a.fault_events, b.fault_events);
    }
}
