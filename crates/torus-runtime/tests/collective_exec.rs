//! Byte-real collective execution matrix.
//!
//! Every collective op must deliver real bytes end-to-end — bit-exact
//! against the serial reference replay — across shapes, roots, and
//! worker counts; reductions must match an *independent* scalar
//! reference (not just the plan's own replay); and the fault-tolerance
//! machinery (drop/corrupt recovery, cancellation, worker kills) must
//! behave exactly as it does for all-to-all.

use std::time::Duration;

use bytes::Bytes;
use proptest::prelude::*;
use torus_runtime::{
    pattern_payload, CancelToken, CollectiveOp, CollectiveRuntime, Dtype, FailureReason, FaultPlan,
    ReduceOp, RetryPolicy, RuntimeConfig, RuntimeError, WorkerFaultKind,
};
use torus_topology::TorusShape;

fn rt(dims: &[u32], op: CollectiveOp, config: RuntimeConfig) -> CollectiveRuntime {
    CollectiveRuntime::new(&TorusShape::new(dims).unwrap(), op, config).unwrap()
}

/// Tight deadlines so injected timeouts cost milliseconds.
fn quick_retry() -> RetryPolicy {
    RetryPolicy::default()
        .with_deadline(Duration::from_millis(20))
        .with_backoff(Duration::from_micros(200))
}

/// Deterministic per-identity u64-lane payload.
fn u64_payload(id: u32, block_bytes: usize) -> Bytes {
    let mut out = Vec::with_capacity(block_bytes);
    for lane in 0..block_bytes / 8 {
        let v = (u64::from(id))
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(lane as u64);
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

/// Deterministic per-identity f32-lane payload with tame magnitudes.
fn f32_payload(id: u32, block_bytes: usize) -> Bytes {
    let mut out = Vec::with_capacity(block_bytes);
    for lane in 0..block_bytes / 4 {
        let v = ((id as usize * 31 + lane * 7) % 1000) as f32 * 0.25 - 60.0;
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

#[test]
fn every_op_delivers_byte_real_across_shapes_and_workers() {
    let shapes: &[&[u32]] = &[&[2], &[5], &[4, 4], &[3, 5], &[2, 3, 4]];
    for dims in shapes {
        let nn: u32 = dims.iter().product();
        let ops = [
            CollectiveOp::Broadcast { root: nn - 1 },
            CollectiveOp::Scatter { root: 0 },
            CollectiveOp::Gather { root: nn / 2 },
            CollectiveOp::Allgather,
            CollectiveOp::Reduce {
                root: 0,
                op: ReduceOp::Sum,
                dtype: Dtype::U64,
            },
            CollectiveOp::Allreduce {
                op: ReduceOp::Max,
                dtype: Dtype::U64,
            },
        ];
        for op in ops {
            for workers in [1, 3, 8] {
                let r = rt(dims, op, RuntimeConfig::default().with_workers(workers));
                let (report, deliveries) = r.run().unwrap_or_else(|e| {
                    panic!("{op:?} on {dims:?} with {workers} workers failed: {e}")
                });
                assert!(report.verified);
                assert_eq!(deliveries.len(), nn as usize);
                // Spot-check the op contract beyond the internal verify.
                match op {
                    CollectiveOp::Broadcast { root } => {
                        let want = pattern_payload(root, root, report.block_bytes);
                        for d in &deliveries {
                            assert_eq!(d.len(), 1);
                            assert_eq!(d[0].0, root);
                            assert_eq!(d[0].1, want);
                        }
                    }
                    CollectiveOp::Scatter { .. } => {
                        for (u, d) in deliveries.iter().enumerate() {
                            assert_eq!(d.len(), 1);
                            assert_eq!(d[0].0, u as u32);
                        }
                    }
                    CollectiveOp::Gather { root } => {
                        for (u, d) in deliveries.iter().enumerate() {
                            let want = if u as u32 == root { nn as usize } else { 0 };
                            assert_eq!(d.len(), want);
                        }
                    }
                    CollectiveOp::Allgather => {
                        for d in &deliveries {
                            assert_eq!(d.len(), nn as usize);
                        }
                    }
                    CollectiveOp::Reduce { root, .. } => {
                        for (u, d) in deliveries.iter().enumerate() {
                            let want = usize::from(u as u32 == root);
                            assert_eq!(d.len(), want);
                        }
                    }
                    CollectiveOp::Allreduce { .. } => {
                        let first = &deliveries[0];
                        assert_eq!(first.len(), 1);
                        for d in &deliveries {
                            assert_eq!(d, first);
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn allgather_is_bit_exact_per_source() {
    let r = rt(&[3, 4], CollectiveOp::Allgather, RuntimeConfig::default());
    let (report, deliveries) = r.run().unwrap();
    assert!(report.verified);
    for d in &deliveries {
        for (key, bytes) in d {
            assert_eq!(*bytes, pattern_payload(*key, *key, report.block_bytes));
        }
    }
}

#[test]
fn broadcast_survives_seeded_drop_and_corrupt_faults_bit_exact() {
    // Satellite 3's wire-fault lane: every transmission both dropped and
    // corrupted on first attempt; recovery must still deliver the root's
    // exact bytes everywhere and the counters must show it worked.
    let cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(
            FaultPlan::seeded(11)
                .with_drop_rate(0.4)
                .with_corrupt_rate(0.4),
        )
        .with_retry(quick_retry());
    let r = rt(&[4, 4], CollectiveOp::Broadcast { root: 5 }, cfg);
    let (report, deliveries) = r.run().unwrap();
    assert!(report.verified);
    assert!(report.faults.injected_drops > 0, "seed must inject drops");
    assert!(
        report.faults.injected_corruptions > 0,
        "seed must inject corruptions"
    );
    assert!(report.faults.recovered > 0);
    let want = pattern_payload(5, 5, report.block_bytes);
    for d in &deliveries {
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].1, want, "recovered broadcast must be bit-exact");
    }
}

#[test]
fn allreduce_survives_seeded_faults_reduction_exact() {
    // The combining receive must stay exactly-once under duplicates and
    // resends: a double fold would corrupt the sum silently, so this is
    // the regression test for stale-sequence discarding on the combining
    // path.
    let cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(
            FaultPlan::seeded(7)
                .with_drop_rate(0.3)
                .with_duplicate_rate(0.3)
                .with_corrupt_rate(0.2),
        )
        .with_retry(quick_retry());
    let op = CollectiveOp::Allreduce {
        op: ReduceOp::Sum,
        dtype: Dtype::U64,
    };
    let r = rt(&[4, 4], op, cfg);
    let m = r.config().block_bytes;
    let (report, deliveries) = r.run_with_payloads(|id| u64_payload(id, m)).unwrap();
    assert!(report.verified);
    assert!(report.faults.injected_drops + report.faults.injected_duplicates > 0);
    // Independent scalar reference: wrapping u64 sum over all nodes.
    for lane in 0..m / 8 {
        let mut want = 0u64;
        for node in 0..16u32 {
            let p = u64_payload(node, m);
            want = want.wrapping_add(u64::from_le_bytes(
                p[lane * 8..lane * 8 + 8].try_into().unwrap(),
            ));
        }
        for d in &deliveries {
            let got = u64::from_le_bytes(d[0].1[lane * 8..lane * 8 + 8].try_into().unwrap());
            assert_eq!(got, want, "lane {lane} sum corrupted by fault recovery");
        }
    }
}

#[test]
fn cancel_token_aborts_stalled_collective() {
    let token = CancelToken::new();
    let cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(FaultPlan::seeded(1).with_worker_fault(
            0,
            0,
            WorkerFaultKind::StallMicros(5_000_000),
        ))
        .with_retry(
            RetryPolicy::default()
                .with_deadline(Duration::from_secs(30))
                .with_max_retries(64),
        )
        .with_cancel_token(token.clone());
    let r = rt(&[4, 4], CollectiveOp::Allgather, cfg);
    let t0 = std::time::Instant::now();
    let handle = std::thread::spawn(move || r.run());
    std::thread::sleep(Duration::from_millis(50));
    token.cancel();
    let err = handle.join().unwrap().unwrap_err();
    match err {
        RuntimeError::Aborted { failure, report } => {
            assert_eq!(failure.reason, FailureReason::Cancelled);
            assert!(!report.verified);
        }
        other => panic!("expected Aborted, got {other}"),
    }
    assert!(
        t0.elapsed() < Duration::from_secs(4),
        "cancel must interrupt the stall, took {:?}",
        t0.elapsed()
    );
}

#[test]
fn killed_worker_aborts_collective_with_typed_failure() {
    let cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(FaultPlan::default().with_worker_fault(0, 2, WorkerFaultKind::Kill))
        .with_retry(quick_retry().with_max_retries(2));
    let op = CollectiveOp::Allreduce {
        op: ReduceOp::Sum,
        dtype: Dtype::U64,
    };
    let err = rt(&[4, 4], op, cfg).run().unwrap_err();
    match err {
        RuntimeError::Aborted { failure, report } => {
            assert!(matches!(
                failure.reason,
                FailureReason::WorkerKilled { node: 2 } | FailureReason::RetryExhausted { .. }
            ));
            assert!(!report.verified);
            assert_eq!(report.faults.injected_kills, 1);
        }
        other => panic!("expected Aborted, got {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite 3: byte-real allreduce(sum, u64) matches the
    /// independent wrapping scalar fold for every shape up to 4x4x4 and
    /// any worker count — bit-exact, order-independent.
    #[test]
    fn allreduce_sum_u64_matches_scalar_reference(
        dims in prop::collection::vec(1u32..=4, 1..=3),
        workers in 1usize..=6,
    ) {
        let nn: u32 = dims.iter().product();
        let m = 32usize;
        let op = CollectiveOp::Allreduce { op: ReduceOp::Sum, dtype: Dtype::U64 };
        let r = rt(&dims, op, RuntimeConfig::default().with_workers(workers).with_block_bytes(m));
        let (report, deliveries) = r.run_with_payloads(|id| u64_payload(id, m)).unwrap();
        prop_assert!(report.verified);
        for lane in 0..m / 8 {
            let mut want = 0u64;
            for node in 0..nn {
                let p = u64_payload(node, m);
                want = want.wrapping_add(u64::from_le_bytes(
                    p[lane * 8..lane * 8 + 8].try_into().unwrap(),
                ));
            }
            for d in &deliveries {
                prop_assert_eq!(d.len(), 1);
                let got = u64::from_le_bytes(d[0].1[lane * 8..lane * 8 + 8].try_into().unwrap());
                prop_assert_eq!(got, want);
            }
        }
    }

    /// Satellite 3: byte-real allreduce(sum, f32) for every shape up to
    /// 4x4x4. All nodes must agree bit-for-bit regardless of worker
    /// count (the fold order is schedule-determined, not
    /// thread-determined), and the result must match the f64 scalar
    /// reference within float tolerance.
    #[test]
    fn allreduce_sum_f32_matches_scalar_reference(
        dims in prop::collection::vec(1u32..=4, 1..=3),
        workers in 1usize..=6,
    ) {
        let nn: u32 = dims.iter().product();
        let m = 32usize;
        let op = CollectiveOp::Allreduce { op: ReduceOp::Sum, dtype: Dtype::F32 };
        let r = rt(&dims, op, RuntimeConfig::default().with_workers(workers).with_block_bytes(m));
        let (report, deliveries) = r.run_with_payloads(|id| f32_payload(id, m)).unwrap();
        prop_assert!(report.verified);
        let first = &deliveries[0][0].1;
        for d in &deliveries {
            prop_assert_eq!(d.len(), 1);
            prop_assert_eq!(&d[0].1, first, "allreduce result must be identical everywhere");
        }
        for lane in 0..m / 4 {
            let mut want = 0f64;
            for node in 0..nn {
                let p = f32_payload(node, m);
                want += f64::from(f32::from_le_bytes(
                    p[lane * 4..lane * 4 + 4].try_into().unwrap(),
                ));
            }
            let got = f64::from(f32::from_le_bytes(
                first[lane * 4..lane * 4 + 4].try_into().unwrap(),
            ));
            prop_assert!(
                (got - want).abs() <= want.abs().max(1.0) * 1e-4,
                "lane {}: got {} want {}", lane, got, want
            );
        }
    }

    /// Reduce and allreduce agree with each other for min/max (which are
    /// order-independent), across dtypes.
    #[test]
    fn reduce_minmax_agrees_with_allreduce(
        dims in prop::collection::vec(1u32..=4, 1..=2),
        use_max in any::<bool>(),
    ) {
        let nn: u32 = dims.iter().product();
        let rop = if use_max { ReduceOp::Max } else { ReduceOp::Min };
        let m = 32usize;
        let cfg = || RuntimeConfig::default().with_workers(4).with_block_bytes(m);
        let red = rt(&dims, CollectiveOp::Reduce { root: nn - 1, op: rop, dtype: Dtype::U64 }, cfg());
        let (_, rd) = red.run_with_payloads(|id| u64_payload(id, m)).unwrap();
        let all = rt(&dims, CollectiveOp::Allreduce { op: rop, dtype: Dtype::U64 }, cfg());
        let (_, ad) = all.run_with_payloads(|id| u64_payload(id, m)).unwrap();
        prop_assert_eq!(&rd[(nn - 1) as usize][0].1, &ad[0][0].1);
    }
}
