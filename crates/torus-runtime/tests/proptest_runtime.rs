//! Property-based equivalence: the byte-moving runtime delivers exactly
//! what the verified counting executor delivers, block-for-block, with
//! bit-exact payloads, for random 2D/3D shapes (exact and padded alike).
//!
//! Payloads are the `(src, dst)`-keyed splitmix64 hash pattern, so any
//! corruption, cross-wiring, or truncation is detected by the comparison.

use bytes::Bytes;
use proptest::prelude::*;
use torus_runtime::{pattern_payload, Runtime, RuntimeConfig};
use torus_topology::{NodeId, TorusShape};

/// Random 2D/3D shapes: extents 2..=8 (canonical forms stay ≤ 512 nodes
/// after padding, keeping thread fan-out reasonable).
fn arb_shape() -> impl Strategy<Value = TorusShape> {
    prop::collection::vec(2u32..=8, 2..=3).prop_map(|dims| TorusShape::new(&dims).expect("valid"))
}

/// The counting executor's verified delivery map for `shape` under the
/// pattern payload: `map[d]` = `(src, payload)` sorted by source.
fn executor_deliveries(shape: &TorusShape, len: usize) -> Vec<Vec<(NodeId, Bytes)>> {
    let (report, deliveries) = alltoall_core::Exchange::new(shape)
        .expect("shape accepted")
        .run_with_payloads(&cost_model::CommParams::unit(), |s, d| {
            pattern_payload(s, d, len)
        })
        .expect("executor run succeeds");
    assert!(report.verified);
    deliveries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn runtime_matches_counting_executor(shape in arb_shape(), len in 1usize..=96) {
        let runtime = Runtime::new(
            &shape,
            RuntimeConfig::default().with_workers(4).with_block_bytes(len),
        )
        .unwrap();
        let (report, got) = runtime
            .run_with_payloads(|s, d| pattern_payload(s, d, len))
            .unwrap();
        prop_assert!(report.verified, "{shape}");
        let want = executor_deliveries(&shape, len);
        prop_assert_eq!(got, want, "deliveries diverge on {}", shape);
    }

    #[test]
    fn runtime_invariant_across_worker_counts(shape in arb_shape(), workers in 1usize..=9) {
        let len = 24;
        let mk = |w: usize| {
            Runtime::new(
                &shape,
                RuntimeConfig::default().with_workers(w).with_block_bytes(len),
            )
            .unwrap()
            .run_with_payloads(|s, d| pattern_payload(s, d, len))
            .unwrap()
        };
        let (r_one, d_one) = mk(1);
        let (r_many, d_many) = mk(workers);
        prop_assert!(r_one.verified && r_many.verified);
        prop_assert_eq!(d_one, d_many, "worker count changed results on {}", shape);
        prop_assert_eq!(r_one.wire_bytes, r_many.wire_bytes);
        prop_assert_eq!(r_one.messages, r_many.messages);
    }
}
