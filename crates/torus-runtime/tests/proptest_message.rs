//! Property-based coverage of the wire codecs: the contiguous and the
//! scatter-gather encoders must round-trip arbitrary block sets (zero
//! blocks and zero-length payloads included), agree byte-for-byte on the
//! canonical layout, and reject — without panicking — every truncation,
//! dropped or shrunken payload segment, and single-byte corruption.

use alltoall_core::Block;
use bytes::Bytes;
use proptest::prelude::*;
use torus_runtime::{
    decode_gathered, decode_message, encode_gathered, encode_message, WireError, WireFrame,
};
use torus_topology::MAX_DIMS;

/// Arbitrary block sets: random endpoints, shift vectors, and payloads of
/// length 0..40 (zero-length payloads are legal frames and must survive).
fn arb_blocks() -> impl Strategy<Value = Vec<Block<Bytes>>> {
    prop::collection::vec(
        (
            any::<u32>(),
            any::<u32>(),
            any::<[u8; MAX_DIMS]>(),
            prop::collection::vec(any::<u8>(), 0..40),
        ),
        0..8,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(src, dst, shifts, payload)| {
                let mut b = Block::with_payload(src, dst, Bytes::from(payload));
                b.shifts = shifts;
                b
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn contiguous_round_trips(seq in any::<u32>(), blocks in arb_blocks()) {
        let wire = encode_message(seq, &blocks);
        let (got_seq, got_blocks) = decode_message(&wire).expect("self-encoded frame decodes");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got_blocks, blocks);
    }

    #[test]
    fn gathered_round_trips_and_recycles(seq in any::<u32>(), blocks in arb_blocks()) {
        let frame = encode_gathered(seq, &blocks, Default::default(), Vec::new());
        let WireFrame::Gathered { framing, mut payloads } = frame else {
            panic!("encode_gathered returns the gathered shape");
        };
        let mut out = Vec::new();
        let got_seq =
            decode_gathered(&framing, &mut payloads, &mut out).expect("self-encoded frame decodes");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(out, blocks);
        prop_assert!(payloads.is_empty(), "segments are drained for vec recycling");
    }

    #[test]
    fn both_shapes_agree_on_the_canonical_layout(seq in any::<u32>(), blocks in arb_blocks()) {
        let contiguous = encode_message(seq, &blocks);
        let gathered = encode_gathered(seq, &blocks, Default::default(), Vec::new());
        prop_assert_eq!(gathered.wire_len(), contiguous.len());
        prop_assert_eq!(gathered.to_bytes(), contiguous.clone());
        let (got_seq, got_blocks) = gathered.decode().expect("gathered frame decodes in place");
        prop_assert_eq!(got_seq, seq);
        prop_assert_eq!(got_blocks, blocks);
        // And a materialized gathered frame decodes through the contiguous
        // decoder: the shapes are interchangeable on the wire.
        prop_assert_eq!(decode_message(&gathered.to_bytes()), decode_message(&contiguous));
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic(seq in any::<u32>(), blocks in arb_blocks()) {
        let wire = encode_message(seq, &blocks);
        for cut in 0..wire.len() {
            let prefix = wire.slice(0..cut);
            prop_assert!(
                decode_message(&prefix).is_err(),
                "a {cut}-byte prefix of a {}-byte frame must not decode",
                wire.len()
            );
        }
    }

    #[test]
    fn any_corrupt_byte_is_rejected(
        seq in any::<u32>(),
        blocks in arb_blocks(),
        pos in any::<prop::sample::Index>(),
        flip in 1u8..,
    ) {
        let wire = encode_message(seq, &blocks);
        let mut damaged = wire.to_vec();
        let pos = pos.index(damaged.len());
        damaged[pos] ^= flip;
        prop_assert!(
            decode_message(&Bytes::from(damaged)).is_err(),
            "flipping byte {pos} must fail integrity checks"
        );
    }

    #[test]
    fn gathered_structural_damage_is_rejected(
        seq in any::<u32>(),
        blocks in arb_blocks(),
        pick in any::<prop::sample::Index>(),
    ) {
        let WireFrame::Gathered { framing, payloads } =
            encode_gathered(seq, &blocks, Default::default(), Vec::new())
        else {
            panic!("encode_gathered returns the gathered shape");
        };

        // Framing cut anywhere: structural error, nothing appended.
        for cut in 0..framing.len() {
            let mut segs = payloads.clone();
            let mut out = Vec::new();
            prop_assert!(decode_gathered(&framing[..cut], &mut segs, &mut out).is_err());
            prop_assert!(out.is_empty(), "failed decode must not deliver blocks");
        }

        if !blocks.is_empty() {
            // A dropped payload segment is a segment-count mismatch.
            let mut segs = payloads.clone();
            let dropped = pick.index(segs.len());
            segs.remove(dropped);
            let mut out = Vec::new();
            prop_assert_eq!(
                decode_gathered(&framing, &mut segs, &mut out),
                Err(WireError::Segments { got: blocks.len() - 1, want: blocks.len() })
            );

            // A shrunken segment contradicts its declared length.
            let victim = pick.index(blocks.len());
            if !payloads[victim].is_empty() {
                let mut segs = payloads.clone();
                segs[victim] = segs[victim].slice(0..segs[victim].len() - 1);
                let mut out = Vec::new();
                let got = decode_gathered(&framing, &mut segs, &mut out);
                prop_assert!(
                    matches!(got, Err(WireError::Truncated { .. })),
                    "shrunken segment must report truncation, got {got:?}"
                );
            }
        }
    }
}
