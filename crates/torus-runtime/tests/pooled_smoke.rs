//! Smoke tests for the persistent-pool execution path: `run_on` /
//! `run_pooled` must match the spawn path bit-for-bit and leave the pool
//! reusable afterwards.

use torus_runtime::{pattern_payload, PoolBank, Runtime, RuntimeConfig, WorkerPool};
use torus_topology::TorusShape;

#[test]
fn pooled_run_verifies_like_spawn() {
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let cfg = RuntimeConfig::default()
        .with_workers(2)
        .with_block_bytes(64);
    let rt = Runtime::new(&shape, cfg).unwrap();
    let spawn = rt.run().unwrap();
    let pool = WorkerPool::new(2);
    let pooled = rt.run_on(&pool).unwrap();
    assert!(pooled.verified);
    assert_eq!(pooled.wire_bytes, spawn.wire_bytes);
    assert_eq!(pooled.messages, spawn.messages);
    assert_eq!(pooled.nodes, spawn.nodes);
    pool.shutdown();
}

#[test]
fn sequential_pooled_runs_reuse_threads_and_warm_pools() {
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let cfg = RuntimeConfig::default()
        .with_workers(2)
        .with_block_bytes(64);
    let rt = Runtime::new(&shape, cfg).unwrap();
    let pool = WorkerPool::new(2);
    let bank = PoolBank::new();
    let (first, _) = rt
        .run_pooled(&pool, Some(&bank), |s, d| pattern_payload(s, d, 64))
        .unwrap();
    assert!(first.verified);
    assert_eq!(bank.len(), 2, "both workers banked their frame pools");
    let (second, _) = rt
        .run_pooled(&pool, Some(&bank), |s, d| pattern_payload(s, d, 64))
        .unwrap();
    assert!(second.verified);
    assert!(
        second.allocations < first.allocations,
        "warm pools must cut allocations ({} -> {})",
        first.allocations,
        second.allocations
    );
    pool.shutdown();
}
