//! Fault-injection and recovery matrix for the byte-moving runtime.
//!
//! Recoverable faults (drops, corruption, truncation, duplication,
//! over-deadline delays, worker stalls) must be healed by the deadline +
//! retry path with bit-exact delivery; unrecoverable faults (killed
//! workers, exhausted retry budgets) must abort with a typed error and a
//! partial report — never a panic, a hang, or a leaked thread. Every
//! abort case runs under a watchdog so a deadlock fails fast instead of
//! wedging the suite.

use std::time::Duration;

use torus_runtime::{
    FailureReason, FaultKind, FaultPlan, OnFailure, RetryPolicy, Runtime, RuntimeConfig,
    RuntimeError, WorkerFaultKind,
};
use torus_topology::{NodeId, TorusShape};

fn runtime(dims: &[u32], config: RuntimeConfig) -> Runtime {
    Runtime::new(&TorusShape::new(dims).unwrap(), config).unwrap()
}

/// Tight deadlines so injected timeouts cost milliseconds, not the
/// half-second production default.
fn quick_retry() -> RetryPolicy {
    RetryPolicy::default()
        .with_deadline(Duration::from_millis(20))
        .with_backoff(Duration::from_micros(200))
}

/// Runs `f` on its own thread and panics if it does not finish within
/// `secs` — the suite's guard against recovery-path deadlocks.
fn with_watchdog<T: Send + 'static>(secs: u64, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let h = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = h.join();
            v
        }
        Err(_) => panic!("runtime hung: {secs}s watchdog expired"),
    }
}

#[cfg(target_os = "linux")]
fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

/// First scheduled transmission of the plan: `(global_step, src, dst)`.
/// The schedule is static, so tests can pin explicit faults to real
/// coordinates without guessing.
fn first_transmission(rt: &Runtime) -> (usize, NodeId, NodeId) {
    let mut g = 0;
    for ph in rt.plan().phases() {
        for st in &ph.steps {
            for (node, send) in st.sends.iter().enumerate() {
                if let Some(s) = send {
                    return (g, node as NodeId, s.dst);
                }
            }
            g += 1;
        }
    }
    panic!("plan has no transmissions");
}

#[test]
fn truncated_frames_are_detected_and_recovered() {
    let cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(FaultPlan::seeded(3).with_truncate_rate(1.0))
        .with_retry(quick_retry());
    let r = runtime(&[4, 4], cfg).run().unwrap();
    assert!(r.verified);
    assert_eq!(r.faults.injected_truncations, r.messages);
    // Truncation can land in framing or in the CRC depending on where
    // the cut falls; either detector must refuse the frame.
    assert!(r.faults.decode_failures + r.faults.crc_failures >= r.messages);
    assert_eq!(r.faults.recovered, r.messages);
}

#[test]
fn duplicated_frames_are_discarded_by_sequence_check() {
    let cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(FaultPlan::seeded(4).with_duplicate_rate(1.0))
        .with_retry(quick_retry());
    let r = runtime(&[4, 4], cfg).run().unwrap();
    assert!(r.verified);
    assert_eq!(r.faults.injected_duplicates, r.messages);
    // The duplicate of a step-g frame is drained at the node's next
    // scheduled receive and rejected as stale. (The last step's
    // duplicates are never drained, so this is a lower bound.)
    assert!(r.faults.stale_discarded > 0);
    // Duplicates alone never cost a retry cycle.
    assert_eq!(r.faults.retries, 0);
}

#[test]
fn over_deadline_delay_is_recovered_from_the_retained_frame() {
    // Delay one transmission 40 ms against a 5 ms deadline. The sender
    // retains its pristine frame *before* the delay, so the receiver
    // times out once and heals immediately; the straggler arrives into
    // a later step and is rejected by the sequence check.
    let rt0 = runtime(&[4, 4], RuntimeConfig::default());
    let (g, src, dst) = first_transmission(&rt0);
    let cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(FaultPlan::default().with_message_fault(
            g,
            src,
            dst,
            0,
            FaultKind::DelayMicros(40_000),
        ))
        .with_retry(
            quick_retry()
                .with_deadline(Duration::from_millis(5))
                .with_max_retries(50),
        );
    let r = runtime(&[4, 4], cfg).run().unwrap();
    assert!(r.verified);
    assert_eq!(r.faults.injected_delays, 1);
    assert!(r.faults.timeouts >= 1);
    assert!(r.faults.resends >= 1);
    assert!(r.faults.recovered >= 1);
}

#[test]
fn stalled_worker_pushes_peers_through_the_retry_path() {
    // Stall one worker 30 ms against a 5 ms receive deadline: its peers
    // must time out, find no retained frame yet, and keep retrying until
    // the stalled sender catches up.
    let policy = RetryPolicy::default()
        .with_deadline(Duration::from_millis(5))
        .with_backoff(Duration::from_millis(2))
        .with_max_retries(50);
    let cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(FaultPlan::default().with_worker_fault(
            0,
            0,
            WorkerFaultKind::StallMicros(30_000),
        ))
        .with_retry(policy);
    let r = runtime(&[4, 4], cfg).run().unwrap();
    assert!(r.verified);
    assert_eq!(r.faults.injected_stalls, 1);
    assert!(r.faults.timeouts > 0);
    assert!(r.faults.recovered > 0);
}

#[test]
fn explicit_single_drop_heals_without_charging_the_budget() {
    let rt0 = runtime(&[4, 4], RuntimeConfig::default());
    let (g, src, dst) = first_transmission(&rt0);
    let cfg = RuntimeConfig::default()
        .with_workers(2)
        .with_faults(FaultPlan::default().with_message_fault(g, src, dst, 0, FaultKind::Drop))
        .with_retry(quick_retry());
    let r = runtime(&[4, 4], cfg).run().unwrap();
    assert!(r.verified);
    assert_eq!(r.faults.injected_drops, 1);
    assert_eq!(r.faults.timeouts, 1);
    assert_eq!(r.faults.resends, 1);
    assert_eq!(r.faults.recovered, 1);
    // The first resend succeeded, so no retry cycle was charged.
    assert_eq!(r.faults.retries, 0);
    assert_eq!(r.fault_events.len(), 1);
    assert_eq!(r.fault_events[0].step, g);
    assert_eq!(r.fault_events[0].src, src);
    assert_eq!(r.fault_events[0].dst, dst);
}

#[test]
fn exhausted_retry_budget_aborts_with_typed_error() {
    let rt0 = runtime(&[4, 4], RuntimeConfig::default());
    let (g, src, dst) = first_transmission(&rt0);
    // Drop the original send and every resend the budget allows: the
    // receiver must give up and abort, naming the silent peer.
    let mut plan = FaultPlan::default().with_message_fault(g, src, dst, 0, FaultKind::Drop);
    for attempt in 1..=3 {
        plan = plan.with_message_fault(g, src, dst, attempt, FaultKind::Drop);
    }
    let cfg = RuntimeConfig::default()
        .with_workers(2)
        .with_faults(plan)
        .with_retry(quick_retry().with_max_retries(1));
    let err = with_watchdog(30, move || runtime(&[4, 4], cfg).run().unwrap_err());
    match err {
        RuntimeError::Aborted { failure, report } => {
            assert_eq!(failure.node, dst);
            assert_eq!(failure.global_step, g);
            assert_eq!(failure.reason, FailureReason::RetryExhausted { src });
            assert!(!report.verified);
            assert!(report.faults.retries > 0);
            assert_eq!(report.failure.as_ref().unwrap().reason, failure.reason);
        }
        other => panic!("expected Aborted, got {other}"),
    }
}

#[test]
fn kill_matrix_aborts_cleanly_at_every_phase() {
    // Kill a worker at the first and at a late global step; both must
    // abort with the right context, within the watchdog, and the partial
    // report must name the phase the failure happened in.
    let total = runtime(&[4, 4], RuntimeConfig::default())
        .plan()
        .total_steps();
    for step in [0, total - 1] {
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(FaultPlan::default().with_worker_fault(step, 2, WorkerFaultKind::Kill))
            .with_retry(quick_retry().with_max_retries(2));
        let err = with_watchdog(30, move || runtime(&[4, 4], cfg).run().unwrap_err());
        match err {
            RuntimeError::Aborted { failure, report } => {
                assert_eq!(failure.node, 2);
                assert_eq!(failure.global_step, step);
                assert_eq!(failure.reason, FailureReason::WorkerKilled { node: 2 });
                assert!(!failure.phase.is_empty());
                assert!(failure.step >= 1);
                assert!(!report.verified);
                assert_eq!(report.faults.injected_kills, 1);
                let s = report.summary();
                assert!(s.contains("ABORTED"), "summary must flag the abort: {s}");
            }
            other => panic!("kill at step {step}: expected Aborted, got {other}"),
        }
    }
}

#[test]
fn aborts_are_reproducible_and_leak_no_threads() {
    #[cfg(target_os = "linux")]
    let before = thread_count();
    let run = || {
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(FaultPlan::default().with_worker_fault(1, 5, WorkerFaultKind::Kill))
            .with_retry(quick_retry().with_max_retries(1));
        with_watchdog(30, move || match runtime(&[4, 4], cfg).run().unwrap_err() {
            RuntimeError::Aborted { failure, .. } => {
                (failure.node, failure.global_step, failure.phase)
            }
            other => panic!("expected Aborted, got {other}"),
        })
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same kill plan must fail identically");
    #[cfg(target_os = "linux")]
    {
        // Concurrent tests spawn workers of their own, so poll: a leaked
        // thread never exits, transient ones do.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let after = thread_count();
            if after <= before + 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "worker threads leaked: {before} before, {after} after"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

#[test]
fn recovered_runs_match_the_fault_free_deliveries() {
    // The whole point of the recovery layer: a faulty wire must not be
    // observable in what gets delivered.
    let mk = |plan: FaultPlan| {
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(plan)
            .with_retry(quick_retry());
        runtime(&[4, 8], cfg)
            .run_with_payloads(|s, d| torus_runtime::pattern_payload(s, d, 24))
            .unwrap()
            .1
    };
    let clean = mk(FaultPlan::default());
    let faulty = mk(FaultPlan::seeded(77)
        .with_drop_rate(0.3)
        .with_corrupt_rate(0.2)
        .with_truncate_rate(0.1)
        .with_duplicate_rate(0.2));
    assert_eq!(clean, faulty);
}

// ---------------------------------------------------------------------------
// Degraded mode: the same unrecoverable faults that abort above must,
// under `OnFailure::Degrade`, quarantine the failed node and complete
// bit-exactly for every survivor.
// ---------------------------------------------------------------------------

/// Acceptance case: a pinned mid-phase kill on 4×8. Under `degrade` the
/// run completes with a populated [`DegradedReport`] and no leaked
/// threads; the identical plan under the default `abort` policy still
/// returns `Aborted` with a partial report.
#[test]
fn degraded_run_completes_where_abort_fails() {
    #[cfg(target_os = "linux")]
    let before = thread_count();
    let total = runtime(&[4, 8], RuntimeConfig::default())
        .plan()
        .total_steps();
    let step = total / 2;
    let plan = FaultPlan::default().with_worker_fault(step, 5, WorkerFaultKind::Kill);

    let cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(plan.clone())
        .with_retry(quick_retry())
        .with_on_failure(OnFailure::Degrade);
    let r = with_watchdog(30, move || runtime(&[4, 8], cfg).run().unwrap());
    assert!(
        r.failure.is_none(),
        "degraded run must not record a failure"
    );
    assert!(!r.verified, "full delivery cannot verify with drops");
    let d = r.degraded.as_ref().expect("degraded report populated");
    assert!(d.verified_degraded, "survivors must verify bit-exactly");
    assert_eq!(d.dead_nodes.len(), 1);
    assert_eq!(d.dead_nodes[0].node, 5);
    assert_eq!(d.dead_nodes[0].quarantine_step, step);
    assert_eq!(
        d.dead_nodes[0].reason,
        FailureReason::WorkerKilled { node: 5 }
    );
    assert_eq!(d.dropped_blocks, d.dropped.len() as u64);
    assert!(d.dropped_blocks > 0, "a dead node always strands blocks");
    assert_eq!(d.restarts, 0, "pinned kills are quarantined up front");
    let s = r.summary();
    assert!(s.contains("DEGRADED"), "summary must flag degradation: {s}");
    assert!(!s.contains("ABORTED"), "nothing aborted: {s}");

    let abort_cfg = RuntimeConfig::default()
        .with_workers(4)
        .with_faults(plan)
        .with_retry(quick_retry().with_max_retries(1));
    let err = with_watchdog(30, move || runtime(&[4, 8], abort_cfg).run().unwrap_err());
    match err {
        RuntimeError::Aborted { failure, report } => {
            assert_eq!(failure.reason, FailureReason::WorkerKilled { node: 5 });
            assert!(!report.verified);
            assert!(
                report.degraded.is_none(),
                "abort runs carry no degraded report"
            );
        }
        other => panic!("expected Aborted under abort policy, got {other}"),
    }

    #[cfg(target_os = "linux")]
    {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let after = thread_count();
            if after <= before + 1 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "worker threads leaked: {before} before, {after} after"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// Same seed + fault plan + degrade policy must produce a byte-identical
/// degraded report and identical survivor deliveries regardless of how
/// many workers execute it (the `TORUS_THREADS` knob maps to
/// `with_workers`). The report intentionally carries no timing or
/// thread-derived data, so its serialized form is a pure function of the
/// inputs.
#[test]
fn degraded_reports_are_deterministic_across_runs_and_worker_counts() {
    let mk = |workers: usize| {
        let cfg = RuntimeConfig::default()
            .with_workers(workers)
            .with_faults(FaultPlan::seeded(9).with_drop_rate(0.2).with_worker_fault(
                3,
                6,
                WorkerFaultKind::Kill,
            ))
            .with_retry(quick_retry())
            .with_on_failure(OnFailure::Degrade);
        let (r, deliveries) = with_watchdog(60, move || {
            runtime(&[4, 8], cfg)
                .run_with_payloads(|s, d| torus_runtime::pattern_payload(s, d, 24))
                .unwrap()
        });
        let d = r.degraded.expect("degraded report populated");
        assert!(d.verified_degraded);
        // Debug formatting covers every field; the serde form is derived
        // from the same data.
        (format!("{d:?}"), deliveries)
    };
    let baseline = mk(4);
    for workers in [1, 4, 16] {
        let got = mk(workers);
        assert_eq!(
            got.0, baseline.0,
            "degraded report diverged at {workers} workers"
        );
        assert_eq!(
            got.1, baseline.1,
            "survivor deliveries diverged at {workers} workers"
        );
    }
}

/// An exhausted retry budget — unrecoverable under abort (see
/// `exhausted_retry_budget_aborts_with_typed_error`) — becomes a
/// mid-flight quarantine under degrade: the run restarts once with the
/// silent sender dead and completes for everyone else.
#[test]
fn exhausted_retry_budget_quarantines_the_silent_sender() {
    let rt0 = runtime(&[4, 4], RuntimeConfig::default());
    let (g, src, dst) = first_transmission(&rt0);
    let mut plan = FaultPlan::default().with_message_fault(g, src, dst, 0, FaultKind::Drop);
    for attempt in 1..=3 {
        plan = plan.with_message_fault(g, src, dst, attempt, FaultKind::Drop);
    }
    let cfg = RuntimeConfig::default()
        .with_workers(2)
        .with_faults(plan)
        .with_retry(quick_retry().with_max_retries(1))
        .with_on_failure(OnFailure::Degrade);
    let r = with_watchdog(30, move || runtime(&[4, 4], cfg).run().unwrap());
    assert!(r.failure.is_none());
    let d = r.degraded.expect("degraded report populated");
    assert!(d.verified_degraded);
    assert_eq!(d.restarts, 1, "one abort-and-replan cycle");
    assert_eq!(d.dead_nodes.len(), 1);
    assert_eq!(d.dead_nodes[0].node, src, "the silent *sender* is culpable");
    assert_eq!(d.dead_nodes[0].quarantine_step, g);
    assert_eq!(
        d.dead_nodes[0].reason,
        FailureReason::RetryExhausted { src }
    );
}

/// Hand-rolled chaos sweep (the vendored `proptest` is a compile stub):
/// a single random node killed at a random global step, on 4×4 and 4×8.
/// Invariants: every survivor→survivor block is delivered bit-exactly
/// (identical to the fault-free run minus the dead source), the dead
/// node delivers nothing, and the dropped set is exactly the blocks with
/// a dead endpoint.
#[test]
fn chaos_random_single_kill_leaves_survivors_bit_exact() {
    // splitmix64: deterministic, dependency-free randomness.
    let mut state: u64 = 0x1998_0713_5EED_C0DE;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for dims in [&[4u32, 4][..], &[4, 8][..]] {
        let rt0 = runtime(dims, RuntimeConfig::default());
        let total = rt0.plan().total_steps();
        let nodes = rt0.prepared().exchange().executed_shape().num_nodes() as usize;
        let clean: Vec<Vec<(NodeId, bytes::Bytes)>> = rt0
            .run_with_payloads(|s, d| torus_runtime::pattern_payload(s, d, 16))
            .unwrap()
            .1;
        for _ in 0..4 {
            let victim = (next() % nodes as u64) as NodeId;
            let step = (next() as usize) % total;
            let cfg = RuntimeConfig::default()
                .with_workers(4)
                .with_faults(FaultPlan::default().with_worker_fault(
                    step,
                    victim,
                    WorkerFaultKind::Kill,
                ))
                .with_retry(quick_retry())
                .with_on_failure(OnFailure::Degrade);
            let dims_owned = dims.to_vec();
            let (r, got) = with_watchdog(60, move || {
                runtime(&dims_owned, cfg)
                    .run_with_payloads(|s, d| torus_runtime::pattern_payload(s, d, 16))
                    .unwrap()
            });
            let d = r.degraded.expect("degraded report populated");
            assert!(
                d.verified_degraded,
                "{dims:?} kill {victim}@{step}: survivors must verify"
            );
            assert_eq!(d.dead_nodes.len(), 1);
            assert_eq!(d.dead_nodes[0].node, victim);
            // Dropped set: exactly the blocks with one dead endpoint.
            assert_eq!(d.dropped_blocks, 2 * (nodes as u64 - 1));
            for blk in &d.dropped {
                assert!(
                    (blk.src == victim) ^ (blk.dst == victim),
                    "{dims:?} kill {victim}@{step}: dropped ({}, {}) has no dead endpoint",
                    blk.src,
                    blk.dst
                );
            }
            // Survivor deliveries: the fault-free map minus the dead source.
            let dead_orig = rt0
                .prepared()
                .exchange()
                .from_canonical(victim)
                .expect("victim is a real node");
            for (node, delivered) in got.iter().enumerate() {
                if node == dead_orig as usize {
                    assert!(
                        delivered.is_empty(),
                        "{dims:?}: dead node {dead_orig} must deliver nothing"
                    );
                    continue;
                }
                let want: Vec<(NodeId, bytes::Bytes)> = clean[node]
                    .iter()
                    .filter(|(src, _)| *src != dead_orig)
                    .cloned()
                    .collect();
                assert_eq!(
                    *delivered, want,
                    "{dims:?} kill {victim}@{step}: survivor {node} deliveries diverge"
                );
            }
        }
    }
}

/// CI's serialized stress pass (`--ignored --test-threads=1`): hammer the
/// barrier + retry path across many seeds on one thread so lost-wakeup or
/// ordering bugs in the recovery loop surface as timeouts here.
#[test]
#[ignore]
fn stress_many_seeds_all_recover() {
    for seed in 0..24u64 {
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(
                FaultPlan::seeded(seed)
                    .with_drop_rate(0.4)
                    .with_corrupt_rate(0.2)
                    .with_duplicate_rate(0.2),
            )
            .with_retry(quick_retry());
        let r = with_watchdog(60, move || runtime(&[4, 8], cfg).run().unwrap());
        assert!(r.verified, "seed {seed} failed verification");
        assert!(r.failure.is_none());
    }
}
