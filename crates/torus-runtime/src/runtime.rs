//! The byte-moving runtime: worker threads execute exchange plans.
//!
//! # Execution model
//!
//! The canonical torus's `N` nodes are multiplexed onto `W` worker
//! threads in contiguous chunks (`W` = [`RuntimeConfig::workers`], else
//! `TORUS_THREADS`, else the machine's available parallelism, clamped to
//! `1..=N`). Each worker
//! *owns* its nodes' buffers outright — no locks on the hot path — and
//! every node has an unbounded lock-free channel as its inbox.
//!
//! Each communication step of the [`StepPlan`] executes as:
//!
//! 1. **assemble** — for every owned node scheduled to send, select the
//!    step's blocks (the paper's per-phase selection rules), frame them
//!    into one combined wire message;
//! 2. **transport** — push the message into the destination's inbox
//!    (never blocks: channels are unbounded), then receive exactly the
//!    messages the static schedule says each owned node is due (possibly
//!    empty ones — the paper's idle senders), splitting them zero-copy
//!    into the receiving buffer;
//! 3. **synchronize** — a two-phase [`Barrier`] rendezvous with the main
//!    thread. The first crossing marks "all step traffic delivered" (the
//!    main thread timestamps the step and snapshots buffers for
//!    [`Observer`]s); the second releases everyone into the next step, so
//!    messages from step `s + 1` can never interleave with step `s`.
//!
//! After every phase but the last, workers run the paper's **data
//! rearrangement** as a real memory pass: each node's blocks are sorted
//! into delivery order and their payloads compacted into one fresh
//! contiguous arena (the measured analogue of the `ρ`-term the cost model
//! charges per byte), again bracketed by the two-barrier rendezvous.
//!
//! Sends never block and every receive is matched to a scheduled send, so
//! the protocol is deadlock-free by construction; determinism across
//! worker counts follows from the per-step barriers plus the fixed
//! ownership partition.

use std::collections::HashMap;
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

use alltoall_core::block::Buffers;
use alltoall_core::steps::StepPlan;
use alltoall_core::{verify_delivery, Block, NullObserver, Observer, PreparedExchange};
use bytes::{Bytes, BytesMut};
use cost_model::{CommParams, CompletionTime};
use crossbeam::channel::{unbounded, Receiver};
use crossbeam::thread as cb_thread;
use torus_sim::{StepStat, Trace};
use torus_topology::{NodeId, TorusShape};

use crate::message::{decode_message, encode_message};
use crate::payload::pattern_payload;
use crate::report::{PhaseReport, RuntimeReport};
use crate::RuntimeError;

/// Configuration for a [`Runtime`].
#[derive(Clone, Copy, Debug)]
pub struct RuntimeConfig {
    /// Payload bytes per block (the paper's `m`). Used for the default
    /// pattern payloads and the analytic prediction. Default: 64.
    pub block_bytes: usize,
    /// Worker threads to multiplex nodes onto. `None` (default) means the
    /// `TORUS_THREADS` environment variable if set, else the machine's
    /// available parallelism (see [`torus_sim::default_threads`]).
    /// Always clamped to `1..=N`.
    pub workers: Option<usize>,
    /// Machine parameters for the analytic [`CompletionTime`] that rides
    /// along in the report. Default: [`CommParams::cray_t3d_like`].
    pub params: CommParams,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            block_bytes: 64,
            workers: None,
            params: CommParams::cray_t3d_like(),
        }
    }
}

impl RuntimeConfig {
    /// Sets the payload bytes per block.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Caps the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the machine parameters for the analytic prediction.
    pub fn with_params(mut self, params: CommParams) -> Self {
        self.params = params;
        self
    }
}

/// A reusable byte-moving executor for one torus shape.
///
/// Construction does all the schedule work once (canonicalization,
/// padding, shift vectors, step plan); every [`run`](Self::run) then
/// seeds real payloads, executes the plan over worker threads, and
/// verifies delivery bit-exactly.
pub struct Runtime {
    prepared: PreparedExchange,
    plan: StepPlan,
    config: RuntimeConfig,
}

/// Per-worker, per-global-step measurement.
#[derive(Clone, Copy, Default)]
struct StepSide {
    messages: u64,
    blocks: u64,
    max_blocks: u64,
    wire_bytes: u64,
}

/// Per-worker, per-phase measurement.
#[derive(Clone, Copy, Default)]
struct PhaseSide {
    assembly: Duration,
    transport: Duration,
    rearrange: Duration,
    wire_bytes: u64,
    rearranged_bytes: u64,
    messages: u64,
    rearr_blocks_max: u64,
}

/// Everything one worker measured, returned at join.
struct WorkerStats {
    phase: Vec<PhaseSide>,
    steps: Vec<StepSide>,
    peak_bytes: u64,
}

fn snapshot_buffers(slots: &[Mutex<Vec<Block<Bytes>>>]) -> Buffers<Bytes> {
    Buffers::from_vecs(
        slots
            .iter()
            .map(|m| m.lock().expect("snapshot lock").clone())
            .collect(),
    )
}

impl Runtime {
    /// Prepares a runtime for `shape` (any extents; padding applies).
    pub fn new(shape: &TorusShape, config: RuntimeConfig) -> Result<Self, RuntimeError> {
        Ok(Self::from_prepared(PreparedExchange::new(shape)?, config))
    }

    /// Wraps an existing [`PreparedExchange`] (shares its cached seeding
    /// and verification tables).
    pub fn from_prepared(prepared: PreparedExchange, config: RuntimeConfig) -> Self {
        let plan = prepared.step_plan();
        Self {
            prepared,
            plan,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The step plan being executed.
    pub fn plan(&self) -> &StepPlan {
        &self.plan
    }

    /// The underlying prepared exchange.
    pub fn prepared(&self) -> &PreparedExchange {
        &self.prepared
    }

    /// The worker count a run will use.
    pub fn effective_workers(&self) -> usize {
        let nn = self.plan.shape().num_nodes() as usize;
        self.config
            .workers
            .unwrap_or_else(torus_sim::default_threads)
            .clamp(1, nn)
    }

    /// Runs one exchange with deterministic per-pair pattern payloads of
    /// [`block_bytes`](RuntimeConfig::block_bytes) each, and verifies
    /// delivery bit-exactly. This is the standard measurement entry point.
    pub fn run(&self) -> Result<RuntimeReport, RuntimeError> {
        let m = self.config.block_bytes;
        self.run_impl(&mut NullObserver, |s, d| pattern_payload(s, d, m), false)
            .map(|(report, _)| report)
    }

    /// Runs one exchange carrying caller-provided payloads:
    /// `payload(src, dst)` (original node ids) produces each block's
    /// bytes (lengths may vary per pair). Returns the report plus, for
    /// every original node, the delivered `(source, payload)` pairs
    /// sorted by source.
    #[allow(clippy::type_complexity)]
    pub fn run_with_payloads<F>(
        &self,
        payload: F,
    ) -> Result<(RuntimeReport, Vec<Vec<(NodeId, Bytes)>>), RuntimeError>
    where
        F: FnMut(NodeId, NodeId) -> Bytes,
    {
        self.run_impl(&mut NullObserver, payload, false)
    }

    /// Runs with pattern payloads and an [`Observer`] receiving per-step
    /// buffer snapshots (canonical node ids) — the same interface the
    /// analytic executor drives the figure harness with.
    pub fn run_observed<O: Observer<Bytes>>(
        &self,
        observer: &mut O,
    ) -> Result<RuntimeReport, RuntimeError> {
        let m = self.config.block_bytes;
        self.run_impl(observer, |s, d| pattern_payload(s, d, m), true)
            .map(|(report, _)| report)
    }

    #[allow(clippy::type_complexity)]
    fn run_impl<F, O>(
        &self,
        observer: &mut O,
        mut payload: F,
        observe: bool,
    ) -> Result<(RuntimeReport, Vec<Vec<(NodeId, Bytes)>>), RuntimeError>
    where
        F: FnMut(NodeId, NodeId) -> Bytes,
        O: Observer<Bytes>,
    {
        let exchange = self.prepared.exchange();
        let canon = self.plan.shape();
        let nn = canon.num_nodes() as usize;
        let workers = self.effective_workers();
        let plan = &self.plan;
        let phases = plan.phases();
        let total_steps = plan.total_steps();

        // Seed data-carrying buffers from the cached counting state; keep
        // every pair's bytes for the post-run bit-exact comparison.
        let mut expected_payloads: HashMap<(NodeId, NodeId), Bytes> = HashMap::new();
        let mut node_bufs: Vec<Vec<Block<Bytes>>> = Vec::with_capacity(nn);
        for blocks in self.prepared.seeded_blocks() {
            let mut out = Vec::with_capacity(blocks.len());
            for b in blocks {
                let os = exchange
                    .from_canonical(b.src)
                    .expect("seeded blocks originate from real nodes");
                let od = exchange
                    .from_canonical(b.dst)
                    .expect("seeded blocks target real nodes");
                let bytes = payload(os, od);
                expected_payloads.insert((b.src, b.dst), bytes.clone());
                let mut nb = Block::with_payload(b.src, b.dst, bytes);
                nb.shifts = b.shifts;
                out.push(nb);
            }
            node_bufs.push(out);
        }
        if observe {
            observer.on_start(&Buffers::from_vecs(node_bufs.clone()));
        }

        // Static receive expectations: node `d` receives in global step
        // `g` iff some node is scheduled to send to it then.
        let mut expect_recv = vec![vec![false; nn]; total_steps];
        {
            let mut g = 0;
            for ph in phases {
                for st in &ph.steps {
                    for send in st.sends.iter().flatten() {
                        expect_recv[g][send.dst as usize] = true;
                    }
                    g += 1;
                }
            }
        }

        // Per-node inboxes. Senders are shared (any worker may deliver to
        // any node); each receiver is owned by the node's worker.
        let mut senders = Vec::with_capacity(nn);
        let mut receivers = Vec::with_capacity(nn);
        for _ in 0..nn {
            let (tx, rx) = unbounded::<Bytes>();
            senders.push(tx);
            receivers.push(rx);
        }

        let chunk = nn.div_ceil(workers);
        let n_chunks = nn.div_ceil(chunk);
        let barrier = Barrier::new(n_chunks + 1);
        let snapshots: Vec<Mutex<Vec<Block<Bytes>>>> =
            (0..nn).map(|_| Mutex::new(Vec::new())).collect();
        let finals: Vec<Mutex<Vec<Block<Bytes>>>> =
            (0..nn).map(|_| Mutex::new(Vec::new())).collect();

        let mut buf_chunks: Vec<Vec<Vec<Block<Bytes>>>> = Vec::with_capacity(n_chunks);
        let mut rx_chunks: Vec<Vec<Receiver<Bytes>>> = Vec::with_capacity(n_chunks);
        {
            let mut bi = node_bufs.into_iter();
            let mut ri = receivers.into_iter();
            for ci in 0..n_chunks {
                let take = chunk.min(nn - ci * chunk);
                buf_chunks.push(bi.by_ref().take(take).collect());
                rx_chunks.push(ri.by_ref().take(take).collect());
            }
        }

        let senders = &senders[..];
        let worker = |base: usize,
                      mut bufs: Vec<Vec<Block<Bytes>>>,
                      rxs: Vec<Receiver<Bytes>>|
         -> WorkerStats {
            let mut stats = WorkerStats {
                phase: vec![PhaseSide::default(); phases.len()],
                steps: vec![StepSide::default(); total_steps],
                peak_bytes: 0,
            };
            let mut g = 0usize;
            for (pi, ph) in phases.iter().enumerate() {
                for st in &ph.steps {
                    let pstats = &mut stats.phase[pi];
                    let sstats = &mut stats.steps[g];

                    // Assemble and send for every owned scheduled sender.
                    for (li, buf) in bufs.iter_mut().enumerate() {
                        let node = (base + li) as NodeId;
                        let Some(send) = st.sends[node as usize] else {
                            continue;
                        };
                        let t0 = Instant::now();
                        let mut kept = Vec::with_capacity(buf.len());
                        let mut outgoing = Vec::new();
                        for mut b in buf.drain(..) {
                            if plan.selects(st, node, &b) {
                                if let Some(p) = StepPlan::shift_decrement(st) {
                                    b.shifts[p] -= 1;
                                }
                                outgoing.push(b);
                            } else {
                                kept.push(b);
                            }
                        }
                        *buf = kept;
                        let msg = encode_message(&outgoing);
                        let assembled = Instant::now();
                        pstats.assembly += assembled - t0;
                        sstats.messages += 1;
                        sstats.blocks += outgoing.len() as u64;
                        sstats.max_blocks = sstats.max_blocks.max(outgoing.len() as u64);
                        sstats.wire_bytes += msg.len() as u64;
                        pstats.wire_bytes += msg.len() as u64;
                        pstats.messages += 1;
                        senders[send.dst as usize]
                            .send(msg)
                            .expect("inbox receiver lives for the whole run");
                        pstats.transport += assembled.elapsed();
                    }

                    // Receive exactly the scheduled traffic, split it
                    // zero-copy, and track residency.
                    for (li, buf) in bufs.iter_mut().enumerate() {
                        if expect_recv[g][base + li] {
                            let t0 = Instant::now();
                            let msg = rxs[li].recv().expect("a scheduled message is always sent");
                            let received = Instant::now();
                            pstats.transport += received - t0;
                            let mut blocks =
                                decode_message(&msg).expect("self-produced framing is valid");
                            buf.append(&mut blocks);
                            pstats.assembly += received.elapsed();
                        }
                        let resident: u64 = buf.iter().map(|b| b.payload.len() as u64).sum();
                        stats.peak_bytes = stats.peak_bytes.max(resident);
                    }

                    if observe {
                        for (li, buf) in bufs.iter().enumerate() {
                            *snapshots[base + li].lock().expect("snapshot lock") = buf.clone();
                        }
                    }
                    g += 1;
                    barrier.wait(); // step traffic complete
                    barrier.wait(); // released into the next step
                }

                if ph.rearrange_after {
                    let pstats = &mut stats.phase[pi];
                    for buf in bufs.iter_mut() {
                        let t0 = Instant::now();
                        // The paper's inter-phase rearrangement: compact
                        // the node's data array into delivery order with
                        // one contiguous copy pass.
                        buf.sort_by_key(|b| (b.dst, b.src));
                        let total: usize = buf.iter().map(|b| b.payload.len()).sum();
                        let mut arena = BytesMut::with_capacity(total);
                        for b in buf.iter() {
                            arena.extend_from_slice(&b.payload);
                        }
                        let arena = arena.freeze();
                        let mut off = 0usize;
                        for b in buf.iter_mut() {
                            let len = b.payload.len();
                            b.payload = arena.slice(off..off + len);
                            off += len;
                        }
                        pstats.rearrange += t0.elapsed();
                        pstats.rearranged_bytes += total as u64;
                        pstats.rearr_blocks_max = pstats.rearr_blocks_max.max(buf.len() as u64);
                    }
                    if observe {
                        for (li, buf) in bufs.iter().enumerate() {
                            *snapshots[base + li].lock().expect("snapshot lock") = buf.clone();
                        }
                    }
                    barrier.wait(); // rearrangement complete
                    barrier.wait();
                }
            }
            for (li, buf) in bufs.iter_mut().enumerate() {
                *finals[base + li].lock().expect("finals lock") = std::mem::take(buf);
            }
            stats
        };

        // Execute: workers run the plan, the main thread mirrors the
        // barrier sequence to measure walls and drive the observer.
        let (stats, phase_walls, step_walls, wall) = cb_thread::scope(|s| {
            let mut handles = Vec::with_capacity(n_chunks);
            for (ci, (bufs, rxs)) in buf_chunks.drain(..).zip(rx_chunks.drain(..)).enumerate() {
                let worker = &worker;
                handles.push(s.spawn(move |_| worker(ci * chunk, bufs, rxs)));
            }

            let t_run = Instant::now();
            let mut phase_walls = Vec::with_capacity(phases.len());
            let mut step_walls = Vec::with_capacity(total_steps);
            for ph in phases {
                let t_phase = Instant::now();
                for si in 0..ph.steps.len() {
                    let t_step = Instant::now();
                    barrier.wait();
                    step_walls.push(t_step.elapsed());
                    if observe {
                        observer.on_step(ph.kind, si + 1, &snapshot_buffers(&snapshots));
                    }
                    barrier.wait();
                }
                if ph.rearrange_after {
                    barrier.wait();
                    if observe {
                        observer.on_rearrange(ph.kind, &snapshot_buffers(&snapshots));
                    }
                    barrier.wait();
                }
                phase_walls.push(t_phase.elapsed());
            }
            let wall = t_run.elapsed();
            let stats: Vec<WorkerStats> = handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect();
            (stats, phase_walls, step_walls, wall)
        })
        .expect("runtime worker panicked");

        // Reassemble final buffers and verify: right delivery set, and
        // every payload bit-exactly as seeded.
        let buffers = Buffers::from_vecs(
            finals
                .iter()
                .map(|m| std::mem::take(&mut *m.lock().expect("finals lock")))
                .collect(),
        );
        verify_delivery(&buffers, self.prepared.expected_delivery())
            .map_err(|e| RuntimeError::Verification(e.to_string()))?;
        for node in 0..nn as NodeId {
            for b in buffers.node(node) {
                match expected_payloads.get(&(b.src, b.dst)) {
                    Some(expected) if *expected == b.payload => {}
                    Some(_) => {
                        return Err(RuntimeError::Verification(format!(
                            "payload corruption: block ({} -> {}) differs from seeded bytes",
                            b.src, b.dst
                        )))
                    }
                    None => {
                        return Err(RuntimeError::Verification(format!(
                            "unseeded block ({} -> {}) delivered",
                            b.src, b.dst
                        )))
                    }
                }
            }
        }

        // Deliveries in original ids, sorted by source (same contract as
        // `Exchange::run_with_payloads`).
        let real_n = exchange.shape_ref().num_nodes();
        let mut deliveries: Vec<Vec<(NodeId, Bytes)>> = vec![Vec::new(); real_n as usize];
        for d in 0..real_n {
            let cd = exchange.to_canonical(d);
            let mut got: Vec<(NodeId, Bytes)> = buffers
                .node(cd)
                .iter()
                .map(|b| {
                    let os = exchange
                        .from_canonical(b.src)
                        .expect("delivered blocks originate from real nodes");
                    (os, b.payload.clone())
                })
                .collect();
            got.sort_by_key(|(s, _)| *s);
            deliveries[d as usize] = got;
        }

        // Aggregate worker measurements into the report and trace.
        let mut trace = Trace::default();
        let mut phase_reports = Vec::with_capacity(phases.len());
        let mut gbase = 0usize;
        for (pi, ph) in phases.iter().enumerate() {
            trace.begin_phase(&ph.name);
            for (si, st) in ph.steps.iter().enumerate() {
                let g = gbase + si;
                let mut messages = 0u64;
                let mut blocks = 0u64;
                let mut max_blocks = 0u64;
                for w in &stats {
                    messages += w.steps[g].messages;
                    blocks += w.steps[g].blocks;
                    max_blocks = max_blocks.max(w.steps[g].max_blocks);
                }
                trace.record_step(StepStat {
                    messages: messages as u32,
                    total_blocks: blocks,
                    max_blocks,
                    max_hops: st.hops,
                    time_us: step_walls[g].as_secs_f64() * 1e6,
                });
            }
            gbase += ph.steps.len();

            let mut pr = PhaseReport {
                name: ph.name.clone(),
                steps: ph.steps.len(),
                wall: phase_walls[pi],
                ..Default::default()
            };
            let mut rearr_max = 0u64;
            for w in &stats {
                let side = &w.phase[pi];
                pr.assembly += side.assembly;
                pr.transport += side.transport;
                pr.rearrange += side.rearrange;
                pr.wire_bytes += side.wire_bytes;
                pr.rearranged_bytes += side.rearranged_bytes;
                pr.messages += side.messages;
                rearr_max = rearr_max.max(side.rearr_blocks_max);
            }
            if ph.rearrange_after {
                trace.record_rearrangement(rearr_max);
            }
            phase_reports.push(pr);
        }

        let params = self
            .config
            .params
            .with_block_bytes(self.config.block_bytes as u32);
        let report = RuntimeReport {
            dims: exchange.shape_ref().dims().to_vec(),
            executed_dims: canon.dims().to_vec(),
            padded: exchange.is_padded(),
            nodes: real_n,
            block_bytes: self.config.block_bytes,
            workers,
            wall,
            wire_bytes: phase_reports.iter().map(|p| p.wire_bytes).sum(),
            rearranged_bytes: phase_reports.iter().map(|p| p.rearranged_bytes).sum(),
            peak_node_bytes: stats.iter().map(|w| w.peak_bytes).max().unwrap_or(0),
            messages: phase_reports.iter().map(|p| p.messages).sum(),
            phases: phase_reports,
            verified: true,
            analytic: CompletionTime::from_counts(&cost_model::proposed_nd(canon.dims()), &params),
            trace,
        };
        Ok((report, deliveries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{BLOCK_HEADER_BYTES, MESSAGE_HEADER_BYTES};
    use alltoall_core::PhaseKind;

    fn runtime(dims: &[u32], config: RuntimeConfig) -> Runtime {
        Runtime::new(&TorusShape::new(dims).unwrap(), config).unwrap()
    }

    #[test]
    fn run_4x4_verifies_bit_exact() {
        let r = runtime(&[4, 4], RuntimeConfig::default()).run().unwrap();
        assert!(r.verified);
        assert_eq!(r.phases.len(), 4);
        // a1 = 4: scatter phases are empty; submesh phases do 2 + 2 steps.
        assert_eq!(r.total_steps(), 4);
        assert!(r.messages > 0);
        assert!(r.wall > Duration::ZERO);
    }

    #[test]
    fn run_8x12_verifies_and_reports() {
        let r = runtime(&[8, 12], RuntimeConfig::default().with_workers(4))
            .run()
            .unwrap();
        assert!(r.verified);
        assert_eq!(r.executed_dims, vec![12, 8]); // canonicalized
        assert!(!r.padded);
        assert_eq!(r.total_steps(), 2 * (12 / 4 + 1));
        assert_eq!(r.trace.total_steps(), r.total_steps());
        assert_eq!(r.workers, 4);
        // Per-phase walls and bytes are populated.
        assert!(r.phases.iter().all(|p| p.wall > Duration::ZERO));
        assert!(r.phases.iter().take(3).all(|p| p.rearranged_bytes > 0));
        assert_eq!(r.phases.last().unwrap().rearranged_bytes, 0);
        assert!(r.wire_bytes > 0);
        assert!(r.peak_node_bytes > 0);
    }

    #[test]
    fn run_4x4x4_verifies() {
        let r = runtime(&[4, 4, 4], RuntimeConfig::default().with_workers(8))
            .run()
            .unwrap();
        assert!(r.verified);
        assert_eq!(r.phases.len(), 5);
        assert_eq!(r.total_steps(), 3 * (4 / 4 + 1));
    }

    #[test]
    fn padded_6x6_runs_real_pairs_only() {
        let r = runtime(&[6, 6], RuntimeConfig::default().with_workers(3))
            .run()
            .unwrap();
        assert!(r.verified);
        assert!(r.padded);
        assert_eq!(r.executed_dims, vec![8, 8]);
        assert_eq!(r.nodes, 36);
    }

    #[test]
    fn wire_volume_accounts_exactly() {
        // Every block is block_bytes long, so total wire bytes must equal
        // message framing + per-block framing + payloads.
        let r = runtime(&[8, 8], RuntimeConfig::default().with_block_bytes(32))
            .run()
            .unwrap();
        let total_blocks: u64 = r
            .trace
            .phases
            .iter()
            .flat_map(|p| p.steps.iter())
            .map(|s| s.total_blocks)
            .sum();
        let expected = r.messages * MESSAGE_HEADER_BYTES as u64
            + total_blocks * (BLOCK_HEADER_BYTES as u64 + 32);
        assert_eq!(r.wire_bytes, expected);
    }

    #[test]
    fn worker_counts_change_nothing_observable() {
        let mk = |workers| {
            let rt = runtime(&[8, 8], RuntimeConfig::default().with_workers(workers));
            let (r, deliveries) = rt
                .run_with_payloads(|s, d| pattern_payload(s, d, 48))
                .unwrap();
            (r, deliveries)
        };
        let (r1, d1) = mk(1);
        let (r5, d5) = mk(5);
        let (r64, d64) = mk(64);
        assert_eq!(d1, d5);
        assert_eq!(d1, d64);
        assert_eq!(r1.wire_bytes, r5.wire_bytes);
        assert_eq!(r1.wire_bytes, r64.wire_bytes);
        assert_eq!(r1.messages, r64.messages);
        assert_eq!(r1.workers, 1);
        assert_eq!(r64.workers, 64);
    }

    #[test]
    fn custom_payloads_deliver_sorted_by_source() {
        let rt = runtime(&[4, 8], RuntimeConfig::default());
        let (r, deliveries) = rt
            .run_with_payloads(|s, d| {
                // Variable lengths: pair-dependent.
                pattern_payload(s, d, ((s + 2 * d) % 7) as usize * 9)
            })
            .unwrap();
        assert!(r.verified);
        let n = 32u32;
        assert_eq!(deliveries.len(), n as usize);
        for (d, got) in deliveries.iter().enumerate() {
            let d = d as u32;
            assert_eq!(got.len(), n as usize - 1);
            let srcs: Vec<NodeId> = got.iter().map(|(s, _)| *s).collect();
            let expected_srcs: Vec<NodeId> = (0..n).filter(|&s| s != d).collect();
            assert_eq!(srcs, expected_srcs);
            for (s, p) in got {
                assert_eq!(*p, pattern_payload(*s, d, ((s + 2 * d) % 7) as usize * 9));
            }
        }
    }

    #[test]
    fn observer_sees_every_step_and_rearrangement() {
        struct Counting {
            starts: usize,
            steps: Vec<(PhaseKind, usize)>,
            rearranges: Vec<PhaseKind>,
            blocks_constant: bool,
            expect: u64,
        }
        impl Observer<Bytes> for Counting {
            fn on_start(&mut self, bufs: &Buffers<Bytes>) {
                self.starts += 1;
                self.expect = bufs.total_blocks();
            }
            fn on_step(&mut self, phase: PhaseKind, step: usize, bufs: &Buffers<Bytes>) {
                self.steps.push((phase, step));
                self.blocks_constant &= bufs.total_blocks() == self.expect;
            }
            fn on_rearrange(&mut self, phase: PhaseKind, bufs: &Buffers<Bytes>) {
                self.rearranges.push(phase);
                self.blocks_constant &= bufs.total_blocks() == self.expect;
            }
        }
        let mut obs = Counting {
            starts: 0,
            steps: Vec::new(),
            rearranges: Vec::new(),
            blocks_constant: true,
            expect: 0,
        };
        let rt = runtime(&[8, 8], RuntimeConfig::default().with_workers(4));
        let r = rt.run_observed(&mut obs).unwrap();
        assert!(r.verified);
        assert_eq!(obs.starts, 1);
        assert_eq!(obs.steps.len(), r.total_steps());
        // n + 1 rearrangements for n + 2 phases.
        assert_eq!(obs.rearranges.len(), 3);
        assert_eq!(
            obs.rearranges,
            vec![
                PhaseKind::Scatter { index: 0 },
                PhaseKind::Scatter { index: 1 },
                PhaseKind::Distance2,
            ]
        );
        assert!(
            obs.blocks_constant,
            "blocks must be conserved at every step"
        );
        // Step numbering matches the analytic executor: 1-based per phase.
        assert_eq!(obs.steps[0], (PhaseKind::Scatter { index: 0 }, 1));
    }

    #[test]
    fn matches_analytic_executor_delivery() {
        // Byte-moving runtime and counting executor agree block-for-block.
        let shape = TorusShape::new(&[8, 8]).unwrap();
        let rt = Runtime::new(&shape, RuntimeConfig::default().with_workers(4)).unwrap();
        let (_, rt_deliveries) = rt
            .run_with_payloads(|s, d| pattern_payload(s, d, 16))
            .unwrap();
        let (report, ex_deliveries) = alltoall_core::Exchange::new(&shape)
            .unwrap()
            .run_with_payloads(&CommParams::unit(), |s, d| pattern_payload(s, d, 16))
            .unwrap();
        assert!(report.verified);
        assert_eq!(rt_deliveries, ex_deliveries);
    }

    #[test]
    fn effective_workers_resolution() {
        let rt = runtime(&[4, 4], RuntimeConfig::default().with_workers(99));
        assert_eq!(rt.effective_workers(), 16); // clamped to node count
        let rt = runtime(&[4, 4], RuntimeConfig::default().with_workers(3));
        assert_eq!(rt.effective_workers(), 3);
    }

    #[test]
    fn analytic_prediction_uses_configured_block_size() {
        let small = runtime(&[8, 8], RuntimeConfig::default().with_block_bytes(16))
            .run()
            .unwrap();
        let large = runtime(&[8, 8], RuntimeConfig::default().with_block_bytes(256))
            .run()
            .unwrap();
        assert!(large.analytic.transmission > small.analytic.transmission);
        assert_eq!(small.analytic.startup, large.analytic.startup);
    }
}
