//! The byte-moving runtime: worker threads execute exchange plans.
//!
//! # Execution model
//!
//! The canonical torus's `N` nodes are multiplexed onto `W` worker
//! threads in contiguous chunks (`W` = [`RuntimeConfig::workers`], else
//! `TORUS_THREADS`, else the machine's available parallelism, clamped to
//! `1..=N`). Each worker
//! *owns* its nodes' buffers outright — no locks on the hot path — and
//! every node has an unbounded lock-free channel as its inbox.
//!
//! Each communication step of the [`StepPlan`] executes as:
//!
//! 1. **assemble** — for every owned node scheduled to send, select the
//!    step's blocks (the paper's per-phase selection rules) and frame
//!    them into one combined wire message (sequence-numbered and
//!    CRC32-protected). Fault-free, the frame is **scatter-gather**
//!    ([`WireFrame::Gathered`]): only the headers are written (into a
//!    pooled buffer — see [`FramePool`]), the payloads travel as shared
//!    [`Bytes`] handles, so combining never copies a payload byte;
//! 2. **transport** — push the message into the destination's inbox
//!    (never blocks: channels are unbounded), then receive exactly the
//!    messages the static schedule says each owned node is due (possibly
//!    empty ones — the paper's idle senders), splitting them zero-copy
//!    into the receiving buffer and returning the frame's buffers to the
//!    receiving worker's pool;
//! 3. **synchronize** — a two-phase [`Barrier`] rendezvous with the main
//!    thread. The first crossing marks "all step traffic delivered" (the
//!    main thread timestamps the step and snapshots buffers for
//!    [`Observer`]s); the second releases everyone into the next step, so
//!    messages from step `s + 1` can never interleave with step `s`.
//!
//! After every phase but the last, workers run the paper's **data
//! rearrangement** as a real memory pass: each node's blocks are sorted
//! into delivery order and their payloads compacted into one fresh
//! contiguous arena (the measured analogue of the `ρ`-term the cost model
//! charges per byte), again bracketed by the two-barrier rendezvous.
//!
//! # Fault tolerance
//!
//! When the configured [`FaultPlan`] is non-empty the runtime switches
//! the send path to the canonical contiguous encoding (injected
//! corruption and truncation need well-defined frame bytes to mutate,
//! and the retained resend copy must be immutable) and the receive path
//! from a blocking wait to a deadline + bounded-retry
//! loop: every sender retains its pristine frame for the step, a receiver
//! whose deadline expires (or whose frame fails the CRC/framing/sequence
//! checks) pulls the retained copy — a modeled NACK + retransmission —
//! with exponential backoff between attempts. Exhausting the retry
//! budget, losing a channel endpoint, or an injected worker kill flips a
//! shared abort flag; every worker then falls through its remaining
//! barriers doing no work, so an aborted run still joins cleanly, leaks
//! no threads, and yields a partial [`RuntimeReport`] inside
//! [`RuntimeError::Aborted`] naming the faulty node, phase, and step.
//!
//! Fault-free runs keep the original semantics: sends never block and
//! every receive is matched to a scheduled send, so the protocol is
//! deadlock-free by construction; determinism across worker counts
//! follows from the per-step barriers plus the fixed ownership partition.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use alltoall_core::block::Buffers;
use alltoall_core::steps::{PlannedStep, StepPlan};
use alltoall_core::{
    verify_delivery, verify_delivery_degraded, Block, NullObserver, Observer, PhaseKind,
    PreparedExchange, RepairedSchedule, RepairedStep,
};
use bytes::{Bytes, BytesMut};
use cost_model::{CommParams, CompletionTime};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use crossbeam::thread as cb_thread;
use torus_sim::{StepStat, Trace};
use torus_topology::{NodeId, TorusShape};

use crate::cancel::{CancelKind, CancelToken};
use crate::degrade::{DeadNode, DegradedReport, OnFailure};
use crate::fault::{FaultEvent, FaultEventKind, FaultKind, FaultPlan, WorkerFaultKind};
use crate::message::{
    decode_gathered, decode_message, encode_gathered, encode_message, WireError, WireFrame,
    BLOCK_HEADER_BYTES, MESSAGE_HEADER_BYTES,
};
use crate::payload::pattern_payload;
use crate::pool::{FramePool, PoolBank};
use crate::recovery::{merge_events, FailureReason, NodeFailure, RecoveryStats, RetryPolicy};
use crate::report::{PhaseReport, RuntimeReport};
use crate::workers::WorkerPool;
use crate::RuntimeError;

/// Configuration for a [`Runtime`].
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Payload bytes per block (the paper's `m`). Used for the default
    /// pattern payloads and the analytic prediction. Default: 64.
    pub block_bytes: usize,
    /// Worker threads to multiplex nodes onto. `None` (default) means the
    /// `TORUS_THREADS` environment variable if set, else the machine's
    /// available parallelism (see [`torus_sim::default_threads`]).
    /// Always clamped to `1..=N`.
    pub workers: Option<usize>,
    /// Machine parameters for the analytic [`CompletionTime`] that rides
    /// along in the report. Default: [`CommParams::cray_t3d_like`].
    pub params: CommParams,
    /// Fault schedule to inject. Default: empty (no faults, and the
    /// recovery bookkeeping is skipped entirely on the hot path).
    pub faults: FaultPlan,
    /// Receive deadline and retry budget used whenever `faults` is
    /// non-empty.
    pub retry: RetryPolicy,
    /// What to do when a node suffers an unrecoverable fault: abort the
    /// run (default), or quarantine the node and complete a repaired
    /// schedule for the survivors. See [`OnFailure`].
    pub on_failure: OnFailure,
    /// External cancellation trigger. When set, workers poll the token
    /// at every step boundary (and inside recovery waits and injected
    /// stalls) and abort the run cooperatively with a typed
    /// [`FailureReason::Cancelled`] / [`FailureReason::DeadlineExceeded`]
    /// when it fires. Default: none.
    pub cancel: Option<CancelToken>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            block_bytes: 64,
            workers: None,
            params: CommParams::cray_t3d_like(),
            faults: FaultPlan::default(),
            retry: RetryPolicy::default(),
            on_failure: OnFailure::default(),
            cancel: None,
        }
    }
}

impl RuntimeConfig {
    /// Sets the payload bytes per block.
    pub fn with_block_bytes(mut self, bytes: usize) -> Self {
        self.block_bytes = bytes;
        self
    }

    /// Caps the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Sets the machine parameters for the analytic prediction.
    pub fn with_params(mut self, params: CommParams) -> Self {
        self.params = params;
        self
    }

    /// Installs a fault schedule.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the receive deadline / retry budget.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the unrecoverable-failure policy.
    pub fn with_on_failure(mut self, on_failure: OnFailure) -> Self {
        self.on_failure = on_failure;
        self
    }

    /// Installs an external cancellation token; keep a clone and trigger
    /// it from any thread to stop the run between steps.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Locks a mutex, tolerating poisoning: an aborting run must still be
/// able to collect partial state even if some worker panicked while
/// holding a lock. Shared with the collective executor.
pub(crate) fn lk<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One flipped byte at a deterministic offset — the payload of
/// [`FaultKind::CorruptByte`].
pub(crate) fn corrupt_frame(frame: &Bytes, offset: usize) -> Bytes {
    let mut v = frame.to_vec();
    if !v.is_empty() {
        let at = offset % v.len();
        v[at] ^= 0x01;
    }
    Bytes::from(v)
}

/// Keeps only the first half of the frame — [`FaultKind::Truncate`].
pub(crate) fn truncate_frame(frame: &Bytes) -> Bytes {
    frame.slice(..frame.len() / 2)
}

/// A reusable byte-moving executor for one torus shape.
///
/// Construction does all the schedule work once (canonicalization,
/// padding, shift vectors, step plan); every [`run`](Self::run) then
/// seeds real payloads, executes the plan over worker threads, and
/// verifies delivery bit-exactly.
pub struct Runtime {
    prepared: Arc<PreparedExchange>,
    plan: Arc<StepPlan>,
    config: RuntimeConfig,
}

/// Per-worker, per-global-step measurement.
#[derive(Clone, Copy, Default)]
struct StepSide {
    messages: u64,
    blocks: u64,
    max_blocks: u64,
    wire_bytes: u64,
    retries: u64,
}

/// Per-worker, per-phase measurement.
#[derive(Clone, Copy, Default)]
struct PhaseSide {
    assembly: Duration,
    transport: Duration,
    rearrange: Duration,
    wire_bytes: u64,
    rearranged_bytes: u64,
    bytes_copied: u64,
    allocations: u64,
    messages: u64,
    rearr_blocks_max: u64,
}

/// Everything one worker measured, returned at join.
struct WorkerStats {
    phase: Vec<PhaseSide>,
    steps: Vec<StepSide>,
    peak_bytes: u64,
    faults: RecoveryStats,
    events: Vec<FaultEvent>,
    /// Degraded mode: blocks this worker discarded executing drop lists.
    dropped_found: u64,
    /// Degraded mode: repaired sends whose drained block count did not
    /// match the manifest (a planner/executor divergence — any nonzero
    /// total fails verification after the join).
    manifest_mismatches: u64,
}

/// A step as the workers execute it: either a base-plan step (block
/// selection by the paper's per-phase rules) or a repaired step (block
/// selection by explicit per-node manifests).
#[derive(Clone, Copy)]
enum ExecStep<'a> {
    Base(&'a PlannedStep),
    Repaired(&'a RepairedStep),
}

impl ExecStep<'_> {
    fn hops(&self) -> u32 {
        match self {
            ExecStep::Base(st) => st.hops,
            ExecStep::Repaired(st) => st.hops,
        }
    }

    /// Where `node` sends this step, `None` if it idles.
    fn dst_of(&self, node: usize) -> Option<NodeId> {
        match self {
            ExecStep::Base(st) => st.sends[node].map(|s| s.dst),
            ExecStep::Repaired(st) => st.sends[node].as_ref().map(|s| s.dst),
        }
    }
}

/// A phase view unifying the base plan and a repaired schedule, so one
/// worker loop executes both.
struct ExecPhase<'a> {
    name: &'a str,
    kind: PhaseKind,
    rearrange_after: bool,
    steps: Vec<ExecStep<'a>>,
}

/// Everything a degraded-mode execution needs beyond the base plan.
struct DegradeCtx {
    repaired: Arc<RepairedSchedule>,
    dead_nodes: Vec<DeadNode>,
    restarts: u32,
}

/// How a run executes its worker tasks.
#[derive(Clone, Copy)]
enum ExecBackend<'p> {
    /// Spawn fresh scoped threads and join them at run end — the classic
    /// one-shot measurement path.
    Spawn,
    /// Reserve a gang of persistent threads from a [`WorkerPool`],
    /// optionally recycling warm [`FramePool`]s through a [`PoolBank`] —
    /// the service path, where threads park between jobs instead of
    /// being respawned.
    Pool(&'p WorkerPool, Option<&'p PoolBank>),
}

fn snapshot_buffers(slots: &[Mutex<Vec<Block<Bytes>>>]) -> Buffers<Bytes> {
    Buffers::from_vecs(slots.iter().map(|m| lk(m).clone()).collect())
}

/// The per-run state every worker task shares.
///
/// Owned or reference-counted (`'static`) rather than scope-borrowed, so
/// the same worker body runs both on freshly spawned scoped threads and
/// on a persistent [`WorkerPool`] whose tasks outlive any stack frame.
/// One `RunShared` exists per run: its abort flag, failure slot, retained
/// frames, and channels are born and die with the job, which is what
/// isolates one job's abort or quarantine from every other job sharing
/// the pool.
struct RunShared {
    plan: Arc<StepPlan>,
    /// Present when executing a repaired (degraded-mode) schedule.
    repaired: Option<Arc<RepairedSchedule>>,
    faults: FaultPlan,
    retry: RetryPolicy,
    degrade_mode: bool,
    observe: bool,
    /// `expect_from[g][node]`: who `node` receives from in global step `g`.
    expect_from: Vec<Vec<Option<NodeId>>>,
    /// Failure context: global step -> (phase label, 1-based step).
    step_ctx: Vec<(String, usize)>,
    /// Per-node inbox senders (any worker may deliver to any node).
    senders: Vec<Sender<WireFrame>>,
    /// Per-destination retained resend frame for the current step.
    retained: Vec<Mutex<Option<Bytes>>>,
    abort: AtomicBool,
    /// External cancellation trigger, observed cooperatively by workers.
    cancel: Option<CancelToken>,
    failure_slot: Mutex<Option<NodeFailure>>,
    barrier: Barrier,
    snapshots: Vec<Mutex<Vec<Block<Bytes>>>>,
    finals: Vec<Mutex<Vec<Block<Bytes>>>>,
    total_steps: usize,
}

impl RunShared {
    /// Records the first unrecoverable failure and raises the abort flag.
    fn fail(&self, node: NodeId, g: usize, reason: FailureReason) {
        let mut slot = lk(&self.failure_slot);
        if slot.is_none() {
            let (phase, step) = self.step_ctx[g].clone();
            *slot = Some(NodeFailure {
                node,
                phase,
                step,
                global_step: g,
                reason,
            });
        }
        self.abort.store(true, Ordering::SeqCst);
    }

    /// Polls the external cancellation token (if any) and converts a
    /// trigger into the run's first-failure-wins abort, attributed to
    /// `node` at global step `g`. Returns `true` when the run is (now)
    /// aborting for any reason, so call sites can fold this into their
    /// existing skip checks.
    fn observe_cancel(&self, node: NodeId, g: usize) -> bool {
        if let Some(token) = &self.cancel {
            if let Some(kind) = token.kind() {
                let reason = match kind {
                    CancelKind::Cancelled => FailureReason::Cancelled,
                    CancelKind::DeadlineExceeded => FailureReason::DeadlineExceeded,
                };
                self.fail(node, g, reason);
                return true;
            }
        }
        self.abort.load(Ordering::Acquire)
    }

    /// The deadline + bounded-retry receive loop (fault plans only).
    ///
    /// Waits on the inbox with a deadline; on timeout, CRC/framing
    /// failure, or a stale sequence from a resend, pulls the sender's
    /// retained pristine frame (a modeled NACK + retransmission) with
    /// exponential backoff. Returns the step's blocks, or `None` if the
    /// run aborted (this receive's own budget exhausting is one way that
    /// happens).
    #[allow(clippy::too_many_arguments)]
    fn recover_recv(
        &self,
        rx: &Receiver<WireFrame>,
        retained: &Mutex<Option<Bytes>>,
        me: NodeId,
        src: NodeId,
        g: usize,
        counters: &mut RecoveryStats,
        events: &mut Vec<FaultEvent>,
        step_retries: &mut u64,
    ) -> Option<Vec<Block<Bytes>>> {
        let faults = &self.faults;
        let policy = self.retry;
        // `cycles` counts *failed* recovery cycles: it charges the retry
        // budget only when a recovery attempt itself came up empty or
        // invalid, so a single drop healed by the first resend costs
        // nothing. `fetches` numbers retained-buffer fetches 1-based —
        // the "attempt" coordinate resend faults are pinned to.
        let mut cycles = 0u32;
        let mut fetches = 0u32;
        let mut needed_recovery = false;
        let blocks = loop {
            if self.observe_cancel(me, g) {
                break None;
            }
            if cycles > policy.max_retries {
                self.fail(me, g, FailureReason::RetryExhausted { src });
                break None;
            }
            let wait = if cycles == 0 {
                policy.deadline
            } else {
                policy.backoff_for(cycles)
            };
            let mut via_resend = false;
            let raw = match self.recv_sliced(rx, wait) {
                // Under a fault plan senders always transmit contiguous
                // frames; normalize defensively so validation below
                // always sees canonical bytes.
                Ok(frame) => Some(frame.to_bytes()),
                Err(RecvTimeoutError::Disconnected) => {
                    self.fail(me, g, FailureReason::ChannelClosed);
                    break None;
                }
                Err(RecvTimeoutError::Timeout) => {
                    counters.timeouts += 1;
                    needed_recovery = true;
                    via_resend = true;
                    let frame = lk(retained).clone();
                    match frame {
                        // The sender may not have retained this step's
                        // frame yet (stalled peer); retry after backoff.
                        None => None,
                        Some(mut frame) => {
                            fetches += 1;
                            counters.resends += 1;
                            // The retransmission itself can be faulted
                            // (explicitly pinned attempts >= 1 — how the
                            // tests provoke budget exhaustion).
                            let mut dropped = false;
                            for kind in faults.message_faults(g, src, me, fetches) {
                                events.push(FaultEvent {
                                    step: g,
                                    src,
                                    dst: me,
                                    attempt: fetches,
                                    kind: FaultEventKind::Message(kind),
                                });
                                match kind {
                                    FaultKind::Drop => {
                                        counters.injected_drops += 1;
                                        dropped = true;
                                    }
                                    FaultKind::DelayMicros(us) => {
                                        counters.injected_delays += 1;
                                        std::thread::sleep(Duration::from_micros(us));
                                    }
                                    FaultKind::Duplicate => {
                                        counters.injected_duplicates += 1;
                                    }
                                    FaultKind::CorruptByte => {
                                        counters.injected_corruptions += 1;
                                        frame = corrupt_frame(
                                            &frame,
                                            faults.corrupt_offset(g, src, me, frame.len()),
                                        );
                                    }
                                    FaultKind::Truncate => {
                                        counters.injected_truncations += 1;
                                        frame = truncate_frame(&frame);
                                    }
                                }
                            }
                            if dropped {
                                None
                            } else {
                                Some(frame)
                            }
                        }
                    }
                }
            };
            let Some(raw) = raw else {
                cycles += 1;
                counters.retries += 1;
                *step_retries += 1;
                continue;
            };
            match decode_message(&raw) {
                Ok((seq, blocks)) if seq as usize == g => break Some(blocks),
                Ok(_) => {
                    // Wrong sequence number: a duplicate or over-deadline
                    // straggler from an earlier step (drain it free — the
                    // inbox backlog is finite), or a stale retained frame
                    // from a dead sender (charge the budget, or this
                    // could spin forever).
                    counters.stale_discarded += 1;
                    if via_resend {
                        cycles += 1;
                        counters.retries += 1;
                        *step_retries += 1;
                    }
                    continue;
                }
                Err(e) => {
                    match e {
                        WireError::Crc { .. } => counters.crc_failures += 1,
                        _ => counters.decode_failures += 1,
                    }
                    needed_recovery = true;
                    cycles += 1;
                    counters.retries += 1;
                    *step_retries += 1;
                    continue;
                }
            }
        };
        if blocks.is_some() && needed_recovery {
            counters.recovered += 1;
        }
        blocks
    }

    /// `recv_timeout(wait)`, but sliced into bounded chunks when a
    /// cancellation token is installed, so a worker parked on a long
    /// retry deadline still notices an external cancel within ~20 ms.
    /// An observed trigger surfaces as a timeout; the caller's loop head
    /// converts it into the typed abort.
    fn recv_sliced(
        &self,
        rx: &Receiver<WireFrame>,
        wait: Duration,
    ) -> Result<WireFrame, RecvTimeoutError> {
        let Some(token) = &self.cancel else {
            return rx.recv_timeout(wait);
        };
        let deadline = Instant::now() + wait;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            match rx.recv_timeout(left.min(Duration::from_millis(20))) {
                Err(RecvTimeoutError::Timeout) => {
                    if token.is_triggered() || self.abort.load(Ordering::Acquire) {
                        return Err(RecvTimeoutError::Timeout);
                    }
                }
                other => return other,
            }
        }
    }
}

/// The unified phase view over the base plan or a repaired schedule.
/// Rebuilt cheaply (vectors of references) wherever it is needed — each
/// worker task and the driving thread build their own, so no lifetime
/// ties a task to the driver's stack.
fn build_exec_phases<'a>(
    plan: &'a StepPlan,
    repaired: Option<&'a RepairedSchedule>,
) -> Vec<ExecPhase<'a>> {
    match repaired {
        None => plan
            .phases()
            .iter()
            .map(|ph| ExecPhase {
                name: &ph.name,
                kind: ph.kind,
                rearrange_after: ph.rearrange_after,
                steps: ph.steps.iter().map(ExecStep::Base).collect(),
            })
            .collect(),
        Some(rep) => rep
            .phases
            .iter()
            .map(|ph| ExecPhase {
                name: &ph.name,
                kind: ph.kind,
                rearrange_after: ph.rearrange_after,
                steps: ph.steps.iter().map(ExecStep::Repaired).collect(),
            })
            .collect(),
    }
}

/// One worker task: executes every step of the plan for its contiguous
/// chunk of nodes (`base ..`), returning its measurements and its frame
/// pool (warm, for recycling through a [`PoolBank`]).
///
/// Runs identically on a scoped thread ([`ExecBackend::Spawn`]) or a
/// persistent pool thread ([`ExecBackend::Pool`]); everything it touches
/// lives in [`RunShared`] or is moved in.
fn worker_body(
    shared: &RunShared,
    base: usize,
    mut bufs: Vec<Vec<Block<Bytes>>>,
    rxs: Vec<Receiver<WireFrame>>,
    mut pool: FramePool,
) -> (WorkerStats, FramePool) {
    let plan = &*shared.plan;
    let phases = build_exec_phases(plan, shared.repaired.as_deref());
    let faults = &shared.faults;
    let no_faults = faults.is_empty();
    let degrade_mode = shared.degrade_mode;
    let observe = shared.observe;
    let abort = &shared.abort;
    let senders = &shared.senders[..];
    let retained = &shared.retained[..];
    let expect_from = &shared.expect_from;
    let barrier = &shared.barrier;

    let mut stats = WorkerStats {
        phase: vec![PhaseSide::default(); phases.len()],
        steps: vec![StepSide::default(); shared.total_steps],
        peak_bytes: 0,
        faults: RecoveryStats::default(),
        events: Vec::new(),
        dropped_found: 0,
        manifest_mismatches: 0,
    };
    // Recycled send-side state: the frame-buffer pool and the per-step
    // outgoing scratch vector. Both reach steady state after the first
    // step or two and stop allocating.
    let mut outgoing: Vec<Block<Bytes>> = Vec::new();
    // A killed worker turns into a zombie: it does no work but keeps
    // crossing barriers so nothing deadlocks.
    let mut dead = false;
    let mut g = 0usize;
    for (pi, ph) in phases.iter().enumerate() {
        for est in &ph.steps {
            let est = *est;
            if !no_faults && !dead {
                for li in 0..bufs.len() {
                    let node = (base + li) as NodeId;
                    let Some(wf) = faults.worker_fault(g, node) else {
                        continue;
                    };
                    stats.events.push(FaultEvent {
                        step: g,
                        src: node,
                        dst: node,
                        attempt: 0,
                        kind: FaultEventKind::Worker(wf),
                    });
                    match wf {
                        WorkerFaultKind::Kill => {
                            stats.faults.injected_kills += 1;
                            if !degrade_mode {
                                shared.fail(node, g, FailureReason::WorkerKilled { node });
                                dead = true;
                            }
                            // Degraded runs absorb the kill: the node is
                            // already quarantined in the repaired
                            // schedule (its sends and receives are
                            // gone), and its worker must stay alive to
                            // route salvaged survivor blocks out in
                            // fallback.
                        }
                        WorkerFaultKind::StallMicros(us) => {
                            stats.faults.injected_stalls += 1;
                            // Sleep in bounded slices, polling the abort
                            // flag and the cancellation token, so an
                            // externally stopped run is not pinned for
                            // the stall's full duration.
                            let stall_until = Instant::now() + Duration::from_micros(us);
                            while !shared.observe_cancel(node, g) {
                                let left = stall_until.saturating_duration_since(Instant::now());
                                if left.is_zero() {
                                    break;
                                }
                                std::thread::sleep(left.min(Duration::from_millis(1)));
                            }
                        }
                    }
                }
            }
            let skip = dead || shared.observe_cancel(base as NodeId, g);
            if !skip {
                let pstats = &mut stats.phase[pi];
                let sstats = &mut stats.steps[g];

                // Degraded mode: quarantine drops take effect at step
                // entry, before any send — discard the listed blocks
                // from owned holders.
                if let ExecStep::Repaired(rst) = est {
                    for (holder, pairs) in &rst.drops {
                        let h = *holder as usize;
                        if h < base || h >= base + bufs.len() {
                            continue;
                        }
                        let buf = &mut bufs[h - base];
                        let before = buf.len();
                        buf.retain(|b| pairs.binary_search(&(b.src, b.dst)).is_err());
                        stats.dropped_found += (before - buf.len()) as u64;
                    }
                }

                // Assemble and send for every owned scheduled sender.
                for (li, buf) in bufs.iter_mut().enumerate() {
                    let node = (base + li) as NodeId;
                    let Some(dst) = est.dst_of(node as usize) else {
                        continue;
                    };
                    let t0 = Instant::now();
                    outgoing.clear();
                    match est {
                        ExecStep::Base(st) => buf.retain_mut(|b| {
                            if plan.selects(st, node, b) {
                                if let Some(p) = StepPlan::shift_decrement(st) {
                                    b.shifts[p] -= 1;
                                }
                                outgoing.push(std::mem::replace(
                                    b,
                                    Block::with_payload(0, 0, Bytes::new()),
                                ));
                                false
                            } else {
                                true
                            }
                        }),
                        ExecStep::Repaired(st) => {
                            // Manifest-driven: the repaired plan lists
                            // the exact (src, dst) pairs to fold in. No
                            // shift bookkeeping — repaired selection
                            // never reads it.
                            let spec = st.sends[node as usize]
                                .as_ref()
                                .expect("dst_of returned Some");
                            buf.retain_mut(|b| {
                                if spec.pairs.binary_search(&(b.src, b.dst)).is_ok() {
                                    outgoing.push(std::mem::replace(
                                        b,
                                        Block::with_payload(0, 0, Bytes::new()),
                                    ));
                                    false
                                } else {
                                    true
                                }
                            });
                            if outgoing.len() != spec.pairs.len() {
                                stats.manifest_mismatches += 1;
                            }
                        }
                    }
                    let msg = if no_faults {
                        // Zero-copy: headers into a pooled buffer,
                        // payloads shared by handle.
                        let framing_len =
                            MESSAGE_HEADER_BYTES + outgoing.len() * BLOCK_HEADER_BYTES;
                        let allocs = pool.allocations();
                        let frame = encode_gathered(
                            g as u32,
                            &outgoing,
                            pool.take_buf(framing_len),
                            pool.take_vec(),
                        );
                        pstats.allocations += pool.allocations() - allocs;
                        pstats.bytes_copied += framing_len as u64;
                        frame
                    } else {
                        // Fault plans need mutable frame bytes (and an
                        // immutable retained copy), so materialize the
                        // canonical layout.
                        let bytes = encode_message(g as u32, &outgoing);
                        pstats.allocations += 1;
                        pstats.bytes_copied += bytes.len() as u64;
                        WireFrame::Contiguous(bytes)
                    };
                    let assembled = Instant::now();
                    pstats.assembly += assembled - t0;
                    sstats.messages += 1;
                    sstats.blocks += outgoing.len() as u64;
                    sstats.max_blocks = sstats.max_blocks.max(outgoing.len() as u64);
                    // Wire accounting is for the pristine frame; injected
                    // mutations don't change the schedule's cost.
                    sstats.wire_bytes += msg.wire_len() as u64;
                    pstats.wire_bytes += msg.wire_len() as u64;
                    pstats.messages += 1;
                    if no_faults {
                        if senders[dst as usize].send(msg).is_err() {
                            shared.fail(node, g, FailureReason::ChannelClosed);
                        }
                    } else {
                        let msg = msg.to_bytes();
                        // Retain the pristine frame so the receiver can
                        // recover it; then mutate what actually goes on
                        // the wire.
                        *lk(&retained[dst as usize]) = Some(msg.clone());
                        let mut deliver = vec![msg];
                        for kind in faults.message_faults(g, node, dst, 0) {
                            stats.events.push(FaultEvent {
                                step: g,
                                src: node,
                                dst,
                                attempt: 0,
                                kind: FaultEventKind::Message(kind),
                            });
                            match kind {
                                FaultKind::Drop => {
                                    stats.faults.injected_drops += 1;
                                    deliver.clear();
                                }
                                FaultKind::DelayMicros(us) => {
                                    stats.faults.injected_delays += 1;
                                    std::thread::sleep(Duration::from_micros(us));
                                }
                                FaultKind::Duplicate => {
                                    stats.faults.injected_duplicates += 1;
                                    if let Some(f) = deliver.first().cloned() {
                                        deliver.push(f);
                                    }
                                }
                                FaultKind::CorruptByte => {
                                    stats.faults.injected_corruptions += 1;
                                    let off = faults.corrupt_offset(
                                        g,
                                        node,
                                        dst,
                                        deliver.first().map_or(0, Bytes::len),
                                    );
                                    deliver =
                                        deliver.iter().map(|f| corrupt_frame(f, off)).collect();
                                }
                                FaultKind::Truncate => {
                                    stats.faults.injected_truncations += 1;
                                    deliver = deliver.iter().map(truncate_frame).collect();
                                }
                            }
                        }
                        for f in deliver {
                            if senders[dst as usize]
                                .send(WireFrame::Contiguous(f))
                                .is_err()
                            {
                                shared.fail(node, g, FailureReason::ChannelClosed);
                                break;
                            }
                        }
                    }
                    pstats.transport += assembled.elapsed();
                }

                // Receive exactly the scheduled traffic, split it
                // zero-copy, and track residency.
                for (li, buf) in bufs.iter_mut().enumerate() {
                    let me = (base + li) as NodeId;
                    if let Some(src) = expect_from[g][base + li] {
                        let t0 = Instant::now();
                        if no_faults {
                            // Fast path: a scheduled frame is always
                            // sent, so a blocking receive cannot
                            // deadlock. With a cancel token installed a
                            // peer may observe the trigger at step entry
                            // and skip its sends, so the receive must
                            // poll the abort state instead of blocking
                            // forever on a frame that will never come.
                            let frame = if shared.cancel.is_none() {
                                match rxs[li].recv() {
                                    Ok(frame) => Some(frame),
                                    Err(_) => {
                                        shared.fail(me, g, FailureReason::ChannelClosed);
                                        None
                                    }
                                }
                            } else {
                                loop {
                                    match rxs[li].recv_timeout(Duration::from_millis(20)) {
                                        Ok(frame) => break Some(frame),
                                        Err(RecvTimeoutError::Timeout) => {
                                            if shared.observe_cancel(me, g) {
                                                break None;
                                            }
                                        }
                                        Err(RecvTimeoutError::Disconnected) => {
                                            shared.fail(me, g, FailureReason::ChannelClosed);
                                            break None;
                                        }
                                    }
                                }
                            };
                            let received = Instant::now();
                            pstats.transport += received - t0;
                            if let Some(frame) = frame {
                                // Split the frame into the node buffer.
                                // Self-produced frames never fail to
                                // decode; without a fault plan there is
                                // no retained copy to retry from, so a
                                // wire error here is unrecoverable and
                                // named exactly.
                                let decoded = match frame {
                                    WireFrame::Gathered {
                                        framing,
                                        mut payloads,
                                    } => {
                                        let r = decode_gathered(&framing, &mut payloads, buf);
                                        if r.is_ok() {
                                            // Keep the pools warm: the
                                            // receiver recycles the
                                            // sender's buffers.
                                            pool.put_buf(framing);
                                            pool.put_vec(payloads);
                                        }
                                        r.map(|_| ())
                                    }
                                    WireFrame::Contiguous(raw) => decode_message(&raw)
                                        .map(|(_, mut blocks)| buf.append(&mut blocks)),
                                };
                                match decoded {
                                    Ok(()) => pstats.assembly += received.elapsed(),
                                    Err(e) => {
                                        match e {
                                            WireError::Crc { .. } => stats.faults.crc_failures += 1,
                                            _ => stats.faults.decode_failures += 1,
                                        }
                                        shared.fail(
                                            me,
                                            g,
                                            FailureReason::Integrity { src, error: e },
                                        );
                                    }
                                }
                            }
                        } else {
                            let blocks = shared.recover_recv(
                                &rxs[li],
                                &retained[base + li],
                                me,
                                src,
                                g,
                                &mut stats.faults,
                                &mut stats.events,
                                &mut sstats.retries,
                            );
                            let received = Instant::now();
                            pstats.transport += received - t0;
                            if let Some(mut blocks) = blocks {
                                buf.append(&mut blocks);
                                pstats.assembly += received.elapsed();
                            }
                        }
                    }
                    let mut resident: u64 = buf.iter().map(|b| b.payload.len() as u64).sum();
                    if !no_faults {
                        // The frame retained for this node's recovery is
                        // resident memory too (the fault-free path
                        // retains nothing and stays lock-free).
                        resident += lk(&retained[base + li])
                            .as_ref()
                            .map_or(0, |f| f.len() as u64);
                    }
                    stats.peak_bytes = stats.peak_bytes.max(resident);
                }

                if observe {
                    for (li, buf) in bufs.iter().enumerate() {
                        *lk(&shared.snapshots[base + li]) = buf.clone();
                    }
                }
            }
            g += 1;
            barrier.wait(); // step traffic complete
            barrier.wait(); // released into the next step
        }

        if ph.rearrange_after {
            if !(dead || abort.load(Ordering::Acquire)) {
                let pstats = &mut stats.phase[pi];
                for buf in bufs.iter_mut() {
                    let t0 = Instant::now();
                    // The paper's inter-phase rearrangement: compact the
                    // node's data array into delivery order with one
                    // contiguous copy pass.
                    buf.sort_by_key(|b| (b.dst, b.src));
                    let total: usize = buf.iter().map(|b| b.payload.len()).sum();
                    // The arena is frozen and retained by the blocks, so
                    // it can't be pooled; its copy volume is
                    // `rearranged_bytes`, kept apart from the send
                    // path's `bytes_copied`.
                    pstats.allocations += 1;
                    let mut arena = BytesMut::with_capacity(total);
                    for b in buf.iter() {
                        arena.extend_from_slice(&b.payload);
                    }
                    let arena = arena.freeze();
                    let mut off = 0usize;
                    for b in buf.iter_mut() {
                        let len = b.payload.len();
                        b.payload = arena.slice(off..off + len);
                        off += len;
                    }
                    pstats.rearrange += t0.elapsed();
                    pstats.rearranged_bytes += total as u64;
                    pstats.rearr_blocks_max = pstats.rearr_blocks_max.max(buf.len() as u64);
                }
                if observe {
                    for (li, buf) in bufs.iter().enumerate() {
                        *lk(&shared.snapshots[base + li]) = buf.clone();
                    }
                }
            }
            barrier.wait(); // rearrangement complete
            barrier.wait();
        }
    }
    for (li, buf) in bufs.iter_mut().enumerate() {
        *lk(&shared.finals[base + li]) = std::mem::take(buf);
    }
    (stats, pool)
}

/// The driving thread's half of the run: mirror every barrier the
/// workers cross, timestamping steps and phases and feeding the observer.
/// Crosses every barrier unconditionally, so it never hangs even when
/// workers are skipping an aborted run.
fn drive_barriers<O: Observer<Bytes>>(
    phases: &[ExecPhase<'_>],
    shared: &RunShared,
    observer: &mut O,
) -> (Vec<Duration>, Vec<Duration>, Duration) {
    let observe = shared.observe;
    let t_run = Instant::now();
    let mut phase_walls = Vec::with_capacity(phases.len());
    let mut step_walls = Vec::with_capacity(shared.total_steps);
    for ph in phases {
        let t_phase = Instant::now();
        for si in 0..ph.steps.len() {
            let t_step = Instant::now();
            shared.barrier.wait();
            step_walls.push(t_step.elapsed());
            if observe {
                observer.on_step(ph.kind, si + 1, &snapshot_buffers(&shared.snapshots));
            }
            shared.barrier.wait();
        }
        if ph.rearrange_after {
            shared.barrier.wait();
            if observe {
                observer.on_rearrange(ph.kind, &snapshot_buffers(&shared.snapshots));
            }
            shared.barrier.wait();
        }
        phase_walls.push(t_phase.elapsed());
    }
    (phase_walls, step_walls, t_run.elapsed())
}

impl Runtime {
    /// Prepares a runtime for `shape` (any extents; padding applies).
    pub fn new(shape: &TorusShape, config: RuntimeConfig) -> Result<Self, RuntimeError> {
        Ok(Self::from_prepared(PreparedExchange::new(shape)?, config))
    }

    /// Wraps an existing [`PreparedExchange`] (shares its cached seeding
    /// and verification tables).
    pub fn from_prepared(prepared: PreparedExchange, config: RuntimeConfig) -> Self {
        let prepared = Arc::new(prepared);
        let plan = prepared.step_plan_arc();
        Self {
            prepared,
            plan,
            config,
        }
    }

    /// Builds a runtime over *shared* schedule state: a plan-cache entry
    /// serving many concurrent jobs hands every job the same
    /// reference-counted [`PreparedExchange`] and [`StepPlan`], so
    /// steady-state job construction does no schedule work at all.
    pub fn from_shared(
        prepared: Arc<PreparedExchange>,
        plan: Arc<StepPlan>,
        config: RuntimeConfig,
    ) -> Self {
        Self {
            prepared,
            plan,
            config,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The step plan being executed.
    pub fn plan(&self) -> &StepPlan {
        &self.plan
    }

    /// The underlying prepared exchange.
    pub fn prepared(&self) -> &PreparedExchange {
        &self.prepared
    }

    /// The worker count a run will use on the spawn (non-pooled) path.
    /// Pooled runs additionally clamp to the pool's size.
    pub fn effective_workers(&self) -> usize {
        let nn = self.plan.shape().num_nodes() as usize;
        self.config
            .workers
            .unwrap_or_else(torus_sim::default_threads)
            .clamp(1, nn)
    }

    /// Runs one exchange with deterministic per-pair pattern payloads of
    /// [`block_bytes`](RuntimeConfig::block_bytes) each, and verifies
    /// delivery bit-exactly. This is the standard measurement entry point.
    pub fn run(&self) -> Result<RuntimeReport, RuntimeError> {
        let m = self.config.block_bytes;
        self.run_policy(
            ExecBackend::Spawn,
            &mut NullObserver,
            |s, d| pattern_payload(s, d, m),
            false,
        )
        .map(|(report, _)| report)
    }

    /// Like [`run`](Self::run), but executes on a persistent
    /// [`WorkerPool`] instead of spawning threads: the run reserves a
    /// gang of `min(effective_workers, pool.size())` pool threads, and
    /// they return to the pool afterwards instead of being joined.
    pub fn run_on(&self, pool: &WorkerPool) -> Result<RuntimeReport, RuntimeError> {
        let m = self.config.block_bytes;
        self.run_policy(
            ExecBackend::Pool(pool, None),
            &mut NullObserver,
            |s, d| pattern_payload(s, d, m),
            false,
        )
        .map(|(report, _)| report)
    }

    /// The service entry point: executes on a persistent [`WorkerPool`]
    /// with caller-provided payloads, optionally recycling warm frame
    /// pools through `bank` so repeated jobs stay allocation-free.
    /// Returns the report plus per-node deliveries like
    /// [`run_with_payloads`](Self::run_with_payloads). The configured
    /// [`OnFailure`] policy applies per-run: an abort or quarantine is
    /// confined to this run's state and never poisons the pool.
    #[allow(clippy::type_complexity)]
    pub fn run_pooled<F>(
        &self,
        pool: &WorkerPool,
        bank: Option<&PoolBank>,
        payload: F,
    ) -> Result<(RuntimeReport, Vec<Vec<(NodeId, Bytes)>>), RuntimeError>
    where
        F: FnMut(NodeId, NodeId) -> Bytes,
    {
        self.run_policy(
            ExecBackend::Pool(pool, bank),
            &mut NullObserver,
            payload,
            false,
        )
    }

    /// Runs one exchange carrying caller-provided payloads:
    /// `payload(src, dst)` (original node ids) produces each block's
    /// bytes (lengths may vary per pair). Returns the report plus, for
    /// every original node, the delivered `(source, payload)` pairs
    /// sorted by source.
    #[allow(clippy::type_complexity)]
    pub fn run_with_payloads<F>(
        &self,
        payload: F,
    ) -> Result<(RuntimeReport, Vec<Vec<(NodeId, Bytes)>>), RuntimeError>
    where
        F: FnMut(NodeId, NodeId) -> Bytes,
    {
        self.run_policy(ExecBackend::Spawn, &mut NullObserver, payload, false)
    }

    /// Runs with pattern payloads and an [`Observer`] receiving per-step
    /// buffer snapshots (canonical node ids) — the same interface the
    /// analytic executor drives the figure harness with.
    pub fn run_observed<O: Observer<Bytes>>(
        &self,
        observer: &mut O,
    ) -> Result<RuntimeReport, RuntimeError> {
        let m = self.config.block_bytes;
        self.run_policy(
            ExecBackend::Spawn,
            observer,
            |s, d| pattern_payload(s, d, m),
            true,
        )
        .map(|(report, _)| report)
    }

    /// Routes a run through the configured [`OnFailure`] policy.
    #[allow(clippy::type_complexity)]
    fn run_policy<F, O>(
        &self,
        backend: ExecBackend<'_>,
        observer: &mut O,
        payload: F,
        observe: bool,
    ) -> Result<(RuntimeReport, Vec<Vec<(NodeId, Bytes)>>), RuntimeError>
    where
        F: FnMut(NodeId, NodeId) -> Bytes,
        O: Observer<Bytes>,
    {
        match self.config.on_failure {
            OnFailure::Abort => self.run_impl(backend, observer, payload, observe, None),
            OnFailure::Degrade => self.run_degrade(backend, observer, payload, observe),
        }
    }

    /// Degraded-mode driver: quarantine failed nodes and execute a
    /// repaired schedule that completes for the survivors.
    ///
    /// Pinned kills are known up front, so they seed the quarantine set
    /// directly and the first execution already runs repaired. Dynamic
    /// failures (an exhausted retry budget, an unrecoverable integrity
    /// error) surface as an aborted run naming the culprit node; the
    /// driver quarantines it from the step it failed at, replans, and
    /// restarts from freshly seeded buffers. Each restart permanently
    /// removes one node, and the restart budget bounds the loop.
    #[allow(clippy::type_complexity)]
    fn run_degrade<F, O>(
        &self,
        backend: ExecBackend<'_>,
        observer: &mut O,
        mut payload: F,
        observe: bool,
    ) -> Result<(RuntimeReport, Vec<Vec<(NodeId, Bytes)>>), RuntimeError>
    where
        F: FnMut(NodeId, NodeId) -> Bytes,
        O: Observer<Bytes>,
    {
        const MAX_RESTARTS: u32 = 8;
        let exchange = self.prepared.exchange();
        let base_total = self.plan.total_steps();
        let mut quarantine: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut reasons: BTreeMap<NodeId, FailureReason> = BTreeMap::new();
        // Kills pinned at or past the end of the base plan would never
        // fire in the base schedule; they are ignored rather than
        // quarantined.
        for (step, node) in self.config.faults.kills() {
            if step < base_total {
                quarantine.entry(node).or_insert(step);
                reasons
                    .entry(node)
                    .or_insert(FailureReason::WorkerKilled { node });
            }
        }
        let mut restarts = 0u32;
        loop {
            let result = if quarantine.is_empty() {
                // Nothing dead (yet): the base plan as-is.
                self.run_impl(backend, observer, &mut payload, observe, None)
            } else {
                let repaired = Arc::new(RepairedSchedule::plan(
                    &self.plan,
                    self.prepared.seeded_blocks(),
                    &quarantine,
                )?);
                let dead_nodes = repaired
                    .dead
                    .iter()
                    .map(|&(node, quarantine_step)| DeadNode {
                        node,
                        original: exchange.from_canonical(node),
                        quarantine_step,
                        reason: reasons
                            .get(&node)
                            .copied()
                            .unwrap_or(FailureReason::NodeDead { node }),
                    })
                    .collect();
                let ctx = DegradeCtx {
                    repaired,
                    dead_nodes,
                    restarts,
                };
                self.run_impl(backend, observer, &mut payload, observe, Some(&ctx))
            };
            let (failure, report) = match result {
                Err(RuntimeError::Aborted { failure, report }) => (failure, report),
                other => return other,
            };
            // Quarantine can only repair failures that name a culprit
            // node; anything else — and a repeat offender, which means
            // quarantining it did not help — aborts for real.
            let culprit = match failure.reason {
                FailureReason::RetryExhausted { src } => Some(src),
                FailureReason::Integrity { src, .. } => Some(src),
                FailureReason::WorkerKilled { node } => Some(node),
                // Cancellation and deadline expiry are verdicts on the
                // whole run, not on one node — no quarantine can help.
                FailureReason::NodeDead { .. }
                | FailureReason::ChannelClosed
                | FailureReason::Cancelled
                | FailureReason::DeadlineExceeded => None,
            };
            match culprit {
                Some(node) if restarts < MAX_RESTARTS && !quarantine.contains_key(&node) => {
                    quarantine.insert(node, failure.global_step.min(base_total));
                    reasons.insert(node, failure.reason);
                    restarts += 1;
                }
                _ => return Err(RuntimeError::Aborted { failure, report }),
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn run_impl<F, O>(
        &self,
        backend: ExecBackend<'_>,
        observer: &mut O,
        mut payload: F,
        observe: bool,
        degrade: Option<&DegradeCtx>,
    ) -> Result<(RuntimeReport, Vec<Vec<(NodeId, Bytes)>>), RuntimeError>
    where
        F: FnMut(NodeId, NodeId) -> Bytes,
        O: Observer<Bytes>,
    {
        let exchange = self.prepared.exchange();
        let canon = self.plan.shape();
        let nn = canon.num_nodes() as usize;
        // A pooled run can use at most the pool's threads: a gang larger
        // than the pool could never be scheduled.
        let workers = match backend {
            ExecBackend::Spawn => self.effective_workers(),
            ExecBackend::Pool(pool, _) => self.effective_workers().min(pool.size()),
        };
        // Unified execution view: base-plan phases, or the repaired
        // phases (same step grid plus drops, manifests, and an optional
        // trailing fallback phase) when running degraded. This is the
        // driving thread's copy; each worker task builds its own from
        // the shared reference-counted plan.
        let exec_phases = build_exec_phases(&self.plan, degrade.map(|ctx| &*ctx.repaired));
        let phases = &exec_phases;
        let total_steps: usize = phases.iter().map(|p| p.steps.len()).sum();

        // Seed data-carrying buffers from the cached counting state; keep
        // every pair's bytes for the post-run bit-exact comparison.
        let mut expected_payloads: HashMap<(NodeId, NodeId), Bytes> = HashMap::new();
        let mut node_bufs: Vec<Vec<Block<Bytes>>> = Vec::with_capacity(nn);
        for blocks in self.prepared.seeded_blocks() {
            let mut out = Vec::with_capacity(blocks.len());
            for b in blocks {
                let os = exchange
                    .from_canonical(b.src)
                    .ok_or(RuntimeError::UnmappedNode {
                        node: b.src,
                        phase: String::from("seeding"),
                        step: 0,
                    })?;
                let od = exchange
                    .from_canonical(b.dst)
                    .ok_or(RuntimeError::UnmappedNode {
                        node: b.dst,
                        phase: String::from("seeding"),
                        step: 0,
                    })?;
                let bytes = payload(os, od);
                expected_payloads.insert((b.src, b.dst), bytes.clone());
                let mut nb = Block::with_payload(b.src, b.dst, bytes);
                nb.shifts = b.shifts;
                out.push(nb);
            }
            node_bufs.push(out);
        }
        if observe {
            observer.on_start(&Buffers::from_vecs(node_bufs.clone()));
        }

        // Static receive expectations: in global step `g`, node `d`
        // receives from `expect_from[g][d]` (the schedule has at most one
        // sender per destination per step).
        let mut expect_from: Vec<Vec<Option<NodeId>>> = vec![vec![None; nn]; total_steps];
        // Failure context: global step -> (phase label, 1-based step).
        let mut step_ctx: Vec<(String, usize)> = Vec::with_capacity(total_steps);
        {
            let mut g = 0;
            for ph in phases {
                for (si, st) in ph.steps.iter().enumerate() {
                    for node in 0..nn {
                        if let Some(dst) = st.dst_of(node) {
                            expect_from[g][dst as usize] = Some(node as NodeId);
                        }
                    }
                    step_ctx.push((ph.name.to_string(), si + 1));
                    g += 1;
                }
            }
        }

        // Per-node inboxes. Senders are shared (any worker may deliver to
        // any node); each receiver is owned by the node's worker.
        let mut senders = Vec::with_capacity(nn);
        let mut receivers = Vec::with_capacity(nn);
        for _ in 0..nn {
            let (tx, rx) = unbounded::<WireFrame>();
            senders.push(tx);
            receivers.push(rx);
        }

        let chunk = nn.div_ceil(workers);
        let n_chunks = nn.div_ceil(chunk);

        let mut buf_chunks: Vec<Vec<Vec<Block<Bytes>>>> = Vec::with_capacity(n_chunks);
        let mut rx_chunks: Vec<Vec<Receiver<WireFrame>>> = Vec::with_capacity(n_chunks);
        {
            let mut bi = node_bufs.into_iter();
            let mut ri = receivers.into_iter();
            for ci in 0..n_chunks {
                let take = chunk.min(nn - ci * chunk);
                buf_chunks.push(bi.by_ref().take(take).collect());
                rx_chunks.push(ri.by_ref().take(take).collect());
            }
        }

        // The per-run shared context: owned/reference-counted so worker
        // tasks are `'static` and can execute on persistent pool threads
        // as well as scoped ones. Dropped at the end of the run, taking
        // the abort flag, retained frames, failure record, and channels
        // with it — one job's failure state cannot leak into the next
        // job on a shared pool.
        let shared = Arc::new(RunShared {
            plan: Arc::clone(&self.plan),
            repaired: degrade.map(|ctx| Arc::clone(&ctx.repaired)),
            faults: self.config.faults.clone(),
            retry: self.config.retry,
            degrade_mode: degrade.is_some(),
            observe,
            expect_from,
            step_ctx,
            senders,
            retained: (0..nn).map(|_| Mutex::new(None)).collect(),
            abort: AtomicBool::new(false),
            cancel: self.config.cancel.clone(),
            failure_slot: Mutex::new(None),
            barrier: Barrier::new(n_chunks + 1),
            snapshots: (0..nn).map(|_| Mutex::new(Vec::new())).collect(),
            finals: (0..nn).map(|_| Mutex::new(Vec::new())).collect(),
            total_steps,
        });

        // Execute: workers run the plan, the driving thread mirrors the
        // barrier sequence to measure walls and feed the observer.
        let mut tasks: Vec<(usize, Vec<Vec<Block<Bytes>>>, Vec<Receiver<WireFrame>>)> = buf_chunks
            .drain(..)
            .zip(rx_chunks.drain(..))
            .enumerate()
            .map(|(ci, (bufs, rxs))| (ci * chunk, bufs, rxs))
            .collect();
        let mut stats: Vec<WorkerStats> = Vec::with_capacity(n_chunks);
        let mut panic_msg: Option<String> = None;
        let (phase_walls, step_walls, wall) = match backend {
            ExecBackend::Spawn => {
                let shared_ref = &shared;
                let joined = cb_thread::scope(|s| {
                    let mut handles = Vec::with_capacity(n_chunks);
                    for (base, bufs, rxs) in tasks.drain(..) {
                        let shared = Arc::clone(shared_ref);
                        handles.push(s.spawn(move |_| {
                            worker_body(&shared, base, bufs, rxs, FramePool::new())
                        }));
                    }
                    let walls = drive_barriers(phases, shared_ref, observer);
                    let mut outs = Vec::with_capacity(handles.len());
                    let mut panicked: Option<String> = None;
                    for h in handles {
                        match h.join() {
                            Ok(out) => outs.push(out),
                            Err(p) => {
                                let msg = p
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_string())
                                    .or_else(|| p.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "opaque panic payload".to_string());
                                panicked.get_or_insert(msg);
                            }
                        }
                    }
                    (outs, walls, panicked)
                });
                let (outs, walls, panicked) = match joined {
                    Ok(v) => v,
                    Err(_) => {
                        return Err(RuntimeError::WorkerPanicked(
                            "runtime scope panicked".to_string(),
                        ))
                    }
                };
                stats.extend(outs.into_iter().map(|(ws, _pool)| ws));
                panic_msg = panicked;
                walls
            }
            ExecBackend::Pool(pool, bank) => {
                // Atomically reserve all n_chunks threads (gang
                // scheduling): the run's tasks share a barrier, so a
                // partial schedule would deadlock.
                let mut gang = pool.gang(n_chunks);
                for (base, bufs, rxs) in tasks.drain(..) {
                    let shared = Arc::clone(&shared);
                    let fp = bank.map(PoolBank::take).unwrap_or_default();
                    gang.spawn(move || worker_body(&shared, base, bufs, rxs, fp));
                }
                let walls = drive_barriers(phases, &shared, observer);
                for result in gang.join() {
                    match result {
                        Ok((ws, fp)) => {
                            // Check the warm frame pool back in for the
                            // next job on this bank.
                            if let Some(bank) = bank {
                                bank.put(fp);
                            }
                            stats.push(ws);
                        }
                        Err(msg) => {
                            panic_msg.get_or_insert(msg);
                        }
                    }
                }
                walls
            }
        };
        if let Some(msg) = panic_msg {
            return Err(RuntimeError::WorkerPanicked(msg));
        }

        // Aggregate worker measurements into the report and trace.
        let mut trace = Trace::default();
        let mut phase_reports = Vec::with_capacity(phases.len());
        let mut gbase = 0usize;
        for (pi, ph) in phases.iter().enumerate() {
            trace.begin_phase(ph.name);
            for (si, st) in ph.steps.iter().enumerate() {
                let g = gbase + si;
                let mut messages = 0u64;
                let mut blocks = 0u64;
                let mut max_blocks = 0u64;
                let mut retries = 0u64;
                for w in &stats {
                    messages += w.steps[g].messages;
                    blocks += w.steps[g].blocks;
                    max_blocks = max_blocks.max(w.steps[g].max_blocks);
                    retries += w.steps[g].retries;
                }
                trace.record_step(StepStat {
                    messages: messages as u32,
                    total_blocks: blocks,
                    max_blocks,
                    max_hops: st.hops(),
                    retries,
                    time_us: step_walls[g].as_secs_f64() * 1e6,
                });
            }
            gbase += ph.steps.len();

            let mut pr = PhaseReport {
                name: ph.name.to_string(),
                steps: ph.steps.len(),
                wall: phase_walls[pi],
                ..Default::default()
            };
            let mut rearr_max = 0u64;
            for w in &stats {
                let side = &w.phase[pi];
                pr.assembly += side.assembly;
                pr.transport += side.transport;
                pr.rearrange += side.rearrange;
                pr.wire_bytes += side.wire_bytes;
                pr.rearranged_bytes += side.rearranged_bytes;
                pr.bytes_copied += side.bytes_copied;
                pr.allocations += side.allocations;
                pr.messages += side.messages;
                rearr_max = rearr_max.max(side.rearr_blocks_max);
            }
            if ph.rearrange_after {
                trace.record_rearrangement(rearr_max);
            }
            phase_reports.push(pr);
        }

        let mut fault_totals = RecoveryStats::default();
        for w in &stats {
            fault_totals.merge(&w.faults);
        }
        let fault_events = merge_events(stats.iter().map(|w| w.events.clone()).collect());
        let failure_taken = lk(&shared.failure_slot).take();

        let params = self
            .config
            .params
            .with_block_bytes(self.config.block_bytes as u32);
        let real_n = exchange.shape_ref().num_nodes();
        let mut report = RuntimeReport {
            dims: exchange.shape_ref().dims().to_vec(),
            executed_dims: canon.dims().to_vec(),
            padded: exchange.is_padded(),
            nodes: real_n,
            block_bytes: self.config.block_bytes,
            workers,
            wall,
            wire_bytes: phase_reports.iter().map(|p| p.wire_bytes).sum(),
            rearranged_bytes: phase_reports.iter().map(|p| p.rearranged_bytes).sum(),
            bytes_copied: phase_reports.iter().map(|p| p.bytes_copied).sum(),
            allocations: phase_reports.iter().map(|p| p.allocations).sum(),
            peak_node_bytes: stats.iter().map(|w| w.peak_bytes).max().unwrap_or(0),
            messages: phase_reports.iter().map(|p| p.messages).sum(),
            phases: phase_reports,
            verified: false,
            faults: fault_totals,
            fault_events,
            failure: failure_taken.clone(),
            degraded: None,
            analytic: CompletionTime::from_counts(&cost_model::proposed_nd(canon.dims()), &params),
            trace,
        };

        // An unrecoverable failure aborts cleanly: typed error + the
        // partial report measured up to the abort.
        if let Some(fi) = failure_taken {
            return Err(match fi.reason {
                FailureReason::ChannelClosed => RuntimeError::ChannelClosed {
                    node: fi.node,
                    phase: fi.phase,
                    step: fi.step,
                },
                _ => RuntimeError::Aborted {
                    failure: fi,
                    report: Box::new(report),
                },
            });
        }

        // Reassemble final buffers and verify: right delivery set, and
        // every payload bit-exactly as seeded. Degraded runs check the
        // survivor invariant instead (dead nodes empty, every
        // survivor→survivor block delivered) and cross-check the
        // executed drops against the repaired plan.
        let buffers = Buffers::from_vecs(
            shared
                .finals
                .iter()
                .map(|m| std::mem::take(&mut *lk(m)))
                .collect(),
        );
        match degrade {
            None => verify_delivery(&buffers, self.prepared.expected_delivery())
                .map_err(|e| RuntimeError::Verification(e.to_string()))?,
            Some(ctx) => {
                let dead = ctx.repaired.dead_nodes();
                verify_delivery_degraded(&buffers, self.prepared.expected_delivery(), &dead)
                    .map_err(|e| RuntimeError::Verification(e.to_string()))?;
                let found: u64 = stats.iter().map(|w| w.dropped_found).sum();
                if found != ctx.repaired.dropped.len() as u64 {
                    return Err(RuntimeError::Verification(format!(
                        "degraded run discarded {found} blocks but the repaired schedule \
                         planned {} drops",
                        ctx.repaired.dropped.len()
                    )));
                }
                let mismatches: u64 = stats.iter().map(|w| w.manifest_mismatches).sum();
                if mismatches != 0 {
                    return Err(RuntimeError::Verification(format!(
                        "{mismatches} repaired sends drained a different block set than \
                         their manifests list"
                    )));
                }
            }
        }
        for node in 0..nn as NodeId {
            for b in buffers.node(node) {
                match expected_payloads.get(&(b.src, b.dst)) {
                    Some(expected) if *expected == b.payload => {}
                    Some(_) => {
                        return Err(RuntimeError::Verification(format!(
                            "payload corruption: block ({} -> {}) differs from seeded bytes",
                            b.src, b.dst
                        )))
                    }
                    None => {
                        return Err(RuntimeError::Verification(format!(
                            "unseeded block ({} -> {}) delivered",
                            b.src, b.dst
                        )))
                    }
                }
            }
        }
        // Full verification holds only for fault-free delivery; degraded
        // runs record the survivor verification in the degraded report.
        report.verified = degrade.is_none();
        if let Some(ctx) = degrade {
            // The fault-free baseline for the same payload set: one
            // message header per scheduled send, and each block's framing
            // + payload once per wire crossing the base plan gives it.
            let baseline: u64 = ctx.repaired.base_messages * MESSAGE_HEADER_BYTES as u64
                + ctx
                    .repaired
                    .base_tx
                    .iter()
                    .map(|&((s, d), n)| {
                        let len = expected_payloads.get(&(s, d)).map_or(0, Bytes::len) as u64;
                        n * (BLOCK_HEADER_BYTES as u64 + len)
                    })
                    .sum::<u64>();
            report.degraded = Some(DegradedReport {
                dead_nodes: ctx.dead_nodes.clone(),
                dropped_blocks: ctx.repaired.dropped.len() as u64,
                dropped: ctx.repaired.dropped.clone(),
                contracted_rings: ctx.repaired.contracted_rings,
                contracted_sends: ctx.repaired.contracted_sends,
                fallback_steps: ctx.repaired.fallback_steps,
                fallback_blocks: ctx.repaired.fallback_blocks,
                baseline_wire_bytes: baseline,
                extra_wire_bytes: report.wire_bytes as i64 - baseline as i64,
                restarts: ctx.restarts,
                verified_degraded: true,
            });
        }

        // Deliveries in original ids, sorted by source (same contract as
        // `Exchange::run_with_payloads`). Quarantined nodes end with
        // empty buffers, so their delivery lists are empty.
        let mut deliveries: Vec<Vec<(NodeId, Bytes)>> = vec![Vec::new(); real_n as usize];
        for d in 0..real_n {
            let cd = exchange.to_canonical(d);
            let mut got: Vec<(NodeId, Bytes)> = Vec::with_capacity(buffers.node(cd).len());
            for b in buffers.node(cd) {
                let os = exchange
                    .from_canonical(b.src)
                    .ok_or(RuntimeError::UnmappedNode {
                        node: b.src,
                        phase: String::from("delivery"),
                        step: 0,
                    })?;
                got.push((os, b.payload.clone()));
            }
            got.sort_by_key(|(s, _)| *s);
            deliveries[d as usize] = got;
        }
        Ok((report, deliveries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{BLOCK_HEADER_BYTES, MESSAGE_HEADER_BYTES};
    use alltoall_core::PhaseKind;

    fn runtime(dims: &[u32], config: RuntimeConfig) -> Runtime {
        Runtime::new(&TorusShape::new(dims).unwrap(), config).unwrap()
    }

    fn quick_retry() -> RetryPolicy {
        RetryPolicy::default()
            .with_deadline(Duration::from_millis(20))
            .with_backoff(Duration::from_micros(200))
    }

    #[test]
    fn run_4x4_verifies_bit_exact() {
        let r = runtime(&[4, 4], RuntimeConfig::default()).run().unwrap();
        assert!(r.verified);
        assert_eq!(r.phases.len(), 4);
        // a1 = 4: scatter phases are empty; submesh phases do 2 + 2 steps.
        assert_eq!(r.total_steps(), 4);
        assert!(r.messages > 0);
        assert!(r.wall > Duration::ZERO);
    }

    #[test]
    fn run_8x12_verifies_and_reports() {
        let r = runtime(&[8, 12], RuntimeConfig::default().with_workers(4))
            .run()
            .unwrap();
        assert!(r.verified);
        assert_eq!(r.executed_dims, vec![12, 8]); // canonicalized
        assert!(!r.padded);
        assert_eq!(r.total_steps(), 2 * (12 / 4 + 1));
        assert_eq!(r.trace.total_steps(), r.total_steps());
        assert_eq!(r.workers, 4);
        // Per-phase walls and bytes are populated.
        assert!(r.phases.iter().all(|p| p.wall > Duration::ZERO));
        assert!(r.phases.iter().take(3).all(|p| p.rearranged_bytes > 0));
        assert_eq!(r.phases.last().unwrap().rearranged_bytes, 0);
        assert!(r.wire_bytes > 0);
        assert!(r.peak_node_bytes > 0);
    }

    #[test]
    fn run_4x4x4_verifies() {
        let r = runtime(&[4, 4, 4], RuntimeConfig::default().with_workers(8))
            .run()
            .unwrap();
        assert!(r.verified);
        assert_eq!(r.phases.len(), 5);
        assert_eq!(r.total_steps(), 3 * (4 / 4 + 1));
    }

    #[test]
    fn padded_6x6_runs_real_pairs_only() {
        let r = runtime(&[6, 6], RuntimeConfig::default().with_workers(3))
            .run()
            .unwrap();
        assert!(r.verified);
        assert!(r.padded);
        assert_eq!(r.executed_dims, vec![8, 8]);
        assert_eq!(r.nodes, 36);
    }

    #[test]
    fn wire_volume_accounts_exactly() {
        // Every block is block_bytes long, so total wire bytes must equal
        // message framing + per-block framing + payloads.
        let r = runtime(&[8, 8], RuntimeConfig::default().with_block_bytes(32))
            .run()
            .unwrap();
        let total_blocks: u64 = r
            .trace
            .phases
            .iter()
            .flat_map(|p| p.steps.iter())
            .map(|s| s.total_blocks)
            .sum();
        let expected = r.messages * MESSAGE_HEADER_BYTES as u64
            + total_blocks * (BLOCK_HEADER_BYTES as u64 + 32);
        assert_eq!(r.wire_bytes, expected);
    }

    #[test]
    fn fault_free_copies_are_header_only() {
        // The zero-copy acceptance invariant: on the fault-free path the
        // send side copies framing only, never payload bytes.
        let r = runtime(&[8, 8], RuntimeConfig::default().with_block_bytes(32))
            .run()
            .unwrap();
        let total_blocks: u64 = r
            .trace
            .phases
            .iter()
            .flat_map(|p| p.steps.iter())
            .map(|s| s.total_blocks)
            .sum();
        assert_eq!(
            r.bytes_copied,
            r.messages * MESSAGE_HEADER_BYTES as u64 + total_blocks * BLOCK_HEADER_BYTES as u64
        );
        assert!(r.bytes_copied < r.wire_bytes);
    }

    #[test]
    fn cancel_token_aborts_stalled_run_with_partial_report() {
        // A pinned 5 s stall would hold the run hostage; an external
        // cancel must interrupt it mid-sleep and surface as a typed
        // Cancelled abort with the partial report.
        let token = CancelToken::new();
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(FaultPlan::seeded(1).with_worker_fault(
                0,
                0,
                WorkerFaultKind::StallMicros(5_000_000),
            ))
            .with_retry(
                RetryPolicy::default()
                    .with_deadline(Duration::from_secs(30))
                    .with_max_retries(64),
            )
            .with_cancel_token(token.clone());
        let rt = runtime(&[4, 4], cfg);
        let t0 = Instant::now();
        let handle = std::thread::spawn(move || rt.run());
        std::thread::sleep(Duration::from_millis(50));
        token.cancel();
        let err = handle.join().unwrap().unwrap_err();
        match err {
            RuntimeError::Aborted { failure, report } => {
                assert_eq!(failure.reason, FailureReason::Cancelled);
                assert!(!report.verified);
            }
            other => panic!("expected Aborted, got {other}"),
        }
        assert!(
            t0.elapsed() < Duration::from_secs(4),
            "cancel must interrupt the stall, took {:?}",
            t0.elapsed()
        );
    }

    #[test]
    fn expired_token_reports_deadline_exceeded() {
        // Pre-expired token: the run aborts at the first step boundary.
        let token = CancelToken::new();
        token.expire();
        let cfg = RuntimeConfig::default()
            .with_workers(2)
            .with_cancel_token(token);
        let err = runtime(&[4, 4], cfg).run().unwrap_err();
        match err {
            RuntimeError::Aborted { failure, .. } => {
                assert_eq!(failure.reason, FailureReason::DeadlineExceeded);
            }
            other => panic!("expected Aborted, got {other}"),
        }
    }

    #[test]
    fn untriggered_token_changes_nothing() {
        let token = CancelToken::new();
        let cfg = RuntimeConfig::default()
            .with_workers(3)
            .with_cancel_token(token.clone());
        let r = runtime(&[4, 4], cfg).run().unwrap();
        assert!(r.verified);
        // Triggering after the run finished is a harmless no-op.
        assert!(token.cancel());
    }

    #[test]
    fn fault_plans_materialize_full_frames() {
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(FaultPlan::seeded(1).with_drop_rate(1.0))
            .with_retry(quick_retry());
        let r = runtime(&[4, 4], cfg).run().unwrap();
        // Contiguous encoding copies every frame byte exactly once.
        assert_eq!(r.bytes_copied, r.wire_bytes);
    }

    #[test]
    fn steady_state_allocations_are_payload_size_independent() {
        // Pool misses depend on frame counts and framing capacity, never
        // on payload bytes; a single worker makes the schedule (and so
        // the pool traffic) deterministic.
        let mk = |bytes| {
            runtime(
                &[4, 4],
                RuntimeConfig::default()
                    .with_workers(1)
                    .with_block_bytes(bytes),
            )
            .run()
            .unwrap()
        };
        let small = mk(16);
        let large = mk(1024);
        assert!(small.allocations > 0);
        assert_eq!(small.allocations, large.allocations);
        // Warm pools: far fewer allocator hits than one per message.
        assert!(small.allocations < 2 * small.messages);
    }

    #[test]
    fn retained_frames_count_toward_peak_residency() {
        let clean = runtime(&[4, 4], RuntimeConfig::default().with_workers(2))
            .run()
            .unwrap();
        let cfg = RuntimeConfig::default()
            .with_workers(2)
            .with_faults(FaultPlan::seeded(3).with_drop_rate(1.0))
            .with_retry(quick_retry());
        let faulty = runtime(&[4, 4], cfg).run().unwrap();
        // Same schedule, same buffers — but the faulty run also holds
        // every node's retained recovery frame in memory.
        assert!(
            faulty.peak_node_bytes > clean.peak_node_bytes,
            "retained frames must be counted: faulty {} vs clean {}",
            faulty.peak_node_bytes,
            clean.peak_node_bytes
        );
    }

    #[test]
    fn worker_counts_change_nothing_observable() {
        let mk = |workers| {
            let rt = runtime(&[8, 8], RuntimeConfig::default().with_workers(workers));
            let (r, deliveries) = rt
                .run_with_payloads(|s, d| pattern_payload(s, d, 48))
                .unwrap();
            (r, deliveries)
        };
        let (r1, d1) = mk(1);
        let (r5, d5) = mk(5);
        let (r64, d64) = mk(64);
        assert_eq!(d1, d5);
        assert_eq!(d1, d64);
        assert_eq!(r1.wire_bytes, r5.wire_bytes);
        assert_eq!(r1.wire_bytes, r64.wire_bytes);
        assert_eq!(r1.messages, r64.messages);
        assert_eq!(r1.workers, 1);
        assert_eq!(r64.workers, 64);
    }

    #[test]
    fn custom_payloads_deliver_sorted_by_source() {
        let rt = runtime(&[4, 8], RuntimeConfig::default());
        let (r, deliveries) = rt
            .run_with_payloads(|s, d| {
                // Variable lengths: pair-dependent.
                pattern_payload(s, d, ((s + 2 * d) % 7) as usize * 9)
            })
            .unwrap();
        assert!(r.verified);
        let n = 32u32;
        assert_eq!(deliveries.len(), n as usize);
        for (d, got) in deliveries.iter().enumerate() {
            let d = d as u32;
            assert_eq!(got.len(), n as usize - 1);
            let srcs: Vec<NodeId> = got.iter().map(|(s, _)| *s).collect();
            let expected_srcs: Vec<NodeId> = (0..n).filter(|&s| s != d).collect();
            assert_eq!(srcs, expected_srcs);
            for (s, p) in got {
                assert_eq!(*p, pattern_payload(*s, d, ((s + 2 * d) % 7) as usize * 9));
            }
        }
    }

    #[test]
    fn observer_sees_every_step_and_rearrangement() {
        struct Counting {
            starts: usize,
            steps: Vec<(PhaseKind, usize)>,
            rearranges: Vec<PhaseKind>,
            blocks_constant: bool,
            expect: u64,
        }
        impl Observer<Bytes> for Counting {
            fn on_start(&mut self, bufs: &Buffers<Bytes>) {
                self.starts += 1;
                self.expect = bufs.total_blocks();
            }
            fn on_step(&mut self, phase: PhaseKind, step: usize, bufs: &Buffers<Bytes>) {
                self.steps.push((phase, step));
                self.blocks_constant &= bufs.total_blocks() == self.expect;
            }
            fn on_rearrange(&mut self, phase: PhaseKind, bufs: &Buffers<Bytes>) {
                self.rearranges.push(phase);
                self.blocks_constant &= bufs.total_blocks() == self.expect;
            }
        }
        let mut obs = Counting {
            starts: 0,
            steps: Vec::new(),
            rearranges: Vec::new(),
            blocks_constant: true,
            expect: 0,
        };
        let rt = runtime(&[8, 8], RuntimeConfig::default().with_workers(4));
        let r = rt.run_observed(&mut obs).unwrap();
        assert!(r.verified);
        assert_eq!(obs.starts, 1);
        assert_eq!(obs.steps.len(), r.total_steps());
        // n + 1 rearrangements for n + 2 phases.
        assert_eq!(obs.rearranges.len(), 3);
        assert_eq!(
            obs.rearranges,
            vec![
                PhaseKind::Scatter { index: 0 },
                PhaseKind::Scatter { index: 1 },
                PhaseKind::Distance2,
            ]
        );
        assert!(
            obs.blocks_constant,
            "blocks must be conserved at every step"
        );
        // Step numbering matches the analytic executor: 1-based per phase.
        assert_eq!(obs.steps[0], (PhaseKind::Scatter { index: 0 }, 1));
    }

    #[test]
    fn matches_analytic_executor_delivery() {
        // Byte-moving runtime and counting executor agree block-for-block.
        let shape = TorusShape::new(&[8, 8]).unwrap();
        let rt = Runtime::new(&shape, RuntimeConfig::default().with_workers(4)).unwrap();
        let (_, rt_deliveries) = rt
            .run_with_payloads(|s, d| pattern_payload(s, d, 16))
            .unwrap();
        let (report, ex_deliveries) = alltoall_core::Exchange::new(&shape)
            .unwrap()
            .run_with_payloads(&CommParams::unit(), |s, d| pattern_payload(s, d, 16))
            .unwrap();
        assert!(report.verified);
        assert_eq!(rt_deliveries, ex_deliveries);
    }

    #[test]
    fn effective_workers_resolution() {
        let rt = runtime(&[4, 4], RuntimeConfig::default().with_workers(99));
        assert_eq!(rt.effective_workers(), 16); // clamped to node count
        let rt = runtime(&[4, 4], RuntimeConfig::default().with_workers(3));
        assert_eq!(rt.effective_workers(), 3);
    }

    #[test]
    fn analytic_prediction_uses_configured_block_size() {
        let small = runtime(&[8, 8], RuntimeConfig::default().with_block_bytes(16))
            .run()
            .unwrap();
        let large = runtime(&[8, 8], RuntimeConfig::default().with_block_bytes(256))
            .run()
            .unwrap();
        assert!(large.analytic.transmission > small.analytic.transmission);
        assert_eq!(small.analytic.startup, large.analytic.startup);
    }

    #[test]
    fn zero_fault_run_is_clean() {
        let r = runtime(&[4, 4], RuntimeConfig::default()).run().unwrap();
        assert!(r.faults.is_clean());
        assert!(r.fault_events.is_empty());
        assert!(r.failure.is_none());
    }

    #[test]
    fn every_transmission_dropped_still_delivers_bit_exact() {
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(FaultPlan::seeded(1).with_drop_rate(1.0))
            .with_retry(quick_retry());
        let r = runtime(&[4, 4], cfg).run().unwrap();
        assert!(r.verified);
        assert!(r.failure.is_none());
        // Every scheduled transmission was dropped, and every scheduled
        // receive was healed from the sender's retained frame.
        assert_eq!(r.faults.injected_drops, r.messages);
        assert_eq!(r.faults.recovered, r.messages);
        assert!(r.faults.timeouts >= r.messages);
        assert!(r.faults.resends >= r.messages);
        assert_eq!(r.fault_events.len() as u64, r.messages);
    }

    #[test]
    fn corrupted_frames_are_detected_and_recovered() {
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(FaultPlan::seeded(2).with_corrupt_rate(1.0))
            .with_retry(quick_retry());
        let r = runtime(&[4, 4], cfg).run().unwrap();
        assert!(r.verified);
        assert_eq!(r.faults.injected_corruptions, r.messages);
        // Every corruption tripped an integrity check, never delivery.
        assert!(r.faults.crc_failures + r.faults.decode_failures >= r.messages);
        assert_eq!(r.faults.recovered, r.messages);
    }

    #[test]
    fn seeded_fault_runs_reproduce_identical_counters_and_events() {
        let mk = || {
            let cfg = RuntimeConfig::default()
                .with_workers(4)
                .with_faults(
                    FaultPlan::seeded(42)
                        .with_drop_rate(0.2)
                        .with_corrupt_rate(0.1),
                )
                .with_retry(quick_retry());
            runtime(&[4, 8], cfg).run().unwrap()
        };
        let a = mk();
        let b = mk();
        assert!(a.faults.total_injected() > 0, "plan must actually fire");
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.fault_events, b.fault_events);
        assert!(a.verified && b.verified);
    }

    #[test]
    fn killed_worker_aborts_with_typed_error_and_partial_report() {
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(FaultPlan::default().with_worker_fault(1, 3, WorkerFaultKind::Kill))
            .with_retry(
                quick_retry()
                    .with_deadline(Duration::from_millis(10))
                    .with_max_retries(1),
            );
        let err = runtime(&[4, 4], cfg).run().unwrap_err();
        match err {
            RuntimeError::Aborted { failure, report } => {
                assert_eq!(failure.node, 3);
                assert_eq!(failure.reason, FailureReason::WorkerKilled { node: 3 });
                assert_eq!(failure.global_step, 1);
                assert!(!report.verified);
                assert_eq!(report.faults.injected_kills, 1);
                assert_eq!(report.failure.as_ref().unwrap().node, 3);
            }
            other => panic!("expected Aborted, got {other}"),
        }
    }

    #[test]
    fn degrade_policy_completes_after_pinned_kill() {
        let cfg = RuntimeConfig::default()
            .with_workers(4)
            .with_faults(FaultPlan::default().with_worker_fault(1, 3, WorkerFaultKind::Kill))
            .with_retry(quick_retry())
            .with_on_failure(OnFailure::Degrade);
        let r = runtime(&[4, 4], cfg).run().unwrap();
        // Full delivery can't verify (blocks were dropped); the survivor
        // invariant does.
        assert!(!r.verified);
        assert!(r.failure.is_none());
        assert_eq!(r.faults.injected_kills, 1);
        let d = r.degraded.expect("degraded report present");
        assert!(d.verified_degraded);
        assert_eq!(d.restarts, 0, "pinned kills are quarantined up front");
        assert_eq!(d.dead_nodes.len(), 1);
        assert_eq!(d.dead_nodes[0].node, 3);
        assert_eq!(d.dead_nodes[0].quarantine_step, 1);
        assert_eq!(
            d.dead_nodes[0].reason,
            FailureReason::WorkerKilled { node: 3 }
        );
        // Every block with a dead endpoint is dropped, nothing else.
        assert_eq!(d.dropped_blocks, 2 * 15);
        assert_eq!(d.dropped.len() as u64, d.dropped_blocks);
        assert!(d.dropped.iter().all(|b| (b.src == 3) ^ (b.dst == 3)));
    }

    #[test]
    fn degrade_policy_without_failures_is_a_plain_run() {
        let cfg = RuntimeConfig::default()
            .with_workers(2)
            .with_on_failure(OnFailure::Degrade);
        let r = runtime(&[4, 4], cfg).run().unwrap();
        assert!(r.verified);
        assert!(r.degraded.is_none());
    }

    #[test]
    fn degraded_deliveries_cover_survivors_only() {
        let cfg = RuntimeConfig::default()
            .with_workers(3)
            .with_faults(FaultPlan::default().with_worker_fault(2, 5, WorkerFaultKind::Kill))
            .with_retry(quick_retry())
            .with_on_failure(OnFailure::Degrade);
        let rt = runtime(&[4, 8], cfg);
        // The fault plan pins the kill on *canonical* node 5; deliveries
        // are indexed by original ids.
        let orig = rt.prepared().exchange().from_canonical(5).unwrap();
        let (r, deliveries) = rt
            .run_with_payloads(|s, d| pattern_payload(s, d, 48))
            .unwrap();
        let d = r.degraded.unwrap();
        assert!(d.verified_degraded);
        assert_eq!(d.dead_nodes[0].original, Some(orig));
        let n = 32u32;
        assert!(
            deliveries[orig as usize].is_empty(),
            "dead node receives nothing"
        );
        for (dv, got) in deliveries.iter().enumerate() {
            let dv = dv as u32;
            if dv == orig {
                continue;
            }
            let expected_srcs: Vec<NodeId> = (0..n).filter(|&s| s != dv && s != orig).collect();
            let srcs: Vec<NodeId> = got.iter().map(|(s, _)| *s).collect();
            assert_eq!(srcs, expected_srcs);
            for (s, p) in got {
                assert_eq!(
                    *p,
                    pattern_payload(*s, dv, 48),
                    "bit-exact survivor payloads"
                );
            }
        }
    }
}
