#![warn(missing_docs)]

//! In-process message-passing runtime for torus complete exchange.
//!
//! Every other crate in this workspace *models* Suh & Shin's `n + 2`-phase
//! exchange: the simulator moves opaque block counts and the cost model
//! prices them analytically. This crate **executes** the same schedules
//! with real memory traffic, which is what the repository's "fast as the
//! hardware allows" goal ultimately needs to measure:
//!
//! * every torus node's buffer is real [`bytes::Bytes`] data;
//! * nodes are multiplexed onto worker threads (one per available core
//!   by default, configurable via [`RuntimeConfig::workers`] or the
//!   `TORUS_THREADS` environment variable shared with `torus-sim`);
//! * each step performs the paper's **message combining** for real: all
//!   blocks a node forwards are assembled into one contiguous wire
//!   message ([`message::encode_message`]), delivered over lock-free
//!   channels, and sliced apart zero-copy on receipt;
//! * the paper's `n + 1` inter-phase **data rearrangements** are actual
//!   `memcpy` passes that compact each node's buffer into delivery order;
//! * delivery is verified with the same invariant checker the analytic
//!   executors use ([`alltoall_core::verify_delivery`]) *plus* bit-exact
//!   payload comparison against the seeded contents.
//!
//! The result of a run is a [`RuntimeReport`]: wall time per phase split
//! into assembly / transport / rearrangement, bytes moved on the wire and
//! in rearrangements, peak buffer residency, a per-step
//! [`Trace`](torus_sim::Trace) compatible with the figure harness, and
//! the analytic [`CompletionTime`](cost_model::CompletionTime) prediction
//! alongside for comparison.
//!
//! ```
//! use torus_runtime::{Runtime, RuntimeConfig};
//! use torus_topology::TorusShape;
//!
//! let shape = TorusShape::new_2d(8, 8).unwrap();
//! let runtime = Runtime::new(&shape, RuntimeConfig::default().with_workers(4)).unwrap();
//! let report = runtime.run().unwrap();
//! assert!(report.verified);
//! println!("{}", report.summary());
//! ```

pub mod message;
pub mod payload;
pub mod report;
pub mod runtime;

pub use message::{decode_message, encode_message, BLOCK_HEADER_BYTES, MESSAGE_HEADER_BYTES};
pub use payload::{pattern_payload, pattern_seed};
pub use report::{PhaseReport, RuntimeReport};
pub use runtime::{Runtime, RuntimeConfig};

use alltoall_core::ExchangeError;

/// Errors from the byte-moving runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Schedule preparation or shape handling failed.
    Exchange(ExchangeError),
    /// A wire message failed to decode (framing corruption).
    Wire(String),
    /// Post-run verification failed: wrong delivery set or corrupted
    /// payload bytes.
    Verification(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Exchange(e) => write!(f, "exchange setup failed: {e}"),
            RuntimeError::Wire(s) => write!(f, "wire decode failed: {s}"),
            RuntimeError::Verification(s) => write!(f, "runtime verification failed: {s}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Exchange(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExchangeError> for RuntimeError {
    fn from(e: ExchangeError) -> Self {
        RuntimeError::Exchange(e)
    }
}
