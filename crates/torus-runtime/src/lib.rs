#![warn(missing_docs)]

//! In-process message-passing runtime for torus complete exchange.
//!
//! Every other crate in this workspace *models* Suh & Shin's `n + 2`-phase
//! exchange: the simulator moves opaque block counts and the cost model
//! prices them analytically. This crate **executes** the same schedules
//! with real memory traffic, which is what the repository's "fast as the
//! hardware allows" goal ultimately needs to measure:
//!
//! * every torus node's buffer is real [`bytes::Bytes`] data;
//! * nodes are multiplexed onto worker threads (one per available core
//!   by default, configurable via [`RuntimeConfig::workers`] or the
//!   `TORUS_THREADS` environment variable shared with `torus-sim`);
//! * each step performs the paper's **message combining** for real: all
//!   blocks a node forwards are assembled into one contiguous wire
//!   message ([`message::encode_message`]), delivered over lock-free
//!   channels, and sliced apart zero-copy on receipt;
//! * the paper's `n + 1` inter-phase **data rearrangements** are actual
//!   `memcpy` passes that compact each node's buffer into delivery order;
//! * delivery is verified with the same invariant checker the analytic
//!   executors use ([`alltoall_core::verify_delivery`]) *plus* bit-exact
//!   payload comparison against the seeded contents.
//!
//! The paper's schedules assume every link and node survives all
//! `n(a1/4 + 1)` steps; a deployment cannot. The runtime therefore adds a
//! **fault-tolerance layer**: wire frames carry sequence numbers and a
//! CRC32 ([`message`]), a deterministic seedable [`FaultPlan`] can drop,
//! delay, duplicate, corrupt, or truncate transmissions and kill or stall
//! workers ([`fault`]), and the step loop heals recoverable faults by
//! deadline + bounded retry from the sender's retained send buffer
//! ([`recovery`]). Unrecoverable faults abort cleanly with a typed
//! [`RuntimeError`] and a partial [`RuntimeReport`] instead of a panic or
//! a hang.
//!
//! The result of a run is a [`RuntimeReport`]: wall time per phase split
//! into assembly / transport / rearrangement, bytes moved on the wire and
//! in rearrangements, peak buffer residency, fault/retry/integrity
//! counters, a per-step [`Trace`](torus_sim::Trace) compatible with the
//! figure harness, and the analytic
//! [`CompletionTime`](cost_model::CompletionTime) prediction alongside
//! for comparison.
//!
//! ```
//! use torus_runtime::{Runtime, RuntimeConfig};
//! use torus_topology::TorusShape;
//!
//! let shape = TorusShape::new_2d(8, 8).unwrap();
//! let runtime = Runtime::new(&shape, RuntimeConfig::default().with_workers(4)).unwrap();
//! let report = runtime.run().unwrap();
//! assert!(report.verified);
//! assert!(report.faults.is_clean());
//! println!("{}", report.summary());
//! ```

pub mod cancel;
pub mod collective;
pub mod degrade;
pub mod fault;
pub mod message;
pub mod payload;
pub mod pool;
pub mod recovery;
pub mod report;
pub mod runtime;
pub mod workers;

pub use cancel::{CancelKind, CancelToken};
pub use collective::CollectiveRuntime;
// Collective plan vocabulary, re-exported so runtime users (and the
// service/daemon layers above) need no direct `collective-plan` edge.
pub use collective_plan::{
    combine, CollectiveOp, CollectivePlan, CollectiveStep, Dtype, JobOp, PlanError, ReduceOp,
    SendInstr,
};
pub use degrade::{DeadNode, DegradedReport, OnFailure};
pub use fault::{FaultEvent, FaultEventKind, FaultKind, FaultPlan, WorkerFaultKind};
pub use message::{
    crc32, decode_gathered, decode_message, encode_gathered, encode_message, WireError, WireFrame,
    BLOCK_HEADER_BYTES, MESSAGE_HEADER_BYTES,
};
pub use payload::{pattern_payload, pattern_seed, seeded_payload};
pub use pool::{FramePool, PoolBank};
pub use recovery::{FailureReason, NodeFailure, RecoveryStats, RetryPolicy};
pub use report::{PhaseReport, RuntimeReport};
pub use runtime::{Runtime, RuntimeConfig};
pub use workers::{Gang, WorkerPool};

use alltoall_core::ExchangeError;

/// Errors from the byte-moving runtime.
#[derive(Debug)]
pub enum RuntimeError {
    /// Schedule preparation or shape handling failed.
    Exchange(ExchangeError),
    /// A wire frame failed to decode (framing or CRC corruption) in a
    /// context where recovery was impossible.
    Wire(WireError),
    /// Post-run verification failed: wrong delivery set or corrupted
    /// payload bytes.
    Verification(String),
    /// A channel endpoint disconnected mid-run; names the node whose
    /// send/receive failed and where in the schedule it happened.
    ChannelClosed {
        /// Canonical node whose channel operation failed.
        node: torus_topology::NodeId,
        /// Phase label the failure occurred in.
        phase: String,
        /// 1-based step within the phase.
        step: usize,
    },
    /// An unrecoverable fault (killed worker, exhausted retry budget)
    /// aborted the run. Carries the failure context and the partial
    /// report measured up to the abort (`verified = false`, counters
    /// populated).
    Aborted {
        /// The first unrecoverable failure.
        failure: NodeFailure,
        /// Partial measurements up to the abort.
        report: Box<RuntimeReport>,
    },
    /// A worker thread panicked (a bug, not an injected fault); the
    /// panic payload is stringified.
    WorkerPanicked(String),
    /// A block referenced a canonical node with no real mapping — e.g. a
    /// corrupt header that decoded to an out-of-range node id. Carries
    /// the offending id and where in the schedule it surfaced
    /// (`phase = "seeding"` when it predates the first step).
    UnmappedNode {
        /// The canonical node id that has no real counterpart.
        node: torus_topology::NodeId,
        /// Phase label (or `"seeding"` / `"delivery"` for the edges).
        phase: String,
        /// 1-based step within the phase (0 outside the step loop).
        step: usize,
    },
    /// Degraded-mode schedule repair failed (e.g. the dead set
    /// disconnects the survivors).
    Repair(alltoall_core::RepairError),
    /// A collective plan could not be lowered or is incompatible with
    /// the configuration (bad root, lane mismatch, unsupported policy).
    Plan(collective_plan::PlanError),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Exchange(e) => write!(f, "exchange setup failed: {e}"),
            RuntimeError::Wire(e) => write!(f, "wire decode failed: {e}"),
            RuntimeError::Verification(s) => write!(f, "runtime verification failed: {s}"),
            RuntimeError::ChannelClosed { node, phase, step } => {
                write!(f, "channel closed at node {node} in {phase} step {step}")
            }
            RuntimeError::Aborted { failure, .. } => write!(f, "run aborted: {failure}"),
            RuntimeError::WorkerPanicked(s) => write!(f, "worker thread panicked: {s}"),
            RuntimeError::UnmappedNode { node, phase, step } => write!(
                f,
                "node id {node} has no real mapping (in {phase} step {step})"
            ),
            RuntimeError::Repair(e) => write!(f, "degraded-mode schedule repair failed: {e}"),
            RuntimeError::Plan(e) => write!(f, "collective plan rejected: {e}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Exchange(e) => Some(e),
            RuntimeError::Wire(e) => Some(e),
            RuntimeError::Repair(e) => Some(e),
            RuntimeError::Plan(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExchangeError> for RuntimeError {
    fn from(e: ExchangeError) -> Self {
        RuntimeError::Exchange(e)
    }
}

impl From<WireError> for RuntimeError {
    fn from(e: WireError) -> Self {
        RuntimeError::Wire(e)
    }
}

impl From<alltoall_core::RepairError> for RuntimeError {
    fn from(e: alltoall_core::RepairError) -> Self {
        RuntimeError::Repair(e)
    }
}

impl From<collective_plan::PlanError> for RuntimeError {
    fn from(e: collective_plan::PlanError) -> Self {
        RuntimeError::Plan(e)
    }
}
