//! Deterministic per-pair payload patterns.
//!
//! Verification needs payloads that make corruption *detectable*: every
//! `(src, dst)` pair gets a distinct pseudo-random byte stream derived
//! from a [splitmix64](https://prng.di.unimi.it/splitmix64.c) keyed by the
//! pair, so a block that is truncated, cross-wired, or stale-cached
//! mismatches with overwhelming probability. The proptest equivalence
//! suite and [`Runtime::run`](crate::Runtime::run) both use this pattern.

use bytes::Bytes;
use torus_topology::NodeId;

/// One splitmix64 mixing round. Shared with the fault layer, whose
/// deterministic sampling and corruption-offset choices are derived from
/// the same mixer so a `FaultPlan` seed fully determines every decision.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The 64-bit seed for pair `(src, dst)`.
pub fn pattern_seed(src: NodeId, dst: NodeId) -> u64 {
    splitmix64(((src as u64) << 32) | dst as u64)
}

/// `len` pattern bytes for pair `(src, dst)`: the splitmix64 stream seeded
/// by [`pattern_seed`].
///
/// Returned as [`Bytes`] so the buffer seeded here is the *same*
/// refcounted storage every fault-free hop shares — the zero-copy send
/// path ([`encode_gathered`](crate::message::encode_gathered)) clones
/// handles to it rather than copying it.
pub fn pattern_payload(src: NodeId, dst: NodeId, len: usize) -> Bytes {
    let mut out = Vec::with_capacity(len);
    let mut state = pattern_seed(src, dst);
    while out.len() < len {
        state = splitmix64(state);
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&state.to_le_bytes()[..take]);
    }
    Bytes::from(out)
}

/// [`pattern_payload`] re-keyed by a caller-chosen `seed`: the stream for
/// pair `(src, dst)` under job seed `seed`. Two jobs with different seeds
/// exchange fully distinct byte streams for every pair, which is how a
/// multi-job service proves that concurrent runs (and cached-plan reuse)
/// never alias each other's buffers.
pub fn seeded_payload(seed: u64, src: NodeId, dst: NodeId, len: usize) -> Bytes {
    let mut out = Vec::with_capacity(len);
    let mut state = splitmix64(seed ^ pattern_seed(src, dst));
    while out.len() < len {
        state = splitmix64(state);
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&state.to_le_bytes()[..take]);
    }
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_pair_distinct() {
        assert_eq!(pattern_payload(3, 7, 64), pattern_payload(3, 7, 64));
        assert_ne!(pattern_payload(3, 7, 64), pattern_payload(7, 3, 64));
        assert_ne!(pattern_payload(0, 1, 64), pattern_payload(0, 2, 64));
        assert_ne!(pattern_seed(1, 0), pattern_seed(0, 1));
    }

    #[test]
    fn lengths_are_exact() {
        for len in [0, 1, 7, 8, 9, 64, 1000] {
            assert_eq!(pattern_payload(5, 6, len).len(), len);
        }
    }

    #[test]
    fn seeded_payloads_are_distinct_per_seed() {
        assert_eq!(seeded_payload(1, 3, 7, 64), seeded_payload(1, 3, 7, 64));
        assert_ne!(seeded_payload(1, 3, 7, 64), seeded_payload(2, 3, 7, 64));
        assert_ne!(seeded_payload(9, 0, 1, 64), seeded_payload(9, 0, 2, 64));
        assert_eq!(seeded_payload(5, 2, 9, 33).len(), 33);
    }

    #[test]
    fn prefix_stability() {
        // Shorter patterns are prefixes of longer ones (stream-derived).
        let long = pattern_payload(2, 9, 100);
        let short = pattern_payload(2, 9, 10);
        assert_eq!(&long[..10], &short[..]);
    }
}
