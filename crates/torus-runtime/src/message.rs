//! Wire format for combined messages: framing, sequencing, integrity.
//!
//! The paper's message combining means that everything a node forwards in
//! one step travels as **one** message. Here that is literal: the blocks
//! are framed back to back into a single contiguous [`Bytes`] buffer, so
//! a step costs one channel send regardless of how many logical blocks it
//! carries — exactly the `t_s`-amortization the algorithms are built
//! around. Decoding is zero-copy: each block's payload is a
//! [`Bytes::slice`] view into the received buffer.
//!
//! Since the fault-tolerance layer (see [`crate::fault`]) the frame header
//! also carries a **sequence number** (the global step the frame belongs
//! to, so receivers can discard stale or duplicated frames) and a
//! **CRC32** over the rest of the frame (so corruption in flight is
//! *detected* rather than silently delivered — detection is what turns a
//! corrupted wire into a recoverable retry).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! frame   := seq:u32 , crc:u32 , count:u32 , block*count
//! block   := src:u32 , dst:u32 , shifts:[u8; MAX_DIMS] , len:u32 , payload:[u8; len]
//! crc     := CRC32/IEEE over seq , count , block*count   (everything but the crc field)
//! ```
//!
//! Empty frames (`count = 0`) are legal — the paper explicitly allows
//! idle nodes to "send empty messages" in short-dimension scatter steps.

use alltoall_core::Block;
use bytes::{BufMut, Bytes, BytesMut};
use torus_topology::MAX_DIMS;

/// Fixed bytes of framing per message (`seq + crc + count`).
pub const MESSAGE_HEADER_BYTES: usize = 4 + 4 + 4;

/// Fixed bytes of framing per block (`src + dst + shifts + len`).
pub const BLOCK_HEADER_BYTES: usize = 4 + 4 + MAX_DIMS + 4;

/// Byte offset of the `crc` field inside a frame.
const CRC_OFFSET: usize = 4;

/// A wire-integrity failure, precise enough to drive recovery decisions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The frame ends before its framing says it should.
    Truncated {
        /// Actual frame length in bytes.
        len: usize,
        /// Bytes the framing requires.
        need: usize,
    },
    /// The stored CRC32 does not match the frame contents.
    Crc {
        /// Checksum carried in the frame header.
        stored: u32,
        /// Checksum recomputed over the received bytes.
        computed: u32,
    },
    /// Bytes remain after the last framed block.
    Trailing {
        /// Number of unclaimed trailing bytes.
        extra: usize,
        /// Block count the header declared.
        count: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { len, need } => {
                write!(f, "frame truncated: {len} bytes, need {need}")
            }
            WireError::Crc { stored, computed } => write!(
                f,
                "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WireError::Trailing { extra, count } => {
                write!(f, "frame has {extra} trailing bytes after {count} blocks")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Folds `data` into a running CRC32 state (start from `!0`, finish by
/// inverting). Exposed so multi-slice frames can be checksummed without
/// concatenating.
fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC32/IEEE of `data` (the classic zlib `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

/// CRC a frame carries: over the `seq` field and everything after the
/// `crc` field.
fn frame_crc(seq: u32, tail: &[u8]) -> u32 {
    let crc = crc32_update(!0, &seq.to_le_bytes());
    !crc32_update(crc, tail)
}

/// Assembles one combined wire frame from the blocks a node forwards in
/// one step. `seq` is the global step number; block order is preserved.
///
/// The CRC is computed in a streaming pass over the logical frame
/// contents *before* assembly, so the frame is written exactly once.
pub fn encode_message(seq: u32, blocks: &[Block<Bytes>]) -> Bytes {
    let mut crc = crc32_update(!0, &seq.to_le_bytes());
    crc = crc32_update(crc, &(blocks.len() as u32).to_le_bytes());
    for b in blocks {
        crc = crc32_update(crc, &b.src.to_le_bytes());
        crc = crc32_update(crc, &b.dst.to_le_bytes());
        crc = crc32_update(crc, &b.shifts);
        crc = crc32_update(crc, &(b.payload.len() as u32).to_le_bytes());
        crc = crc32_update(crc, &b.payload);
    }
    let crc = !crc;

    let payload_total: usize = blocks.iter().map(|b| b.payload.len()).sum();
    let mut buf = BytesMut::with_capacity(
        MESSAGE_HEADER_BYTES + blocks.len() * BLOCK_HEADER_BYTES + payload_total,
    );
    buf.put_u32_le(seq);
    buf.put_u32_le(crc);
    buf.put_u32_le(blocks.len() as u32);
    for b in blocks {
        buf.put_u32_le(b.src);
        buf.put_u32_le(b.dst);
        buf.put_slice(&b.shifts);
        buf.put_u32_le(b.payload.len() as u32);
        buf.put_slice(&b.payload);
    }
    buf.freeze()
}

fn read_u32(msg: &Bytes, off: usize) -> Result<u32, WireError> {
    let end = off + 4;
    let raw: [u8; 4] =
        msg.get(off..end)
            .and_then(|s| s.try_into().ok())
            .ok_or(WireError::Truncated {
                len: msg.len(),
                need: end,
            })?;
    Ok(u32::from_le_bytes(raw))
}

/// Splits a combined wire frame back into `(seq, blocks)`. Payloads are
/// zero-copy slices of `msg`. Rejects truncated frames, CRC mismatches,
/// and over-long framing — every corruption mode the fault layer can
/// inject is *detected* here, never silently delivered.
pub fn decode_message(msg: &Bytes) -> Result<(u32, Vec<Block<Bytes>>), WireError> {
    let seq = read_u32(msg, 0)?;
    let stored = read_u32(msg, CRC_OFFSET)?;
    let count = read_u32(msg, CRC_OFFSET + 4)? as usize;
    let computed = frame_crc(seq, &msg[CRC_OFFSET + 4..]);
    if stored != computed {
        return Err(WireError::Crc { stored, computed });
    }
    let mut off = MESSAGE_HEADER_BYTES;
    let mut blocks = Vec::with_capacity(count);
    for _ in 0..count {
        let src = read_u32(msg, off)?;
        let dst = read_u32(msg, off + 4)?;
        let shifts_end = off + 8 + MAX_DIMS;
        let shifts: [u8; MAX_DIMS] = msg
            .get(off + 8..shifts_end)
            .and_then(|s| s.try_into().ok())
            .ok_or(WireError::Truncated {
                len: msg.len(),
                need: shifts_end,
            })?;
        let len = read_u32(msg, shifts_end)? as usize;
        let start = shifts_end + 4;
        let end = start + len;
        if end > msg.len() {
            return Err(WireError::Truncated {
                len: msg.len(),
                need: end,
            });
        }
        let mut b = Block::with_payload(src, dst, msg.slice(start..end));
        b.shifts = shifts;
        blocks.push(b);
        off = end;
    }
    if off != msg.len() {
        return Err(WireError::Trailing {
            extra: msg.len() - off,
            count,
        });
    }
    Ok((seq, blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::pattern_payload;

    fn sample_blocks() -> Vec<Block<Bytes>> {
        let mut blocks = Vec::new();
        for (s, d, len) in [(0u32, 5u32, 16usize), (0, 9, 0), (0, 2, 33)] {
            let mut b = Block::with_payload(s, d, pattern_payload(s, d, len));
            b.shifts[0] = (d % 3) as u8;
            b.shifts[1] = 1;
            blocks.push(b);
        }
        blocks
    }

    #[test]
    fn roundtrip_preserves_blocks_and_seq() {
        let blocks = sample_blocks();
        let msg = encode_message(7, &blocks);
        let expected_len = MESSAGE_HEADER_BYTES
            + blocks.len() * BLOCK_HEADER_BYTES
            + blocks.iter().map(|b| b.payload.len()).sum::<usize>();
        assert_eq!(msg.len(), expected_len);
        let (seq, back) = decode_message(&msg).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(back, blocks);
    }

    #[test]
    fn empty_message_roundtrips() {
        let msg = encode_message(0, &[]);
        assert_eq!(msg.len(), MESSAGE_HEADER_BYTES);
        let (seq, blocks) = decode_message(&msg).unwrap();
        assert_eq!(seq, 0);
        assert!(blocks.is_empty());
    }

    #[test]
    fn decoded_payloads_are_zero_copy() {
        let blocks = sample_blocks();
        let msg = encode_message(3, &blocks);
        let (_, back) = decode_message(&msg).unwrap();
        // A Bytes slice of `msg` shares its allocation: the slice's
        // pointer lies inside the message buffer.
        let msg_range = msg.as_ptr() as usize..msg.as_ptr() as usize + msg.len();
        for b in &back {
            if !b.payload.is_empty() {
                assert!(msg_range.contains(&(b.payload.as_ptr() as usize)));
            }
        }
    }

    #[test]
    fn truncated_messages_are_rejected() {
        let msg = encode_message(1, &sample_blocks());
        for cut in [0, 2, MESSAGE_HEADER_BYTES + 3, msg.len() - 1] {
            let short = msg.slice(..cut);
            assert!(
                matches!(
                    decode_message(&short),
                    Err(WireError::Truncated { .. } | WireError::Crc { .. })
                ),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let msg = encode_message(5, &sample_blocks());
        for i in 0..msg.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = msg.to_vec();
                bad[i] ^= flip;
                let bad = Bytes::from(bad);
                assert!(
                    decode_message(&bad).is_err(),
                    "corrupting byte {i} with {flip:#x} must be detected"
                );
            }
        }
    }

    #[test]
    fn crc_mismatch_names_both_checksums() {
        let msg = encode_message(2, &sample_blocks());
        let mut bad = msg.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        match decode_message(&Bytes::from(bad)) {
            Err(WireError::Crc { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("expected Crc error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // Extend the frame and re-stamp a valid CRC so the trailing check
        // itself (not the CRC) is what fires.
        let msg = encode_message(4, &sample_blocks());
        let mut long = msg.to_vec();
        long.push(0xAB);
        let crc = {
            let tail = &long[CRC_OFFSET + 4..];
            frame_crc(4, tail)
        };
        long[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
        let err = decode_message(&Bytes::from(long)).unwrap_err();
        assert!(matches!(err, WireError::Trailing { extra: 1, .. }), "{err}");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic zlib check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn stale_seq_is_distinguishable() {
        let a = encode_message(1, &[]);
        let b = encode_message(2, &[]);
        assert_ne!(a, b);
        assert_eq!(decode_message(&a).unwrap().0, 1);
        assert_eq!(decode_message(&b).unwrap().0, 2);
    }
}
