//! Wire format for combined messages: framing, sequencing, integrity.
//!
//! The paper's message combining means that everything a node forwards in
//! one step travels as **one** message. A frame has one canonical byte
//! layout (below), but two in-memory representations, both carried by
//! [`WireFrame`]:
//!
//! * **contiguous** — the canonical layout materialized into a single
//!   [`Bytes`] buffer ([`encode_message`]). Fault injection (corrupt /
//!   truncate) and the recovery layer's retained resend copies operate on
//!   this form, because mutating "the frame's bytes" only makes sense
//!   when the frame *is* bytes;
//! * **gathered** — scatter-gather: all framing (message header plus the
//!   block headers, back to back) in one small reused [`BytesMut`], and
//!   the blocks' payloads as shared [`Bytes`] segments
//!   ([`encode_gathered`]). Combining then costs a header write per
//!   block, never a payload copy — the payload bytes seeded at the start
//!   of a run travel every hop by reference count.
//!
//! The two forms are interchangeable: a gathered frame's CRC is computed
//! over the canonical layout (streamed across the segments without
//! concatenating), so [`WireFrame::to_bytes`] materializes a frame that
//! [`decode_message`] round-trips exactly. Decoding is zero-copy in both
//! directions: contiguous frames are split into [`Bytes::slice`] views,
//! gathered frames hand their payload segments straight to the receiver
//! ([`decode_gathered`]).
//!
//! Since the fault-tolerance layer (see [`crate::fault`]) the frame header
//! also carries a **sequence number** (the global step the frame belongs
//! to, so receivers can discard stale or duplicated frames) and a
//! **CRC32** over the rest of the frame (so corruption in flight is
//! *detected* rather than silently delivered — detection is what turns a
//! corrupted wire into a recoverable retry).
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! frame   := seq:u32 , crc:u32 , count:u32 , block*count
//! block   := src:u32 , dst:u32 , shifts:[u8; MAX_DIMS] , len:u32 , payload:[u8; len]
//! crc     := CRC32/IEEE over seq , count , block*count   (everything but the crc field)
//! ```
//!
//! Empty frames (`count = 0`) are legal — the paper explicitly allows
//! idle nodes to "send empty messages" in short-dimension scatter steps.

use alltoall_core::Block;
use bytes::{BufMut, Bytes, BytesMut};
use torus_topology::MAX_DIMS;

/// Fixed bytes of framing per message (`seq + crc + count`).
pub const MESSAGE_HEADER_BYTES: usize = 4 + 4 + 4;

/// Fixed bytes of framing per block (`src + dst + shifts + len`).
pub const BLOCK_HEADER_BYTES: usize = 4 + 4 + MAX_DIMS + 4;

/// Byte offset of the `crc` field inside a frame.
const CRC_OFFSET: usize = 4;

/// A wire-integrity failure, precise enough to drive recovery decisions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum WireError {
    /// The frame ends before its framing says it should.
    Truncated {
        /// Actual frame length in bytes.
        len: usize,
        /// Bytes the framing requires.
        need: usize,
    },
    /// The stored CRC32 does not match the frame contents.
    Crc {
        /// Checksum carried in the frame header.
        stored: u32,
        /// Checksum recomputed over the received bytes.
        computed: u32,
    },
    /// Bytes remain after the last framed block.
    Trailing {
        /// Number of unclaimed trailing bytes.
        extra: usize,
        /// Block count the header declared.
        count: usize,
    },
    /// A gathered frame's payload segment count does not match the block
    /// count its framing declares.
    Segments {
        /// Payload segments actually present.
        got: usize,
        /// Block count the framing declared.
        want: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { len, need } => {
                write!(f, "frame truncated: {len} bytes, need {need}")
            }
            WireError::Crc { stored, computed } => write!(
                f,
                "crc mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WireError::Trailing { extra, count } => {
                write!(f, "frame has {extra} trailing bytes after {count} blocks")
            }
            WireError::Segments { got, want } => {
                write!(
                    f,
                    "gathered frame has {got} payload segments, framing declares {want}"
                )
            }
        }
    }
}

impl std::error::Error for WireError {}

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Folds `data` into a running CRC32 state (start from `!0`, finish by
/// inverting). Exposed so multi-slice frames can be checksummed without
/// concatenating.
fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        crc = CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

/// CRC32/IEEE of `data` (the classic zlib `crc32`).
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(!0, data)
}

/// CRC a frame carries: over the `seq` field and everything after the
/// `crc` field.
fn frame_crc(seq: u32, tail: &[u8]) -> u32 {
    let crc = crc32_update(!0, &seq.to_le_bytes());
    !crc32_update(crc, tail)
}

/// Assembles one combined wire frame, materialized into the canonical
/// contiguous layout. `seq` is the global step number; block order is
/// preserved.
///
/// The frame is written once with a CRC placeholder, checksummed in a
/// single sequential pass over the assembled buffer, and patched — each
/// payload byte is touched exactly once per concern (one copy, one CRC
/// read of the contiguous buffer) instead of the old scattered
/// pre-assembly CRC walk followed by the copy pass.
pub fn encode_message(seq: u32, blocks: &[Block<Bytes>]) -> Bytes {
    let payload_total: usize = blocks.iter().map(|b| b.payload.len()).sum();
    let mut buf = BytesMut::with_capacity(
        MESSAGE_HEADER_BYTES + blocks.len() * BLOCK_HEADER_BYTES + payload_total,
    );
    buf.put_u32_le(seq);
    buf.put_u32_le(0); // CRC placeholder, patched below.
    buf.put_u32_le(blocks.len() as u32);
    for b in blocks {
        buf.put_u32_le(b.src);
        buf.put_u32_le(b.dst);
        buf.put_slice(&b.shifts);
        buf.put_u32_le(b.payload.len() as u32);
        buf.put_slice(&b.payload);
    }
    let crc = frame_crc(seq, &buf[MESSAGE_HEADER_BYTES - 4..]);
    buf[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
    buf.freeze()
}

/// A frame as handed to the transport: one canonical byte layout, two
/// in-memory shapes (see the module docs for when each is used).
#[derive(Clone, Debug)]
pub enum WireFrame {
    /// The canonical layout in a single buffer.
    Contiguous(Bytes),
    /// Scatter-gather: all framing packed into one small buffer, payloads
    /// shared.
    Gathered {
        /// `seq, crc, count` plus `count` block headers, back to back.
        framing: BytesMut,
        /// One shared payload segment per block, in header order.
        payloads: Vec<Bytes>,
    },
}

impl WireFrame {
    /// Bytes this frame occupies on the wire (identical for both shapes
    /// of the same logical frame).
    pub fn wire_len(&self) -> usize {
        match self {
            WireFrame::Contiguous(b) => b.len(),
            WireFrame::Gathered { framing, payloads } => {
                framing.len() + payloads.iter().map(Bytes::len).sum::<usize>()
            }
        }
    }

    /// Materializes the canonical contiguous layout. For gathered frames
    /// this is the one place payload bytes are copied — the fault layer
    /// and recovery path call it to get mutable, well-defined frame
    /// bytes; the fault-free hot path never does.
    pub fn to_bytes(&self) -> Bytes {
        match self {
            WireFrame::Contiguous(b) => b.clone(),
            WireFrame::Gathered { framing, payloads } => {
                let mut buf = BytesMut::with_capacity(self.wire_len());
                buf.put_slice(&framing[..MESSAGE_HEADER_BYTES]);
                let mut off = MESSAGE_HEADER_BYTES;
                for p in payloads {
                    buf.put_slice(&framing[off..off + BLOCK_HEADER_BYTES]);
                    buf.put_slice(p);
                    off += BLOCK_HEADER_BYTES;
                }
                buf.freeze()
            }
        }
    }

    /// Decodes either shape into `(seq, blocks)`.
    #[allow(clippy::missing_errors_doc)]
    pub fn decode(&self) -> Result<(u32, Vec<Block<Bytes>>), WireError> {
        match self {
            WireFrame::Contiguous(b) => decode_message(b),
            WireFrame::Gathered { framing, payloads } => {
                let mut segments = payloads.clone();
                let mut blocks = Vec::new();
                let seq = decode_gathered(framing, &mut segments, &mut blocks)?;
                Ok((seq, blocks))
            }
        }
    }
}

/// CRC of the canonical layout, streamed across the framing buffer and
/// the payload segments without materializing the frame. `framing` must
/// hold exactly `payloads.len()` block headers.
fn gathered_crc(framing: &[u8], payloads: &[Bytes]) -> u32 {
    let mut crc = crc32_update(!0, &framing[..CRC_OFFSET]);
    crc = crc32_update(crc, &framing[CRC_OFFSET + 4..MESSAGE_HEADER_BYTES]);
    let mut off = MESSAGE_HEADER_BYTES;
    for p in payloads {
        crc = crc32_update(crc, &framing[off..off + BLOCK_HEADER_BYTES]);
        crc = crc32_update(crc, p);
        off += BLOCK_HEADER_BYTES;
    }
    !crc
}

/// Assembles one combined wire frame in scatter-gather form: headers are
/// written into `framing` (recycled: cleared and reused), payloads are
/// shared by cloning each block's [`Bytes`] handle into `payloads`. No
/// payload byte is copied; the CRC (identical to the one
/// [`encode_message`] would stamp) is streamed across the segments.
pub fn encode_gathered(
    seq: u32,
    blocks: &[Block<Bytes>],
    mut framing: BytesMut,
    mut payloads: Vec<Bytes>,
) -> WireFrame {
    framing.clear();
    payloads.clear();
    framing.reserve(MESSAGE_HEADER_BYTES + blocks.len() * BLOCK_HEADER_BYTES);
    payloads.reserve(blocks.len());
    framing.put_u32_le(seq);
    framing.put_u32_le(0); // CRC placeholder, patched below.
    framing.put_u32_le(blocks.len() as u32);
    for b in blocks {
        framing.put_u32_le(b.src);
        framing.put_u32_le(b.dst);
        framing.put_slice(&b.shifts);
        framing.put_u32_le(b.payload.len() as u32);
        payloads.push(b.payload.clone());
    }
    let crc = gathered_crc(&framing, &payloads);
    framing[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
    WireFrame::Gathered { framing, payloads }
}

/// Reads a `u32` from a slice already known to be long enough.
fn read_u32_at(buf: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(buf[off..off + 4].try_into().expect("length checked"))
}

/// Validates and splits a gathered frame: framing structure first, then
/// segment count and per-segment lengths, then the CRC over the
/// canonical layout — only a fully validated frame appends anything.
/// On success the segments are drained into `out` as blocks (zero-copy)
/// and the (now empty) `payloads` vec is left for recycling; returns the
/// frame's sequence number.
///
/// Errors mirror [`decode_message`]: `len`/`need` in [`WireError::Truncated`]
/// are total wire lengths, so a truncated gathered frame reports the same
/// coordinates its contiguous materialization would.
#[allow(clippy::missing_errors_doc)]
pub fn decode_gathered(
    framing: &[u8],
    payloads: &mut Vec<Bytes>,
    out: &mut Vec<Block<Bytes>>,
) -> Result<u32, WireError> {
    let segment_total: usize = payloads.iter().map(Bytes::len).sum();
    let wire_len = framing.len() + segment_total;
    if framing.len() < MESSAGE_HEADER_BYTES {
        return Err(WireError::Truncated {
            len: wire_len,
            need: MESSAGE_HEADER_BYTES,
        });
    }
    let seq = read_u32_at(framing, 0);
    let stored = read_u32_at(framing, CRC_OFFSET);
    let count = read_u32_at(framing, CRC_OFFSET + 4) as usize;
    let Some(framing_need) = count
        .checked_mul(BLOCK_HEADER_BYTES)
        .and_then(|n| n.checked_add(MESSAGE_HEADER_BYTES))
    else {
        return Err(WireError::Truncated {
            len: wire_len,
            need: usize::MAX,
        });
    };
    if framing.len() < framing_need {
        return Err(WireError::Truncated {
            len: wire_len,
            need: framing_need + segment_total,
        });
    }
    if framing.len() > framing_need {
        return Err(WireError::Trailing {
            extra: framing.len() - framing_need,
            count,
        });
    }
    if payloads.len() != count {
        return Err(WireError::Segments {
            got: payloads.len(),
            want: count,
        });
    }
    let mut declared_total = 0usize;
    let mut mismatch = false;
    for (i, p) in payloads.iter().enumerate() {
        let declared = read_u32_at(
            framing,
            MESSAGE_HEADER_BYTES + i * BLOCK_HEADER_BYTES + 8 + MAX_DIMS,
        ) as usize;
        declared_total += declared;
        mismatch |= declared != p.len();
    }
    if mismatch {
        return Err(WireError::Truncated {
            len: wire_len,
            need: framing.len() + declared_total,
        });
    }
    let computed = gathered_crc(framing, payloads);
    if stored != computed {
        return Err(WireError::Crc { stored, computed });
    }
    out.reserve(payloads.len());
    let mut off = MESSAGE_HEADER_BYTES;
    for p in payloads.drain(..) {
        let src = read_u32_at(framing, off);
        let dst = read_u32_at(framing, off + 4);
        let shifts: [u8; MAX_DIMS] = framing[off + 8..off + 8 + MAX_DIMS]
            .try_into()
            .expect("length checked");
        let mut b = Block::with_payload(src, dst, p);
        b.shifts = shifts;
        out.push(b);
        off += BLOCK_HEADER_BYTES;
    }
    Ok(seq)
}

fn read_u32(msg: &Bytes, off: usize) -> Result<u32, WireError> {
    let end = off + 4;
    let raw: [u8; 4] =
        msg.get(off..end)
            .and_then(|s| s.try_into().ok())
            .ok_or(WireError::Truncated {
                len: msg.len(),
                need: end,
            })?;
    Ok(u32::from_le_bytes(raw))
}

/// Splits a combined wire frame back into `(seq, blocks)`. Payloads are
/// zero-copy slices of `msg`. Rejects truncated frames, CRC mismatches,
/// and over-long framing — every corruption mode the fault layer can
/// inject is *detected* here, never silently delivered.
pub fn decode_message(msg: &Bytes) -> Result<(u32, Vec<Block<Bytes>>), WireError> {
    let seq = read_u32(msg, 0)?;
    let stored = read_u32(msg, CRC_OFFSET)?;
    let count = read_u32(msg, CRC_OFFSET + 4)? as usize;
    let computed = frame_crc(seq, &msg[CRC_OFFSET + 4..]);
    if stored != computed {
        return Err(WireError::Crc { stored, computed });
    }
    let mut off = MESSAGE_HEADER_BYTES;
    let mut blocks = Vec::with_capacity(count);
    for _ in 0..count {
        let src = read_u32(msg, off)?;
        let dst = read_u32(msg, off + 4)?;
        let shifts_end = off + 8 + MAX_DIMS;
        let shifts: [u8; MAX_DIMS] = msg
            .get(off + 8..shifts_end)
            .and_then(|s| s.try_into().ok())
            .ok_or(WireError::Truncated {
                len: msg.len(),
                need: shifts_end,
            })?;
        let len = read_u32(msg, shifts_end)? as usize;
        let start = shifts_end + 4;
        let end = start + len;
        if end > msg.len() {
            return Err(WireError::Truncated {
                len: msg.len(),
                need: end,
            });
        }
        let mut b = Block::with_payload(src, dst, msg.slice(start..end));
        b.shifts = shifts;
        blocks.push(b);
        off = end;
    }
    if off != msg.len() {
        return Err(WireError::Trailing {
            extra: msg.len() - off,
            count,
        });
    }
    Ok((seq, blocks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::pattern_payload;

    fn sample_blocks() -> Vec<Block<Bytes>> {
        let mut blocks = Vec::new();
        for (s, d, len) in [(0u32, 5u32, 16usize), (0, 9, 0), (0, 2, 33)] {
            let mut b = Block::with_payload(s, d, pattern_payload(s, d, len));
            b.shifts[0] = (d % 3) as u8;
            b.shifts[1] = 1;
            blocks.push(b);
        }
        blocks
    }

    #[test]
    fn roundtrip_preserves_blocks_and_seq() {
        let blocks = sample_blocks();
        let msg = encode_message(7, &blocks);
        let expected_len = MESSAGE_HEADER_BYTES
            + blocks.len() * BLOCK_HEADER_BYTES
            + blocks.iter().map(|b| b.payload.len()).sum::<usize>();
        assert_eq!(msg.len(), expected_len);
        let (seq, back) = decode_message(&msg).unwrap();
        assert_eq!(seq, 7);
        assert_eq!(back, blocks);
    }

    #[test]
    fn empty_message_roundtrips() {
        let msg = encode_message(0, &[]);
        assert_eq!(msg.len(), MESSAGE_HEADER_BYTES);
        let (seq, blocks) = decode_message(&msg).unwrap();
        assert_eq!(seq, 0);
        assert!(blocks.is_empty());
    }

    #[test]
    fn decoded_payloads_are_zero_copy() {
        let blocks = sample_blocks();
        let msg = encode_message(3, &blocks);
        let (_, back) = decode_message(&msg).unwrap();
        // A Bytes slice of `msg` shares its allocation: the slice's
        // pointer lies inside the message buffer.
        let msg_range = msg.as_ptr() as usize..msg.as_ptr() as usize + msg.len();
        for b in &back {
            if !b.payload.is_empty() {
                assert!(msg_range.contains(&(b.payload.as_ptr() as usize)));
            }
        }
    }

    #[test]
    fn truncated_messages_are_rejected() {
        let msg = encode_message(1, &sample_blocks());
        for cut in [0, 2, MESSAGE_HEADER_BYTES + 3, msg.len() - 1] {
            let short = msg.slice(..cut);
            assert!(
                matches!(
                    decode_message(&short),
                    Err(WireError::Truncated { .. } | WireError::Crc { .. })
                ),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let msg = encode_message(5, &sample_blocks());
        for i in 0..msg.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = msg.to_vec();
                bad[i] ^= flip;
                let bad = Bytes::from(bad);
                assert!(
                    decode_message(&bad).is_err(),
                    "corrupting byte {i} with {flip:#x} must be detected"
                );
            }
        }
    }

    #[test]
    fn crc_mismatch_names_both_checksums() {
        let msg = encode_message(2, &sample_blocks());
        let mut bad = msg.to_vec();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        match decode_message(&Bytes::from(bad)) {
            Err(WireError::Crc { stored, computed }) => assert_ne!(stored, computed),
            other => panic!("expected Crc error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        // Extend the frame and re-stamp a valid CRC so the trailing check
        // itself (not the CRC) is what fires.
        let msg = encode_message(4, &sample_blocks());
        let mut long = msg.to_vec();
        long.push(0xAB);
        let crc = {
            let tail = &long[CRC_OFFSET + 4..];
            frame_crc(4, tail)
        };
        long[CRC_OFFSET..CRC_OFFSET + 4].copy_from_slice(&crc.to_le_bytes());
        let err = decode_message(&Bytes::from(long)).unwrap_err();
        assert!(matches!(err, WireError::Trailing { extra: 1, .. }), "{err}");
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic zlib check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn gather(seq: u32, blocks: &[Block<Bytes>]) -> WireFrame {
        encode_gathered(seq, blocks, BytesMut::new(), Vec::new())
    }

    #[test]
    fn gathered_materializes_to_identical_canonical_bytes() {
        let blocks = sample_blocks();
        let contiguous = encode_message(9, &blocks);
        let gathered = gather(9, &blocks);
        assert_eq!(gathered.wire_len(), contiguous.len());
        assert_eq!(gathered.to_bytes(), contiguous);
        // And the materialization decodes through the contiguous path.
        let (seq, back) = decode_message(&gathered.to_bytes()).unwrap();
        assert_eq!(seq, 9);
        assert_eq!(back, blocks);
    }

    #[test]
    fn gathered_shares_payloads_without_copying() {
        let blocks = sample_blocks();
        let WireFrame::Gathered { framing, payloads } = gather(1, &blocks) else {
            panic!("encode_gathered must produce a gathered frame");
        };
        assert_eq!(
            framing.len(),
            MESSAGE_HEADER_BYTES + blocks.len() * BLOCK_HEADER_BYTES
        );
        for (p, b) in payloads.iter().zip(&blocks) {
            // Same allocation, not a copy.
            assert_eq!(p.as_ptr(), b.payload.as_ptr());
            assert_eq!(p.len(), b.payload.len());
        }
    }

    #[test]
    fn decode_gathered_round_trips_and_recycles_the_vec() {
        let blocks = sample_blocks();
        let WireFrame::Gathered {
            framing,
            mut payloads,
        } = gather(6, &blocks)
        else {
            panic!("expected gathered");
        };
        let mut out = Vec::new();
        let seq = decode_gathered(&framing, &mut payloads, &mut out).unwrap();
        assert_eq!(seq, 6);
        assert_eq!(out, blocks);
        assert!(payloads.is_empty(), "segments are drained for recycling");
    }

    #[test]
    fn gathered_buffers_are_recycled_across_encodes() {
        let blocks = sample_blocks();
        let WireFrame::Gathered { framing, payloads } = gather(1, &blocks) else {
            panic!("expected gathered");
        };
        let cap_before = framing.capacity();
        // Re-encoding into the recycled buffers must not grow them.
        let WireFrame::Gathered { framing, .. } = encode_gathered(2, &blocks, framing, payloads)
        else {
            panic!("expected gathered");
        };
        assert_eq!(framing.capacity(), cap_before);
    }

    #[test]
    fn gathered_structural_damage_is_rejected_not_panicking() {
        let blocks = sample_blocks();
        let frame = gather(3, &blocks);
        let WireFrame::Gathered { framing, payloads } = frame else {
            panic!("expected gathered");
        };

        // Truncated framing at every cut point.
        for cut in 0..framing.len() {
            let mut segs = payloads.clone();
            let mut out = Vec::new();
            let r = decode_gathered(&framing[..cut], &mut segs, &mut out);
            assert!(r.is_err(), "framing cut at {cut} must fail");
            assert!(out.is_empty(), "nothing may be delivered on error");
        }

        // A dropped payload segment.
        let mut segs = payloads.clone();
        segs.pop();
        let mut out = Vec::new();
        assert_eq!(
            decode_gathered(&framing, &mut segs, &mut out),
            Err(WireError::Segments {
                got: payloads.len() - 1,
                want: payloads.len(),
            })
        );

        // A shrunken segment (declared length no longer matches).
        let mut segs = payloads.clone();
        let full = segs[0].clone();
        segs[0] = full.slice(..full.len() - 1);
        let mut out = Vec::new();
        assert!(matches!(
            decode_gathered(&framing, &mut segs, &mut out),
            Err(WireError::Truncated { .. })
        ));

        // A corrupted payload byte trips the CRC.
        let mut segs = payloads.clone();
        let mut bad = segs[0].to_vec();
        bad[0] ^= 0x01;
        segs[0] = Bytes::from(bad);
        let mut out = Vec::new();
        assert!(matches!(
            decode_gathered(&framing, &mut segs, &mut out),
            Err(WireError::Crc { .. })
        ));
    }

    #[test]
    fn wireframe_decode_handles_both_shapes() {
        let blocks = sample_blocks();
        let g = gather(4, &blocks);
        let c = WireFrame::Contiguous(encode_message(4, &blocks));
        let (gs, gb) = g.decode().unwrap();
        let (cs, cb) = c.decode().unwrap();
        assert_eq!(gs, cs);
        assert_eq!(gb, cb);
        assert_eq!(g.wire_len(), c.wire_len());
    }

    #[test]
    fn stale_seq_is_distinguishable() {
        let a = encode_message(1, &[]);
        let b = encode_message(2, &[]);
        assert_ne!(a, b);
        assert_eq!(decode_message(&a).unwrap().0, 1);
        assert_eq!(decode_message(&b).unwrap().0, 2);
    }
}
