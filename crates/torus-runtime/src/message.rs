//! Wire format for combined messages.
//!
//! The paper's message combining means that everything a node forwards in
//! one step travels as **one** message. Here that is literal: the blocks
//! are framed back to back into a single contiguous [`Bytes`] buffer, so
//! a step costs one channel send regardless of how many logical blocks it
//! carries — exactly the `t_s`-amortization the algorithms are built
//! around. Decoding is zero-copy: each block's payload is a
//! [`Bytes::slice`] view into the received buffer.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! message := count:u32 , block*count
//! block   := src:u32 , dst:u32 , shifts:[u8; MAX_DIMS] , len:u32 , payload:[u8; len]
//! ```
//!
//! Empty messages (`count = 0`) are legal — the paper explicitly allows
//! idle nodes to "send empty messages" in short-dimension scatter steps.

use alltoall_core::Block;
use bytes::{BufMut, Bytes, BytesMut};
use torus_topology::MAX_DIMS;

use crate::RuntimeError;

/// Fixed bytes of framing per message (the block count).
pub const MESSAGE_HEADER_BYTES: usize = 4;

/// Fixed bytes of framing per block (`src + dst + shifts + len`).
pub const BLOCK_HEADER_BYTES: usize = 4 + 4 + MAX_DIMS + 4;

/// Assembles one combined wire message from the blocks a node forwards in
/// one step. Block order is preserved.
pub fn encode_message(blocks: &[Block<Bytes>]) -> Bytes {
    let payload_total: usize = blocks.iter().map(|b| b.payload.len()).sum();
    let mut buf = BytesMut::with_capacity(
        MESSAGE_HEADER_BYTES + blocks.len() * BLOCK_HEADER_BYTES + payload_total,
    );
    buf.put_u32_le(blocks.len() as u32);
    for b in blocks {
        buf.put_u32_le(b.src);
        buf.put_u32_le(b.dst);
        buf.put_slice(&b.shifts);
        buf.put_u32_le(b.payload.len() as u32);
        buf.put_slice(&b.payload);
    }
    buf.freeze()
}

fn read_u32(msg: &Bytes, off: usize) -> Result<u32, RuntimeError> {
    let end = off + 4;
    let raw: [u8; 4] = msg
        .get(off..end)
        .and_then(|s| s.try_into().ok())
        .ok_or_else(|| truncated(msg.len(), end))?;
    Ok(u32::from_le_bytes(raw))
}

fn truncated(len: usize, need: usize) -> RuntimeError {
    RuntimeError::Wire(format!("message truncated: {len} bytes, need {need}"))
}

/// Splits a combined wire message back into blocks. Payloads are zero-copy
/// slices of `msg`. Rejects truncated and over-long framing.
pub fn decode_message(msg: &Bytes) -> Result<Vec<Block<Bytes>>, RuntimeError> {
    let count = read_u32(msg, 0)? as usize;
    let mut off = MESSAGE_HEADER_BYTES;
    let mut blocks = Vec::with_capacity(count);
    for _ in 0..count {
        let src = read_u32(msg, off)?;
        let dst = read_u32(msg, off + 4)?;
        let shifts_end = off + 8 + MAX_DIMS;
        let shifts: [u8; MAX_DIMS] = msg
            .get(off + 8..shifts_end)
            .and_then(|s| s.try_into().ok())
            .ok_or_else(|| truncated(msg.len(), shifts_end))?;
        let len = read_u32(msg, shifts_end)? as usize;
        let start = shifts_end + 4;
        let end = start + len;
        if end > msg.len() {
            return Err(truncated(msg.len(), end));
        }
        let mut b = Block::with_payload(src, dst, msg.slice(start..end));
        b.shifts = shifts;
        blocks.push(b);
        off = end;
    }
    if off != msg.len() {
        return Err(RuntimeError::Wire(format!(
            "message has {} trailing bytes after {count} blocks",
            msg.len() - off
        )));
    }
    Ok(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::payload::pattern_payload;

    fn sample_blocks() -> Vec<Block<Bytes>> {
        let mut blocks = Vec::new();
        for (s, d, len) in [(0u32, 5u32, 16usize), (0, 9, 0), (0, 2, 33)] {
            let mut b = Block::with_payload(s, d, pattern_payload(s, d, len));
            b.shifts[0] = (d % 3) as u8;
            b.shifts[1] = 1;
            blocks.push(b);
        }
        blocks
    }

    #[test]
    fn roundtrip_preserves_blocks() {
        let blocks = sample_blocks();
        let msg = encode_message(&blocks);
        let expected_len = MESSAGE_HEADER_BYTES
            + blocks.len() * BLOCK_HEADER_BYTES
            + blocks.iter().map(|b| b.payload.len()).sum::<usize>();
        assert_eq!(msg.len(), expected_len);
        let back = decode_message(&msg).unwrap();
        assert_eq!(back, blocks);
    }

    #[test]
    fn empty_message_roundtrips() {
        let msg = encode_message(&[]);
        assert_eq!(msg.len(), MESSAGE_HEADER_BYTES);
        assert!(decode_message(&msg).unwrap().is_empty());
    }

    #[test]
    fn decoded_payloads_are_zero_copy() {
        let blocks = sample_blocks();
        let msg = encode_message(&blocks);
        let back = decode_message(&msg).unwrap();
        // A Bytes slice of `msg` shares its allocation: the slice's
        // pointer lies inside the message buffer.
        let msg_range = msg.as_ptr() as usize..msg.as_ptr() as usize + msg.len();
        for b in &back {
            if !b.payload.is_empty() {
                assert!(msg_range.contains(&(b.payload.as_ptr() as usize)));
            }
        }
    }

    #[test]
    fn truncated_messages_are_rejected() {
        let msg = encode_message(&sample_blocks());
        for cut in [0, 2, MESSAGE_HEADER_BYTES + 3, msg.len() - 1] {
            let short = msg.slice(..cut);
            assert!(
                matches!(decode_message(&short), Err(RuntimeError::Wire(_))),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let msg = encode_message(&sample_blocks());
        let mut long = bytes::BytesMut::from(&msg[..]);
        long.put_u8(0xAB);
        let err = decode_message(&long.freeze()).unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }
}
