//! Deterministic, seedable fault injection for the runtime.
//!
//! A [`FaultPlan`] decides, for every wire transmission `(step, src, dst,
//! attempt)` and every worker step `(step, node)`, whether a fault fires
//! and which kind. Decisions come from two sources:
//!
//! * **explicit faults** pinned to exact coordinates with
//!   [`with_message_fault`](FaultPlan::with_message_fault) /
//!   [`with_worker_fault`](FaultPlan::with_worker_fault) — the unit-test
//!   and chaos-matrix interface;
//! * **background rates** (e.g. "drop 1% of messages") sampled by hashing
//!   the coordinates with the plan's seed through splitmix64 — *stateless*
//!   sampling, so the same seed yields the same faults regardless of
//!   thread interleaving, worker count, or evaluation order. That is what
//!   makes seeded chaos runs exactly reproducible.
//!
//! The plan only *describes* faults; the runtime injects them at the send
//! path (attempt 0) and at the resend path (attempts ≥ 1, modelling a
//! faulty retransmission), and kills or stalls workers at step entry.

use std::collections::HashMap;

use torus_topology::NodeId;

use crate::payload::splitmix64;

/// What to do to one wire transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum FaultKind {
    /// The frame never arrives (receiver must time out and recover).
    Drop,
    /// The frame arrives late by this many microseconds. Delays shorter
    /// than the receive deadline are absorbed; longer ones behave like a
    /// drop followed by a stale duplicate.
    DelayMicros(u64),
    /// The frame arrives twice (receiver must discard the duplicate).
    Duplicate,
    /// One byte of the frame is flipped (CRC32 must detect it).
    CorruptByte,
    /// Only a prefix of the frame arrives (framing must detect it).
    Truncate,
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Drop => write!(f, "drop"),
            FaultKind::DelayMicros(us) => write!(f, "delay({us}us)"),
            FaultKind::Duplicate => write!(f, "duplicate"),
            FaultKind::CorruptByte => write!(f, "corrupt"),
            FaultKind::Truncate => write!(f, "truncate"),
        }
    }
}

/// What to do to one worker at step entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum WorkerFaultKind {
    /// The worker hosting the node dies: it stops sending and receiving
    /// for the rest of the run (it still crosses barriers, modelling a
    /// crashed rank whose host keeps the clock). Unrecoverable.
    Kill,
    /// The worker sleeps this long before the step's sends — long stalls
    /// push peers past their deadlines and exercise the retry path.
    StallMicros(u64),
}

/// One injected fault occurrence, recorded for the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub struct FaultEvent {
    /// Global step of the transmission.
    pub step: usize,
    /// Sending node (canonical id), or the faulted node for worker faults.
    pub src: NodeId,
    /// Receiving node (canonical id); `== src` for worker faults.
    pub dst: NodeId,
    /// Transmission attempt the fault applied to (0 = first send).
    pub attempt: u32,
    /// The fault injected.
    pub kind: FaultEventKind,
}

/// Discriminates message from worker faults in the event log.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum FaultEventKind {
    /// A wire-transmission fault.
    Message(FaultKind),
    /// A worker kill/stall fault.
    Worker(WorkerFaultKind),
}

impl std::fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            FaultEventKind::Message(k) => write!(
                f,
                "step {} {}->{} attempt {}: {k}",
                self.step, self.src, self.dst, self.attempt
            ),
            FaultEventKind::Worker(WorkerFaultKind::Kill) => {
                write!(f, "step {} node {}: killed", self.step, self.src)
            }
            FaultEventKind::Worker(WorkerFaultKind::StallMicros(us)) => {
                write!(f, "step {} node {}: stalled {us}us", self.step, self.src)
            }
        }
    }
}

/// Background fault rates, applied to first-attempt transmissions.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
struct Rates {
    drop: f64,
    corrupt: f64,
    truncate: f64,
    duplicate: f64,
    delay: f64,
    delay_micros: u64,
}

/// A deterministic, seedable fault schedule.
///
/// Cloning is cheap relative to a run; an empty plan (the default) makes
/// every query return "no fault" and is skipped by the runtime's fast
/// path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    rates: Rates,
    message: HashMap<(usize, NodeId, NodeId, u32), Vec<FaultKind>>,
    worker: HashMap<(usize, NodeId), WorkerFaultKind>,
}

// Distinct salts so each rate samples an independent hash stream.
const SALT_DROP: u64 = 0xD809_0000_0000_0001;
const SALT_CORRUPT: u64 = 0xD809_0000_0000_0002;
const SALT_TRUNCATE: u64 = 0xD809_0000_0000_0003;
const SALT_DUPLICATE: u64 = 0xD809_0000_0000_0004;
const SALT_DELAY: u64 = 0xD809_0000_0000_0005;
const SALT_OFFSET: u64 = 0xD809_0000_0000_0006;

impl FaultPlan {
    /// An empty plan with the given seed for background sampling.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The sampling seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True if no fault can ever fire (the runtime then skips all
    /// injection bookkeeping on the send path).
    pub fn is_empty(&self) -> bool {
        self.message.is_empty() && self.worker.is_empty() && self.rates == Rates::default()
    }

    /// Drops this fraction of first-attempt transmissions.
    pub fn with_drop_rate(mut self, rate: f64) -> Self {
        self.rates.drop = rate;
        self
    }

    /// Corrupts one byte of this fraction of first-attempt transmissions.
    pub fn with_corrupt_rate(mut self, rate: f64) -> Self {
        self.rates.corrupt = rate;
        self
    }

    /// Truncates this fraction of first-attempt transmissions.
    pub fn with_truncate_rate(mut self, rate: f64) -> Self {
        self.rates.truncate = rate;
        self
    }

    /// Duplicates this fraction of first-attempt transmissions.
    pub fn with_duplicate_rate(mut self, rate: f64) -> Self {
        self.rates.duplicate = rate;
        self
    }

    /// Delays this fraction of first-attempt transmissions by `micros`.
    pub fn with_delay_rate(mut self, rate: f64, micros: u64) -> Self {
        self.rates.delay = rate;
        self.rates.delay_micros = micros;
        self
    }

    /// Pins a fault to one exact transmission. `attempt` 0 is the
    /// original send; `attempt` ≥ 1 fault the corresponding resend, which
    /// is how retry-budget exhaustion is provoked deterministically.
    pub fn with_message_fault(
        mut self,
        step: usize,
        src: NodeId,
        dst: NodeId,
        attempt: u32,
        kind: FaultKind,
    ) -> Self {
        self.message
            .entry((step, src, dst, attempt))
            .or_default()
            .push(kind);
        self
    }

    /// Kills or stalls the worker hosting `node` when it reaches `step`.
    pub fn with_worker_fault(mut self, step: usize, node: NodeId, kind: WorkerFaultKind) -> Self {
        self.worker.insert((step, node), kind);
        self
    }

    /// Uniform hash in `[0, 1)` for one (salt, coordinates) tuple.
    fn roll(&self, salt: u64, step: usize, src: NodeId, dst: NodeId) -> f64 {
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt)
            .wrapping_add((step as u64) << 40)
            .wrapping_add((src as u64) << 20)
            .wrapping_add(dst as u64);
        (splitmix64(key) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// All faults applying to transmission `(step, src, dst, attempt)`,
    /// in deterministic order. Background rates only fire on attempt 0;
    /// resends can only be faulted explicitly.
    pub fn message_faults(
        &self,
        step: usize,
        src: NodeId,
        dst: NodeId,
        attempt: u32,
    ) -> Vec<FaultKind> {
        let mut out = self
            .message
            .get(&(step, src, dst, attempt))
            .cloned()
            .unwrap_or_default();
        if attempt == 0 {
            let r = &self.rates;
            if r.drop > 0.0 && self.roll(SALT_DROP, step, src, dst) < r.drop {
                out.push(FaultKind::Drop);
            }
            if r.corrupt > 0.0 && self.roll(SALT_CORRUPT, step, src, dst) < r.corrupt {
                out.push(FaultKind::CorruptByte);
            }
            if r.truncate > 0.0 && self.roll(SALT_TRUNCATE, step, src, dst) < r.truncate {
                out.push(FaultKind::Truncate);
            }
            if r.duplicate > 0.0 && self.roll(SALT_DUPLICATE, step, src, dst) < r.duplicate {
                out.push(FaultKind::Duplicate);
            }
            if r.delay > 0.0 && self.roll(SALT_DELAY, step, src, dst) < r.delay {
                out.push(FaultKind::DelayMicros(r.delay_micros));
            }
        }
        out
    }

    /// The worker fault (if any) for `node` at `step`.
    pub fn worker_fault(&self, step: usize, node: NodeId) -> Option<WorkerFaultKind> {
        self.worker.get(&(step, node)).copied()
    }

    /// All pinned kill faults as `(step, node)` pairs, sorted. Kills are
    /// never rate-sampled, so this is the complete statically-known dead
    /// set — what degraded-mode execution pre-seeds its quarantine from.
    pub fn kills(&self) -> Vec<(usize, NodeId)> {
        let mut out: Vec<(usize, NodeId)> = self
            .worker
            .iter()
            .filter(|(_, kind)| matches!(kind, WorkerFaultKind::Kill))
            .map(|(&(step, node), _)| (step, node))
            .collect();
        out.sort_unstable();
        out
    }

    /// Deterministic byte offset for a [`FaultKind::CorruptByte`] on a
    /// frame of `len` bytes.
    pub fn corrupt_offset(&self, step: usize, src: NodeId, dst: NodeId, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(SALT_OFFSET)
            .wrapping_add((step as u64) << 40)
            .wrapping_add((src as u64) << 20)
            .wrapping_add(dst as u64);
        (splitmix64(key) % len as u64) as usize
    }

    /// Parses a CLI-style profile spec: comma-separated `key=value` pairs
    /// with keys `seed`, `drop`, `corrupt`, `truncate`, `duplicate`,
    /// `delay` (rates in `[0, 1]`), `delay-us` (delay length), and
    /// `kill=STEP:NODE` / `stall=STEP:NODE:MICROS` for pinned worker
    /// faults. Example: `"drop=0.01,corrupt=0.005,seed=42"`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::default();
        let mut delay_rate = 0.0f64;
        let mut delay_us = 1_000u64;
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fault spec '{part}': expected key=value"))?;
            let key = key.trim();
            let value = value.trim();
            let rate = |v: &str| -> Result<f64, String> {
                let r: f64 = v.parse().map_err(|e| format!("{key}: {e}"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("{key}: rate {r} outside [0, 1]"));
                }
                Ok(r)
            };
            match key {
                "seed" => plan.seed = value.parse().map_err(|e| format!("seed: {e}"))?,
                "drop" => plan.rates.drop = rate(value)?,
                "corrupt" => plan.rates.corrupt = rate(value)?,
                "truncate" => plan.rates.truncate = rate(value)?,
                "duplicate" => plan.rates.duplicate = rate(value)?,
                "delay" => delay_rate = rate(value)?,
                "delay-us" => delay_us = value.parse().map_err(|e| format!("delay-us: {e}"))?,
                "kill" => {
                    let (step, node) = value
                        .split_once(':')
                        .ok_or_else(|| format!("kill: expected STEP:NODE, got '{value}'"))?;
                    let step: usize = step.parse().map_err(|e| format!("kill step: {e}"))?;
                    let node: NodeId = node.parse().map_err(|e| format!("kill node: {e}"))?;
                    plan.worker.insert((step, node), WorkerFaultKind::Kill);
                }
                "stall" => {
                    let mut it = value.split(':');
                    let step: usize = it
                        .next()
                        .ok_or("stall: missing step")?
                        .parse()
                        .map_err(|e| format!("stall step: {e}"))?;
                    let node: NodeId = it
                        .next()
                        .ok_or("stall: missing node")?
                        .parse()
                        .map_err(|e| format!("stall node: {e}"))?;
                    let us: u64 = it
                        .next()
                        .ok_or("stall: missing micros")?
                        .parse()
                        .map_err(|e| format!("stall micros: {e}"))?;
                    plan.worker
                        .insert((step, node), WorkerFaultKind::StallMicros(us));
                }
                other => {
                    return Err(format!(
                        "unknown fault key '{other}' \
                         (known: seed, drop, corrupt, truncate, duplicate, delay, delay-us, kill, stall)"
                    ))
                }
            }
        }
        if delay_rate > 0.0 {
            plan.rates.delay = delay_rate;
            plan.rates.delay_micros = delay_us;
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        assert!(p.message_faults(3, 1, 2, 0).is_empty());
        assert!(p.worker_fault(3, 1).is_none());
        assert!(!FaultPlan::default().with_drop_rate(0.5).is_empty());
        assert!(!FaultPlan::default()
            .with_worker_fault(0, 0, WorkerFaultKind::Kill)
            .is_empty());
    }

    #[test]
    fn explicit_faults_hit_exact_coordinates() {
        let p = FaultPlan::default()
            .with_message_fault(2, 4, 5, 0, FaultKind::Drop)
            .with_message_fault(2, 4, 5, 1, FaultKind::CorruptByte)
            .with_worker_fault(3, 9, WorkerFaultKind::Kill);
        assert_eq!(p.message_faults(2, 4, 5, 0), vec![FaultKind::Drop]);
        assert_eq!(p.message_faults(2, 4, 5, 1), vec![FaultKind::CorruptByte]);
        assert!(p.message_faults(2, 4, 5, 2).is_empty());
        assert!(p.message_faults(2, 5, 4, 0).is_empty());
        assert!(p.message_faults(1, 4, 5, 0).is_empty());
        assert_eq!(p.worker_fault(3, 9), Some(WorkerFaultKind::Kill));
        assert_eq!(p.worker_fault(3, 8), None);
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::seeded(7).with_drop_rate(0.3);
        let b = FaultPlan::seeded(7).with_drop_rate(0.3);
        let c = FaultPlan::seeded(8).with_drop_rate(0.3);
        let sample = |p: &FaultPlan| -> Vec<bool> {
            let mut v = Vec::new();
            for step in 0..6 {
                for src in 0..8u32 {
                    for dst in 0..8u32 {
                        v.push(!p.message_faults(step, src, dst, 0).is_empty());
                    }
                }
            }
            v
        };
        assert_eq!(sample(&a), sample(&b), "same seed, same faults");
        assert_ne!(sample(&a), sample(&c), "different seed, different faults");
        let hits = sample(&a).iter().filter(|&&x| x).count();
        // 384 trials at rate 0.3: expect ~115, demand a sane band.
        assert!((50..200).contains(&hits), "hit count {hits} implausible");
    }

    #[test]
    fn rates_do_not_apply_to_resends() {
        let p = FaultPlan::seeded(1).with_drop_rate(1.0);
        assert_eq!(p.message_faults(0, 0, 1, 0), vec![FaultKind::Drop]);
        assert!(p.message_faults(0, 0, 1, 1).is_empty());
    }

    #[test]
    fn corrupt_offset_is_in_range_and_deterministic() {
        let p = FaultPlan::seeded(3);
        for len in [1usize, 2, 12, 100] {
            let off = p.corrupt_offset(5, 1, 2, len);
            assert!(off < len);
            assert_eq!(off, p.corrupt_offset(5, 1, 2, len));
        }
        assert_eq!(p.corrupt_offset(0, 0, 0, 0), 0);
    }

    #[test]
    fn parse_roundtrips_rates_and_pinned_faults() {
        let p = FaultPlan::parse("drop=0.01, corrupt=0.5,seed=42,delay=0.2,delay-us=300").unwrap();
        assert_eq!(p.seed(), 42);
        assert_eq!(p.rates.drop, 0.01);
        assert_eq!(p.rates.corrupt, 0.5);
        assert_eq!(p.rates.delay, 0.2);
        assert_eq!(p.rates.delay_micros, 300);

        let p = FaultPlan::parse("kill=3:7,stall=1:2:500").unwrap();
        assert_eq!(p.worker_fault(3, 7), Some(WorkerFaultKind::Kill));
        assert_eq!(
            p.worker_fault(1, 2),
            Some(WorkerFaultKind::StallMicros(500))
        );

        assert!(FaultPlan::parse("drop=2.0").is_err());
        assert!(FaultPlan::parse("bogus=1").is_err());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("kill=x").is_err());
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn kills_lists_only_pinned_kills_sorted() {
        let p = FaultPlan::seeded(1)
            .with_drop_rate(1.0)
            .with_worker_fault(5, 2, WorkerFaultKind::Kill)
            .with_worker_fault(1, 9, WorkerFaultKind::Kill)
            .with_worker_fault(2, 4, WorkerFaultKind::StallMicros(10));
        assert_eq!(p.kills(), vec![(1, 9), (5, 2)]);
        assert!(FaultPlan::default().kills().is_empty());
    }

    #[test]
    fn fault_kinds_display() {
        assert_eq!(FaultKind::Drop.to_string(), "drop");
        assert_eq!(FaultKind::DelayMicros(50).to_string(), "delay(50us)");
        let ev = FaultEvent {
            step: 2,
            src: 1,
            dst: 3,
            attempt: 0,
            kind: FaultEventKind::Message(FaultKind::Truncate),
        };
        assert_eq!(ev.to_string(), "step 2 1->3 attempt 0: truncate");
        let kill = FaultEvent {
            step: 4,
            src: 6,
            dst: 6,
            attempt: 0,
            kind: FaultEventKind::Worker(WorkerFaultKind::Kill),
        };
        assert_eq!(kill.to_string(), "step 4 node 6: killed");
    }
}
