//! Retry/backoff policy, recovery accounting, and failure description.
//!
//! The runtime's failure model has three tiers:
//!
//! 1. **detected** — CRC mismatches, truncated frames, stale sequence
//!    numbers, duplicates: caught by the wire layer, never delivered;
//! 2. **recovered** — anything detected (plus outright drops and
//!    over-deadline delays, caught by the per-step receive deadline) is
//!    healed by bounded retry: the receiver NACKs by pulling the pristine
//!    frame the sender retained for the step and re-validating, with
//!    exponential backoff between attempts;
//! 3. **aborted** — a killed worker or an exhausted retry budget cannot
//!    be healed; the run sets a shared abort flag, every worker falls
//!    through its remaining barriers doing no work (so nothing deadlocks
//!    and no thread leaks), and the caller gets a typed
//!    [`RuntimeError`](crate::RuntimeError) naming the faulty node,
//!    phase, and step plus the partial report.
//!
//! Everything here is bookkeeping; the mechanics live in
//! [`runtime`](crate::runtime).

use std::time::Duration;

use torus_topology::NodeId;

use crate::fault::FaultEvent;

/// Bounded retry/backoff parameters for the per-step receive loop.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct RetryPolicy {
    /// How long a scheduled receive waits on the inbox before declaring
    /// the transmission lost and starting recovery.
    pub deadline: Duration,
    /// Recovery attempts after the first failed wait; exceeding this is
    /// unrecoverable and aborts the run.
    pub max_retries: u32,
    /// Base backoff between attempts; attempt `k` waits
    /// `backoff * 2^(k-1)` (capped at [`deadline`](Self::deadline)).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            // Generous: a fault-free run should never trip a deadline
            // even on an oversubscribed CI machine.
            deadline: Duration::from_millis(500),
            max_retries: 4,
            backoff: Duration::from_micros(500),
        }
    }
}

impl RetryPolicy {
    /// Sets the receive deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }

    /// Sets the base backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }

    /// The wait before attempt `attempt` (1-based for retries):
    /// exponential in the base backoff, never beyond the deadline.
    pub fn backoff_for(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(16);
        let wait = self.backoff.saturating_mul(1u32 << shift);
        wait.min(self.deadline)
    }
}

/// Fault, integrity, and recovery counters for one run (or one worker;
/// they merge additively). All zero on a clean run — asserted by the
/// zero-fault regression tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct RecoveryStats {
    /// Injected frame drops.
    pub injected_drops: u64,
    /// Injected single-byte corruptions.
    pub injected_corruptions: u64,
    /// Injected truncations.
    pub injected_truncations: u64,
    /// Injected duplicate deliveries.
    pub injected_duplicates: u64,
    /// Injected delivery delays.
    pub injected_delays: u64,
    /// Injected worker stalls.
    pub injected_stalls: u64,
    /// Injected worker kills.
    pub injected_kills: u64,
    /// Frames rejected by the CRC32 integrity check.
    pub crc_failures: u64,
    /// Frames rejected by framing checks (truncation/trailing bytes).
    pub decode_failures: u64,
    /// Receive deadlines that expired.
    pub timeouts: u64,
    /// Recovery attempts entered (NACK cycles).
    pub retries: u64,
    /// Resends served from the sender's retained send buffer.
    pub resends: u64,
    /// Stale or duplicated frames discarded by sequence check.
    pub stale_discarded: u64,
    /// Scheduled receives that needed recovery and got their frame.
    pub recovered: u64,
}

impl RecoveryStats {
    /// Adds `other` into `self` (workers merge into the run total).
    pub fn merge(&mut self, other: &RecoveryStats) {
        self.injected_drops += other.injected_drops;
        self.injected_corruptions += other.injected_corruptions;
        self.injected_truncations += other.injected_truncations;
        self.injected_duplicates += other.injected_duplicates;
        self.injected_delays += other.injected_delays;
        self.injected_stalls += other.injected_stalls;
        self.injected_kills += other.injected_kills;
        self.crc_failures += other.crc_failures;
        self.decode_failures += other.decode_failures;
        self.timeouts += other.timeouts;
        self.retries += other.retries;
        self.resends += other.resends;
        self.stale_discarded += other.stale_discarded;
        self.recovered += other.recovered;
    }

    /// Total faults injected on the wire or into workers.
    pub fn total_injected(&self) -> u64 {
        self.injected_drops
            + self.injected_corruptions
            + self.injected_truncations
            + self.injected_duplicates
            + self.injected_delays
            + self.injected_stalls
            + self.injected_kills
    }

    /// True if nothing fired: no injections, no detections, no recovery.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

/// Why a node could not continue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum FailureReason {
    /// The retry budget was exhausted waiting for a frame from `src`.
    RetryExhausted {
        /// The peer whose frame never validated.
        src: NodeId,
    },
    /// A frame from `src` failed its integrity checks in a context where
    /// no retry was possible (the fault-free fast path has no retained
    /// resend copy to recover from). Names the exact wire error so the
    /// abort distinguishes "never arrived" from "arrived damaged".
    Integrity {
        /// The peer whose frame failed to validate.
        src: NodeId,
        /// The framing or checksum error the decoder reported.
        error: crate::message::WireError,
    },
    /// The worker hosting `node` was killed by the fault plan.
    WorkerKilled {
        /// The canonical node whose worker was killed.
        node: NodeId,
    },
    /// A node was quarantined by degraded-mode execution: the repaired
    /// schedule routes around it and the run completes for survivors.
    NodeDead {
        /// The quarantined canonical node.
        node: NodeId,
    },
    /// A channel endpoint disappeared mid-run.
    ChannelClosed,
    /// The run was cancelled from outside via a
    /// [`CancelToken`](crate::CancelToken); workers stopped cooperatively
    /// at the next step boundary.
    Cancelled,
    /// The run exceeded its externally imposed wall-clock deadline and
    /// was stopped via a [`CancelToken`](crate::CancelToken).
    DeadlineExceeded,
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::RetryExhausted { src } => {
                write!(f, "retry budget exhausted waiting on node {src}")
            }
            FailureReason::Integrity { src, error } => {
                write!(f, "frame from node {src} failed integrity check: {error}")
            }
            FailureReason::WorkerKilled { node } => write!(f, "worker for node {node} killed"),
            FailureReason::NodeDead { node } => write!(f, "node {node} quarantined"),
            FailureReason::ChannelClosed => write!(f, "channel closed"),
            FailureReason::Cancelled => write!(f, "run cancelled"),
            FailureReason::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

/// The first unrecoverable failure of a run: which node, where in the
/// schedule, and why. Carried by the partial report and by
/// [`RuntimeError::Aborted`](crate::RuntimeError::Aborted).
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct NodeFailure {
    /// The canonical node that failed (for kills: the faulted node).
    pub node: NodeId,
    /// Phase label (e.g. `"phase 2"`) the failure occurred in.
    pub phase: String,
    /// 1-based step within the phase.
    pub step: usize,
    /// Global step index across all phases.
    pub global_step: usize,
    /// Why the node failed.
    pub reason: FailureReason,
}

impl std::fmt::Display for NodeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "node {} failed in {} step {} (global step {}): {}",
            self.node, self.phase, self.step, self.global_step, self.reason
        )
    }
}

/// Merges per-worker fault-event logs into one deterministic order
/// (by step, then sender, then receiver, then attempt) so two runs with
/// the same seed produce byte-identical event lists regardless of thread
/// interleaving.
pub fn merge_events(per_worker: Vec<Vec<FaultEvent>>) -> Vec<FaultEvent> {
    let mut all: Vec<FaultEvent> = per_worker.into_iter().flatten().collect();
    all.sort_by_key(|e| (e.step, e.src, e.dst, e.attempt));
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEventKind, FaultKind};

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy::default()
            .with_backoff(Duration::from_millis(1))
            .with_deadline(Duration::from_millis(6));
        assert_eq!(p.backoff_for(1), Duration::from_millis(1));
        assert_eq!(p.backoff_for(2), Duration::from_millis(2));
        assert_eq!(p.backoff_for(3), Duration::from_millis(4));
        assert_eq!(p.backoff_for(4), Duration::from_millis(6)); // capped
        assert_eq!(p.backoff_for(40), Duration::from_millis(6)); // shift clamped
    }

    #[test]
    fn stats_merge_additively() {
        let mut a = RecoveryStats {
            injected_drops: 1,
            retries: 2,
            ..Default::default()
        };
        let b = RecoveryStats {
            injected_drops: 3,
            crc_failures: 5,
            recovered: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.injected_drops, 4);
        assert_eq!(a.retries, 2);
        assert_eq!(a.crc_failures, 5);
        assert_eq!(a.total_injected(), 4);
        assert!(!a.is_clean());
        assert!(RecoveryStats::default().is_clean());
    }

    #[test]
    fn failure_displays_context() {
        let f = NodeFailure {
            node: 12,
            phase: "phase 3".into(),
            step: 2,
            global_step: 7,
            reason: FailureReason::RetryExhausted { src: 4 },
        };
        let s = f.to_string();
        assert!(s.contains("node 12"));
        assert!(s.contains("phase 3"));
        assert!(s.contains("step 2"));
        assert!(s.contains("global step 7"));
        assert!(s.contains("node 4"));
    }

    #[test]
    fn integrity_failure_names_peer_and_wire_error() {
        let reason = FailureReason::Integrity {
            src: 7,
            error: crate::message::WireError::Crc {
                stored: 0xDEAD_BEEF,
                computed: 0x0BAD_F00D,
            },
        };
        let s = reason.to_string();
        assert!(s.contains("node 7"));
        assert!(s.contains("integrity"));
        assert!(s.contains("crc mismatch"));
        assert_ne!(
            reason,
            FailureReason::RetryExhausted { src: 7 },
            "integrity failures are not retry exhaustion"
        );
    }

    #[test]
    fn kill_and_quarantine_reasons_name_the_node() {
        assert_eq!(
            FailureReason::WorkerKilled { node: 9 }.to_string(),
            "worker for node 9 killed"
        );
        assert_eq!(
            FailureReason::NodeDead { node: 3 }.to_string(),
            "node 3 quarantined"
        );
        assert_ne!(
            FailureReason::WorkerKilled { node: 3 },
            FailureReason::NodeDead { node: 3 }
        );
    }

    #[test]
    fn events_merge_deterministically() {
        let ev = |step, src, dst| FaultEvent {
            step,
            src,
            dst,
            attempt: 0,
            kind: FaultEventKind::Message(FaultKind::Drop),
        };
        let merged = merge_events(vec![
            vec![ev(3, 0, 1), ev(1, 2, 3)],
            vec![ev(1, 0, 2), ev(0, 5, 5)],
        ]);
        let keys: Vec<(usize, u32, u32)> = merged.iter().map(|e| (e.step, e.src, e.dst)).collect();
        assert_eq!(keys, vec![(0, 5, 5), (1, 0, 2), (1, 2, 3), (3, 0, 1)]);
    }
}
