//! Byte-real collective execution: the [`CollectivePlan`] send manifests
//! from `collective-plan`, run over the same worker/channel/fault
//! machinery as the all-to-all [`Runtime`](crate::Runtime).
//!
//! # Execution model
//!
//! Identical to the all-to-all runtime's: nodes are multiplexed onto
//! worker threads in contiguous chunks, every node owns an unbounded
//! inbox, and each plan step runs as assemble → transport → two-barrier
//! rendezvous with the driving thread. The differences are the step
//! source (an explicit [`CollectivePlan`] manifest instead of the
//! per-phase selection rules) and the buffer model: each node holds at
//! most one [`Bytes`] block per key, and a **combining receive** —
//! the one new primitive reduce/allreduce need — folds an incoming
//! block into the resident one elementwise ([`combine`]) instead of
//! appending it.
//!
//! Determinism of the reduction does not depend on the worker count:
//! the plan delivers at most one frame per node per step, steps are
//! barrier-ordered, and the fold always runs resident-first, so the
//! fold order is fully schedule-determined and a threaded run is
//! bit-identical to the serial replay
//! ([`CollectivePlan::reference_finals`]) — f32 rounding included.
//! Post-run verification exploits exactly that: final holdings must
//! match the reference replay byte-for-byte, and `u64` reductions are
//! additionally cross-checked against the order-independent direct
//! fold ([`CollectivePlan::direct_reduction`]).
//!
//! # Fault tolerance
//!
//! [`FaultPlan`] injection, retained-frame recovery, retry budgets,
//! worker kills/stalls, and [`CancelToken`] cancellation all work as in
//! the all-to-all runtime (same wire format, same sequence/CRC checks,
//! same deadline + bounded-retry receive). Combining receives stay
//! exactly-once under recovery: a duplicated or resent frame carries
//! the step's sequence number, and a receiver folds exactly one valid
//! frame per step — stale frames are drained and discarded by the next
//! step's receive. [`OnFailure::Degrade`] is rejected up front: there
//! is no repair story for a half-folded reduction.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use alltoall_core::Block;
use bytes::Bytes;
use collective_plan::{combine, CollectiveOp, CollectivePlan, Dtype, PlanError, ReduceOp};
use cost_model::{CompletionTime, CostCounts};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use crossbeam::thread as cb_thread;
use torus_sim::{StepStat, Trace};
use torus_topology::NodeId;

use crate::cancel::{CancelKind, CancelToken};
use crate::degrade::OnFailure;
use crate::fault::{FaultEvent, FaultEventKind, FaultKind, FaultPlan, WorkerFaultKind};
use crate::message::{
    decode_gathered, decode_message, encode_gathered, encode_message, WireError, WireFrame,
    BLOCK_HEADER_BYTES, MESSAGE_HEADER_BYTES,
};
use crate::payload::pattern_payload;
use crate::pool::{FramePool, PoolBank};
use crate::recovery::{merge_events, FailureReason, NodeFailure, RecoveryStats, RetryPolicy};
use crate::report::{PhaseReport, RuntimeReport};
use crate::runtime::{corrupt_frame, lk, truncate_frame, RuntimeConfig};
use crate::workers::WorkerPool;
use crate::RuntimeError;

/// A reusable byte-moving executor for one collective plan.
///
/// Construction validates the plan against the configuration (block
/// size vs reduction lanes, failure policy); every run then seeds real
/// payloads, executes the manifest over worker threads, and verifies
/// the result against the serial reference replay.
pub struct CollectiveRuntime {
    plan: Arc<CollectivePlan>,
    config: RuntimeConfig,
}

/// Per-worker, per-global-step measurement.
#[derive(Clone, Copy, Default)]
struct StepSide {
    messages: u64,
    blocks: u64,
    max_blocks: u64,
    wire_bytes: u64,
    retries: u64,
}

/// Per-worker, per-phase measurement. Collectives have no inter-phase
/// rearrangement, so only the send/receive columns exist.
#[derive(Clone, Copy, Default)]
struct PhaseSide {
    assembly: Duration,
    transport: Duration,
    wire_bytes: u64,
    bytes_copied: u64,
    allocations: u64,
    messages: u64,
}

/// Everything one worker measured, returned at join.
struct WorkerStats {
    phase: Vec<PhaseSide>,
    steps: Vec<StepSide>,
    peak_bytes: u64,
    faults: RecoveryStats,
    events: Vec<FaultEvent>,
}

/// The per-run state every worker task shares (the collective analogue
/// of the all-to-all runtime's `RunShared`; same ownership discipline:
/// born and dead with one run, `'static` so pool threads can hold it).
struct CollShared {
    plan: Arc<CollectivePlan>,
    faults: FaultPlan,
    retry: RetryPolicy,
    /// The combining fold, when the op reduces.
    fold: Option<(ReduceOp, Dtype)>,
    /// `send_idx[g][node]`: index into `plan.steps()[g].sends`, if the
    /// node sends in global step `g`.
    send_idx: Vec<Vec<Option<u32>>>,
    /// `phase_of[g]`: which phase global step `g` belongs to.
    phase_of: Vec<usize>,
    /// Failure context: global step -> (phase label, 1-based step).
    step_ctx: Vec<(String, usize)>,
    senders: Vec<Sender<WireFrame>>,
    /// Per-destination retained resend frame for the current step.
    retained: Vec<Mutex<Option<Bytes>>>,
    abort: AtomicBool,
    cancel: Option<CancelToken>,
    failure_slot: Mutex<Option<NodeFailure>>,
    barrier: Barrier,
    /// Final per-node key stores, collected at worker exit.
    finals: Vec<Mutex<Vec<Option<Bytes>>>>,
    total_steps: usize,
}

impl CollShared {
    /// Records the first unrecoverable failure and raises the abort flag.
    fn fail(&self, node: NodeId, g: usize, reason: FailureReason) {
        let mut slot = lk(&self.failure_slot);
        if slot.is_none() {
            let (phase, step) = self.step_ctx[g].clone();
            *slot = Some(NodeFailure {
                node,
                phase,
                step,
                global_step: g,
                reason,
            });
        }
        self.abort.store(true, Ordering::SeqCst);
    }

    /// Polls the cancellation token and folds a trigger into the run's
    /// first-failure-wins abort. Returns `true` when the run is (now)
    /// aborting for any reason.
    fn observe_cancel(&self, node: NodeId, g: usize) -> bool {
        if let Some(token) = &self.cancel {
            if let Some(kind) = token.kind() {
                let reason = match kind {
                    CancelKind::Cancelled => FailureReason::Cancelled,
                    CancelKind::DeadlineExceeded => FailureReason::DeadlineExceeded,
                };
                self.fail(node, g, reason);
                return true;
            }
        }
        self.abort.load(Ordering::Acquire)
    }

    /// `recv_timeout(wait)`, sliced into ~20 ms chunks when a
    /// cancellation token is installed (see the all-to-all runtime's
    /// `recv_sliced` — same contract).
    fn recv_sliced(
        &self,
        rx: &Receiver<WireFrame>,
        wait: Duration,
    ) -> Result<WireFrame, RecvTimeoutError> {
        let Some(token) = &self.cancel else {
            return rx.recv_timeout(wait);
        };
        let deadline = Instant::now() + wait;
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            match rx.recv_timeout(left.min(Duration::from_millis(20))) {
                Err(RecvTimeoutError::Timeout) => {
                    if token.is_triggered() || self.abort.load(Ordering::Acquire) {
                        return Err(RecvTimeoutError::Timeout);
                    }
                }
                other => return other,
            }
        }
    }

    /// The deadline + bounded-retry receive loop (fault plans only) —
    /// a port of the all-to-all runtime's recovery receive: deadline
    /// waits, retained-frame NACK/retransmission with backoff, resend
    /// faults pinned to `attempt >= 1`, stale-sequence draining, and
    /// retry-budget exhaustion. Returns the step's blocks, or `None`
    /// if the run aborted.
    #[allow(clippy::too_many_arguments)]
    fn recover_recv(
        &self,
        rx: &Receiver<WireFrame>,
        retained: &Mutex<Option<Bytes>>,
        me: NodeId,
        src: NodeId,
        g: usize,
        counters: &mut RecoveryStats,
        events: &mut Vec<FaultEvent>,
        step_retries: &mut u64,
    ) -> Option<Vec<Block<Bytes>>> {
        let faults = &self.faults;
        let policy = self.retry;
        // `cycles` counts *failed* recovery cycles; `fetches` numbers
        // retained-buffer fetches 1-based — the "attempt" coordinate
        // resend faults are pinned to.
        let mut cycles = 0u32;
        let mut fetches = 0u32;
        let mut needed_recovery = false;
        let blocks = loop {
            if self.observe_cancel(me, g) {
                break None;
            }
            if cycles > policy.max_retries {
                self.fail(me, g, FailureReason::RetryExhausted { src });
                break None;
            }
            let wait = if cycles == 0 {
                policy.deadline
            } else {
                policy.backoff_for(cycles)
            };
            let mut via_resend = false;
            let raw = match self.recv_sliced(rx, wait) {
                Ok(frame) => Some(frame.to_bytes()),
                Err(RecvTimeoutError::Disconnected) => {
                    self.fail(me, g, FailureReason::ChannelClosed);
                    break None;
                }
                Err(RecvTimeoutError::Timeout) => {
                    counters.timeouts += 1;
                    needed_recovery = true;
                    via_resend = true;
                    let frame = lk(retained).clone();
                    match frame {
                        // The sender may not have retained this step's
                        // frame yet (stalled peer); retry after backoff.
                        None => None,
                        Some(mut frame) => {
                            fetches += 1;
                            counters.resends += 1;
                            // The retransmission itself can be faulted.
                            let mut dropped = false;
                            for kind in faults.message_faults(g, src, me, fetches) {
                                events.push(FaultEvent {
                                    step: g,
                                    src,
                                    dst: me,
                                    attempt: fetches,
                                    kind: FaultEventKind::Message(kind),
                                });
                                match kind {
                                    FaultKind::Drop => {
                                        counters.injected_drops += 1;
                                        dropped = true;
                                    }
                                    FaultKind::DelayMicros(us) => {
                                        counters.injected_delays += 1;
                                        std::thread::sleep(Duration::from_micros(us));
                                    }
                                    FaultKind::Duplicate => {
                                        counters.injected_duplicates += 1;
                                    }
                                    FaultKind::CorruptByte => {
                                        counters.injected_corruptions += 1;
                                        frame = corrupt_frame(
                                            &frame,
                                            faults.corrupt_offset(g, src, me, frame.len()),
                                        );
                                    }
                                    FaultKind::Truncate => {
                                        counters.injected_truncations += 1;
                                        frame = truncate_frame(&frame);
                                    }
                                }
                            }
                            if dropped {
                                None
                            } else {
                                Some(frame)
                            }
                        }
                    }
                }
            };
            let Some(raw) = raw else {
                cycles += 1;
                counters.retries += 1;
                *step_retries += 1;
                continue;
            };
            match decode_message(&raw) {
                Ok((seq, blocks)) if seq as usize == g => break Some(blocks),
                Ok(_) => {
                    // Wrong sequence: a duplicate or straggler from an
                    // earlier step (drained free), or a stale retained
                    // frame from a dead sender (charged, or this could
                    // spin forever). Combining stays exactly-once
                    // because only the matching sequence is folded.
                    counters.stale_discarded += 1;
                    if via_resend {
                        cycles += 1;
                        counters.retries += 1;
                        *step_retries += 1;
                    }
                    continue;
                }
                Err(e) => {
                    match e {
                        WireError::Crc { .. } => counters.crc_failures += 1,
                        _ => counters.decode_failures += 1,
                    }
                    needed_recovery = true;
                    cycles += 1;
                    counters.retries += 1;
                    *step_retries += 1;
                    continue;
                }
            }
        };
        if blocks.is_some() && needed_recovery {
            counters.recovered += 1;
        }
        blocks
    }
}

/// One worker task: executes every plan step for its contiguous chunk
/// of nodes, returning its measurements and its (warm) frame pool.
fn worker_body(
    shared: &CollShared,
    base: usize,
    mut stores: Vec<Vec<Option<Bytes>>>,
    rxs: Vec<Receiver<WireFrame>>,
    mut pool: FramePool,
) -> (WorkerStats, FramePool) {
    let plan = &*shared.plan;
    let faults = &shared.faults;
    let no_faults = faults.is_empty();
    let senders = &shared.senders[..];
    let retained = &shared.retained[..];
    let barrier = &shared.barrier;

    let mut stats = WorkerStats {
        phase: vec![PhaseSide::default(); plan.phases().len()],
        steps: vec![StepSide::default(); shared.total_steps],
        peak_bytes: 0,
        faults: RecoveryStats::default(),
        events: Vec::new(),
    };
    let mut outgoing: Vec<Block<Bytes>> = Vec::new();
    let mut incoming: Vec<Block<Bytes>> = Vec::new();
    // A killed worker turns into a zombie: it does no work but keeps
    // crossing barriers so nothing deadlocks.
    let mut dead = false;
    for (g, step) in plan.steps().iter().enumerate() {
        if !no_faults && !dead {
            for li in 0..stores.len() {
                let node = (base + li) as NodeId;
                let Some(wf) = faults.worker_fault(g, node) else {
                    continue;
                };
                stats.events.push(FaultEvent {
                    step: g,
                    src: node,
                    dst: node,
                    attempt: 0,
                    kind: FaultEventKind::Worker(wf),
                });
                match wf {
                    WorkerFaultKind::Kill => {
                        stats.faults.injected_kills += 1;
                        shared.fail(node, g, FailureReason::WorkerKilled { node });
                        dead = true;
                    }
                    WorkerFaultKind::StallMicros(us) => {
                        stats.faults.injected_stalls += 1;
                        // Sleep in bounded slices, polling abort and
                        // cancellation, so an externally stopped run is
                        // not pinned for the stall's full duration.
                        let stall_until = Instant::now() + Duration::from_micros(us);
                        while !shared.observe_cancel(node, g) {
                            let left = stall_until.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                break;
                            }
                            std::thread::sleep(left.min(Duration::from_millis(1)));
                        }
                    }
                }
            }
        }
        let skip = dead || shared.observe_cancel(base as NodeId, g);
        if !skip {
            let pi = shared.phase_of[g];
            let pstats = &mut stats.phase[pi];
            let sstats = &mut stats.steps[g];

            // Assemble and send for every owned scheduled sender.
            for (li, store) in stores.iter_mut().enumerate() {
                let node = (base + li) as NodeId;
                let Some(si) = shared.send_idx[g][base + li] else {
                    continue;
                };
                let instr = &step.sends[si as usize];
                let dst = instr.dst;
                let t0 = Instant::now();
                outgoing.clear();
                for &key in &instr.keys {
                    // The plan's holdings simulation guarantees the
                    // sender holds every shipped key.
                    let slot = &mut store[key as usize];
                    let bytes = if instr.retain {
                        slot.clone()
                    } else {
                        slot.take()
                    }
                    .expect("validated plan: sender holds shipped key");
                    outgoing.push(Block::with_payload(key, dst, bytes));
                }
                let msg = if no_faults {
                    // Zero-copy: headers into a pooled buffer, payloads
                    // shared by handle.
                    let framing_len = MESSAGE_HEADER_BYTES + outgoing.len() * BLOCK_HEADER_BYTES;
                    let allocs = pool.allocations();
                    let frame = encode_gathered(
                        g as u32,
                        &outgoing,
                        pool.take_buf(framing_len),
                        pool.take_vec(),
                    );
                    pstats.allocations += pool.allocations() - allocs;
                    pstats.bytes_copied += framing_len as u64;
                    frame
                } else {
                    // Fault plans need mutable frame bytes and an
                    // immutable retained copy.
                    let bytes = encode_message(g as u32, &outgoing);
                    pstats.allocations += 1;
                    pstats.bytes_copied += bytes.len() as u64;
                    WireFrame::Contiguous(bytes)
                };
                let assembled = Instant::now();
                pstats.assembly += assembled - t0;
                sstats.messages += 1;
                sstats.blocks += outgoing.len() as u64;
                sstats.max_blocks = sstats.max_blocks.max(outgoing.len() as u64);
                sstats.wire_bytes += msg.wire_len() as u64;
                pstats.wire_bytes += msg.wire_len() as u64;
                pstats.messages += 1;
                if no_faults {
                    if senders[dst as usize].send(msg).is_err() {
                        shared.fail(node, g, FailureReason::ChannelClosed);
                    }
                } else {
                    let msg = msg.to_bytes();
                    // Retain the pristine frame for the receiver's
                    // recovery; then mutate what goes on the wire.
                    *lk(&retained[dst as usize]) = Some(msg.clone());
                    let mut deliver = vec![msg];
                    for kind in faults.message_faults(g, node, dst, 0) {
                        stats.events.push(FaultEvent {
                            step: g,
                            src: node,
                            dst,
                            attempt: 0,
                            kind: FaultEventKind::Message(kind),
                        });
                        match kind {
                            FaultKind::Drop => {
                                stats.faults.injected_drops += 1;
                                deliver.clear();
                            }
                            FaultKind::DelayMicros(us) => {
                                stats.faults.injected_delays += 1;
                                std::thread::sleep(Duration::from_micros(us));
                            }
                            FaultKind::Duplicate => {
                                stats.faults.injected_duplicates += 1;
                                if let Some(f) = deliver.first().cloned() {
                                    deliver.push(f);
                                }
                            }
                            FaultKind::CorruptByte => {
                                stats.faults.injected_corruptions += 1;
                                let off = faults.corrupt_offset(
                                    g,
                                    node,
                                    dst,
                                    deliver.first().map_or(0, Bytes::len),
                                );
                                deliver = deliver.iter().map(|f| corrupt_frame(f, off)).collect();
                            }
                            FaultKind::Truncate => {
                                stats.faults.injected_truncations += 1;
                                deliver = deliver.iter().map(truncate_frame).collect();
                            }
                        }
                    }
                    for f in deliver {
                        if senders[dst as usize]
                            .send(WireFrame::Contiguous(f))
                            .is_err()
                        {
                            shared.fail(node, g, FailureReason::ChannelClosed);
                            break;
                        }
                    }
                }
                pstats.transport += assembled.elapsed();
            }

            // Receive exactly the scheduled traffic; fold or insert.
            for (li, store) in stores.iter_mut().enumerate() {
                let me = (base + li) as NodeId;
                if let Some(src) = plan.expect_from(g)[base + li] {
                    let t0 = Instant::now();
                    incoming.clear();
                    let got = if no_faults {
                        // A scheduled frame is always sent, so a blocking
                        // receive cannot deadlock — but with a cancel
                        // token a peer may skip its sends, so poll.
                        let frame = if shared.cancel.is_none() {
                            match rxs[li].recv() {
                                Ok(frame) => Some(frame),
                                Err(_) => {
                                    shared.fail(me, g, FailureReason::ChannelClosed);
                                    None
                                }
                            }
                        } else {
                            loop {
                                match rxs[li].recv_timeout(Duration::from_millis(20)) {
                                    Ok(frame) => break Some(frame),
                                    Err(RecvTimeoutError::Timeout) => {
                                        if shared.observe_cancel(me, g) {
                                            break None;
                                        }
                                    }
                                    Err(RecvTimeoutError::Disconnected) => {
                                        shared.fail(me, g, FailureReason::ChannelClosed);
                                        break None;
                                    }
                                }
                            }
                        };
                        let received = Instant::now();
                        pstats.transport += received - t0;
                        match frame {
                            None => false,
                            Some(frame) => {
                                let decoded = match frame {
                                    WireFrame::Gathered {
                                        framing,
                                        mut payloads,
                                    } => {
                                        let r =
                                            decode_gathered(&framing, &mut payloads, &mut incoming);
                                        if r.is_ok() {
                                            pool.put_buf(framing);
                                            pool.put_vec(payloads);
                                        }
                                        r.map(|_| ())
                                    }
                                    WireFrame::Contiguous(raw) => decode_message(&raw)
                                        .map(|(_, mut blocks)| incoming.append(&mut blocks)),
                                };
                                match decoded {
                                    Ok(()) => {
                                        pstats.assembly += received.elapsed();
                                        true
                                    }
                                    Err(e) => {
                                        match e {
                                            WireError::Crc { .. } => stats.faults.crc_failures += 1,
                                            _ => stats.faults.decode_failures += 1,
                                        }
                                        shared.fail(
                                            me,
                                            g,
                                            FailureReason::Integrity { src, error: e },
                                        );
                                        false
                                    }
                                }
                            }
                        }
                    } else {
                        let blocks = shared.recover_recv(
                            &rxs[li],
                            &retained[base + li],
                            me,
                            src,
                            g,
                            &mut stats.faults,
                            &mut stats.events,
                            &mut sstats.retries,
                        );
                        let received = Instant::now();
                        pstats.transport += received - t0;
                        match blocks {
                            Some(mut blocks) => {
                                incoming.append(&mut blocks);
                                pstats.assembly += received.elapsed();
                                true
                            }
                            None => false,
                        }
                    };
                    if got {
                        for b in incoming.drain(..) {
                            let key = b.src as usize;
                            if key >= store.len() {
                                // A corrupt header that survived the CRC
                                // (astronomically unlikely); the final
                                // verification will name the gap.
                                continue;
                            }
                            match (&mut store[key], shared.fold) {
                                (Some(acc), Some((op, dtype))) => {
                                    // Combining receive: resident-first
                                    // fold, same order as the reference
                                    // replay.
                                    let mut v = acc.to_vec();
                                    combine(dtype, op, &mut v, &b.payload);
                                    *acc = Bytes::from(v);
                                }
                                (slot, _) => *slot = Some(b.payload),
                            }
                        }
                    }
                }
                let mut resident: u64 = store.iter().flatten().map(|b| b.len() as u64).sum();
                if !no_faults {
                    resident += lk(&retained[base + li])
                        .as_ref()
                        .map_or(0, |f| f.len() as u64);
                }
                stats.peak_bytes = stats.peak_bytes.max(resident);
            }
        }
        barrier.wait(); // step traffic complete
        barrier.wait(); // released into the next step
    }
    for (li, store) in stores.iter_mut().enumerate() {
        *lk(&shared.finals[base + li]) = std::mem::take(store);
    }
    (stats, pool)
}

/// The driving thread's half of the run: mirror every barrier,
/// timestamping steps and phases. Crosses every barrier
/// unconditionally so it never hangs on an aborting run.
fn drive_barriers(shared: &CollShared) -> (Vec<Duration>, Vec<Duration>, Duration) {
    let t_run = Instant::now();
    let phases = shared.plan.phases();
    let mut phase_walls = Vec::with_capacity(phases.len());
    let mut step_walls = Vec::with_capacity(shared.total_steps);
    for (_, nsteps) in phases {
        let t_phase = Instant::now();
        for _ in 0..*nsteps {
            let t_step = Instant::now();
            shared.barrier.wait();
            step_walls.push(t_step.elapsed());
            shared.barrier.wait();
        }
        phase_walls.push(t_phase.elapsed());
    }
    (phase_walls, step_walls, t_run.elapsed())
}

/// How a run executes its worker tasks (mirrors the all-to-all
/// runtime's backend split).
#[derive(Clone, Copy)]
enum ExecBackend<'p> {
    Spawn,
    Pool(&'p WorkerPool, Option<&'p PoolBank>),
}

impl CollectiveRuntime {
    /// Lowers `op` for `shape` and validates it against `config`.
    pub fn new(
        shape: &torus_topology::TorusShape,
        op: CollectiveOp,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        let plan = Arc::new(CollectivePlan::new(shape, op)?);
        Self::from_plan(plan, config)
    }

    /// Wraps a *shared* plan (a plan-cache entry serving many jobs) —
    /// the collective analogue of [`Runtime::from_shared`].
    ///
    /// [`Runtime::from_shared`]: crate::Runtime::from_shared
    pub fn from_plan(
        plan: Arc<CollectivePlan>,
        config: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        plan.check_block_bytes(config.block_bytes)?;
        if matches!(config.on_failure, OnFailure::Degrade) {
            return Err(PlanError::Unsupported(
                "degraded mode is not supported for collectives (no repair story \
                 for a partially folded reduction)"
                    .into(),
            )
            .into());
        }
        Ok(Self { plan, config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// The plan being executed.
    pub fn plan(&self) -> &CollectivePlan {
        &self.plan
    }

    /// The worker count a run will use on the spawn path; pooled runs
    /// additionally clamp to the pool's size.
    pub fn effective_workers(&self) -> usize {
        let nn = self.plan.shape().num_nodes() as usize;
        self.config
            .workers
            .unwrap_or_else(torus_sim::default_threads)
            .clamp(1, nn)
    }

    /// Runs the collective with deterministic pattern payloads and
    /// verifies against the reference replay. Returns the report plus
    /// every node's final `(key, payload)` holdings, keys ascending.
    #[allow(clippy::type_complexity)]
    pub fn run(&self) -> Result<(RuntimeReport, Vec<Vec<(u32, Bytes)>>), RuntimeError> {
        let m = self.config.block_bytes;
        self.run_impl(ExecBackend::Spawn, |id| pattern_payload(id, id, m))
    }

    /// Like [`run`](Self::run) with caller-provided seed payloads:
    /// `payload(id)` produces the block for data identity `id` (see
    /// [`CollectivePlan::seed_id`]) and must return exactly
    /// [`block_bytes`](RuntimeConfig::block_bytes) bytes.
    #[allow(clippy::type_complexity)]
    pub fn run_with_payloads<F>(
        &self,
        payload: F,
    ) -> Result<(RuntimeReport, Vec<Vec<(u32, Bytes)>>), RuntimeError>
    where
        F: FnMut(u32) -> Bytes,
    {
        self.run_impl(ExecBackend::Spawn, payload)
    }

    /// The service entry point: executes on a persistent [`WorkerPool`]
    /// with caller-provided payloads, optionally recycling warm frame
    /// pools through `bank` — the collective analogue of
    /// [`Runtime::run_pooled`](crate::Runtime::run_pooled).
    #[allow(clippy::type_complexity)]
    pub fn run_pooled<F>(
        &self,
        pool: &WorkerPool,
        bank: Option<&PoolBank>,
        payload: F,
    ) -> Result<(RuntimeReport, Vec<Vec<(u32, Bytes)>>), RuntimeError>
    where
        F: FnMut(u32) -> Bytes,
    {
        self.run_impl(ExecBackend::Pool(pool, bank), payload)
    }

    #[allow(clippy::type_complexity)]
    fn run_impl<F>(
        &self,
        backend: ExecBackend<'_>,
        mut payload: F,
    ) -> Result<(RuntimeReport, Vec<Vec<(u32, Bytes)>>), RuntimeError>
    where
        F: FnMut(u32) -> Bytes,
    {
        let plan = &self.plan;
        let shape = plan.shape();
        let nn = shape.num_nodes() as usize;
        let block_bytes = self.config.block_bytes;
        let workers = match backend {
            ExecBackend::Spawn => self.effective_workers(),
            ExecBackend::Pool(pool, _) => self.effective_workers().min(pool.size()),
        };

        // Seed stores; keep every identity's bytes for the reference
        // replay (the closure runs once per identity).
        let mut seeds: BTreeMap<u32, Bytes> = BTreeMap::new();
        let mut stores: Vec<Vec<Option<Bytes>>> = Vec::with_capacity(nn);
        for u in 0..nn as u32 {
            let mut store: Vec<Option<Bytes>> = vec![None; nn];
            for &k in plan.initial_keys(u) {
                let id = plan.seed_id(u, k);
                let bytes = seeds.entry(id).or_insert_with(|| payload(id)).clone();
                if bytes.len() != block_bytes {
                    return Err(RuntimeError::Verification(format!(
                        "seed payload for identity {id} is {} bytes, expected {block_bytes}",
                        bytes.len()
                    )));
                }
                store[k as usize] = Some(bytes);
            }
            stores.push(store);
        }

        // The serial ground truth, computed up front: the run is judged
        // against it bit-for-bit afterwards.
        let reference = plan.reference_finals(block_bytes, |id| seeds[&id].to_vec())?;
        // For u64 lanes the ring fold must also equal the
        // order-independent direct fold — a reference-of-the-reference
        // cross-check that catches a mis-lowered reduction schedule.
        if matches!(plan.op().reduce(), Some((_, Dtype::U64))) {
            let direct = plan
                .direct_reduction(block_bytes, |id| seeds[&id].to_vec())
                .expect("reduce op has a direct fold");
            for (u, holdings) in reference.iter().enumerate() {
                for (key, bytes) in holdings {
                    if *key == 0 && bytes != &direct {
                        return Err(RuntimeError::Verification(format!(
                            "reference replay at node {u} disagrees with the \
                             order-independent direct reduction"
                        )));
                    }
                }
            }
        }

        // Static send/receive expectations and failure context.
        let total_steps = plan.num_steps();
        let mut send_idx: Vec<Vec<Option<u32>>> = vec![vec![None; nn]; total_steps];
        for (g, step) in plan.steps().iter().enumerate() {
            for (si, s) in step.sends.iter().enumerate() {
                send_idx[g][s.src as usize] = Some(si as u32);
            }
        }
        let mut phase_of: Vec<usize> = Vec::with_capacity(total_steps);
        let mut step_ctx: Vec<(String, usize)> = Vec::with_capacity(total_steps);
        for (pi, (label, nsteps)) in plan.phases().iter().enumerate() {
            for si in 0..*nsteps {
                phase_of.push(pi);
                step_ctx.push((label.clone(), si + 1));
            }
        }

        let mut senders = Vec::with_capacity(nn);
        let mut receivers = Vec::with_capacity(nn);
        for _ in 0..nn {
            let (tx, rx) = unbounded::<WireFrame>();
            senders.push(tx);
            receivers.push(rx);
        }
        let chunk = nn.div_ceil(workers);
        let n_chunks = nn.div_ceil(chunk);

        let shared = Arc::new(CollShared {
            plan: Arc::clone(plan),
            faults: self.config.faults.clone(),
            retry: self.config.retry,
            fold: plan.op().reduce(),
            send_idx,
            phase_of,
            step_ctx,
            senders,
            retained: (0..nn).map(|_| Mutex::new(None)).collect(),
            abort: AtomicBool::new(false),
            cancel: self.config.cancel.clone(),
            failure_slot: Mutex::new(None),
            barrier: Barrier::new(n_chunks + 1),
            finals: (0..nn).map(|_| Mutex::new(Vec::new())).collect(),
            total_steps,
        });

        let mut tasks: Vec<(usize, Vec<Vec<Option<Bytes>>>, Vec<Receiver<WireFrame>>)> = {
            let mut si = stores.into_iter();
            let mut ri = receivers.into_iter();
            let mut tasks = Vec::with_capacity(n_chunks);
            for ci in 0..n_chunks {
                let take = chunk.min(nn - ci * chunk);
                tasks.push((
                    ci * chunk,
                    si.by_ref().take(take).collect(),
                    ri.by_ref().take(take).collect(),
                ));
            }
            tasks
        };
        let mut stats: Vec<WorkerStats> = Vec::with_capacity(n_chunks);
        let mut panic_msg: Option<String> = None;
        let (phase_walls, step_walls, wall) = match backend {
            ExecBackend::Spawn => {
                let shared_ref = &shared;
                let joined = cb_thread::scope(|s| {
                    let mut handles = Vec::with_capacity(n_chunks);
                    for (base, stores, rxs) in tasks.drain(..) {
                        let shared = Arc::clone(shared_ref);
                        handles.push(s.spawn(move |_| {
                            worker_body(&shared, base, stores, rxs, FramePool::new())
                        }));
                    }
                    let walls = drive_barriers(shared_ref);
                    let mut outs = Vec::with_capacity(handles.len());
                    let mut panicked: Option<String> = None;
                    for h in handles {
                        match h.join() {
                            Ok(out) => outs.push(out),
                            Err(p) => {
                                let msg = p
                                    .downcast_ref::<&str>()
                                    .map(|s| (*s).to_string())
                                    .or_else(|| p.downcast_ref::<String>().cloned())
                                    .unwrap_or_else(|| "opaque panic payload".to_string());
                                panicked.get_or_insert(msg);
                            }
                        }
                    }
                    (outs, walls, panicked)
                });
                let (outs, walls, panicked) = match joined {
                    Ok(v) => v,
                    Err(_) => {
                        return Err(RuntimeError::WorkerPanicked(
                            "collective scope panicked".to_string(),
                        ))
                    }
                };
                stats.extend(outs.into_iter().map(|(ws, _pool)| ws));
                panic_msg = panicked;
                walls
            }
            ExecBackend::Pool(pool, bank) => {
                let mut gang = pool.gang(n_chunks);
                for (base, stores, rxs) in tasks.drain(..) {
                    let shared = Arc::clone(&shared);
                    let fp = bank.map(PoolBank::take).unwrap_or_default();
                    gang.spawn(move || worker_body(&shared, base, stores, rxs, fp));
                }
                let walls = drive_barriers(&shared);
                for result in gang.join() {
                    match result {
                        Ok((ws, fp)) => {
                            if let Some(bank) = bank {
                                bank.put(fp);
                            }
                            stats.push(ws);
                        }
                        Err(msg) => {
                            panic_msg.get_or_insert(msg);
                        }
                    }
                }
                walls
            }
        };
        if let Some(msg) = panic_msg {
            return Err(RuntimeError::WorkerPanicked(msg));
        }

        // Aggregate measurements into the standard report + trace.
        let mut trace = Trace::default();
        let mut phase_reports = Vec::with_capacity(plan.phases().len());
        let mut counts = CostCounts::default();
        let mut gbase = 0usize;
        for (pi, (label, nsteps)) in plan.phases().iter().enumerate() {
            trace.begin_phase(label);
            for si in 0..*nsteps {
                let g = gbase + si;
                let mut messages = 0u64;
                let mut blocks = 0u64;
                let mut max_blocks = 0u64;
                let mut retries = 0u64;
                for w in &stats {
                    messages += w.steps[g].messages;
                    blocks += w.steps[g].blocks;
                    max_blocks = max_blocks.max(w.steps[g].max_blocks);
                    retries += w.steps[g].retries;
                }
                let hops = plan.steps()[g].hops;
                trace.record_step(StepStat {
                    messages: messages as u32,
                    total_blocks: blocks,
                    max_blocks,
                    max_hops: hops,
                    retries,
                    time_us: step_walls[g].as_secs_f64() * 1e6,
                });
                counts.startup_steps += 1;
                counts.trans_blocks += max_blocks * u64::from(hops);
                counts.prop_hops += u64::from(hops);
            }
            gbase += *nsteps;

            let mut pr = PhaseReport {
                name: label.clone(),
                steps: *nsteps,
                wall: phase_walls[pi],
                ..Default::default()
            };
            for w in &stats {
                let side = &w.phase[pi];
                pr.assembly += side.assembly;
                pr.transport += side.transport;
                pr.wire_bytes += side.wire_bytes;
                pr.bytes_copied += side.bytes_copied;
                pr.allocations += side.allocations;
                pr.messages += side.messages;
            }
            phase_reports.push(pr);
        }

        let mut fault_totals = RecoveryStats::default();
        for w in &stats {
            fault_totals.merge(&w.faults);
        }
        let fault_events = merge_events(stats.iter().map(|w| w.events.clone()).collect());
        let failure_taken = lk(&shared.failure_slot).take();

        let params = self.config.params.with_block_bytes(block_bytes as u32);
        let mut report = RuntimeReport {
            dims: shape.dims().to_vec(),
            executed_dims: shape.dims().to_vec(),
            padded: false,
            nodes: shape.num_nodes(),
            block_bytes,
            workers,
            wall,
            wire_bytes: phase_reports.iter().map(|p| p.wire_bytes).sum(),
            rearranged_bytes: 0,
            bytes_copied: phase_reports.iter().map(|p| p.bytes_copied).sum(),
            allocations: phase_reports.iter().map(|p| p.allocations).sum(),
            peak_node_bytes: stats.iter().map(|w| w.peak_bytes).max().unwrap_or(0),
            messages: phase_reports.iter().map(|p| p.messages).sum(),
            phases: phase_reports,
            verified: false,
            faults: fault_totals,
            fault_events,
            failure: failure_taken.clone(),
            degraded: None,
            analytic: CompletionTime::from_counts(&counts, &params),
            trace,
        };

        if let Some(fi) = failure_taken {
            return Err(match fi.reason {
                FailureReason::ChannelClosed => RuntimeError::ChannelClosed {
                    node: fi.node,
                    phase: fi.phase,
                    step: fi.step,
                },
                _ => RuntimeError::Aborted {
                    failure: fi,
                    report: Box::new(report),
                },
            });
        }

        // Verify: every node's final holdings must match the op
        // contract AND equal the serial reference replay byte-for-byte.
        let mut deliveries: Vec<Vec<(u32, Bytes)>> = Vec::with_capacity(nn);
        for (u, want) in reference.iter().enumerate() {
            let store = std::mem::take(&mut *lk(&shared.finals[u]));
            let got: Vec<(u32, Bytes)> = store
                .into_iter()
                .enumerate()
                .filter_map(|(k, b)| b.map(|b| (k as u32, b)))
                .collect();
            if got.len() != want.len() || got.iter().zip(want).any(|((gk, _), (wk, _))| gk != wk) {
                let got_keys: Vec<u32> = got.iter().map(|(k, _)| *k).collect();
                let want_keys: Vec<u32> = want.iter().map(|(k, _)| *k).collect();
                return Err(RuntimeError::Verification(format!(
                    "node {u} finished holding keys {got_keys:?}, expected {want_keys:?}"
                )));
            }
            for ((k, bytes), (_, want_bytes)) in got.iter().zip(want) {
                if bytes.as_ref() != want_bytes.as_slice() {
                    return Err(RuntimeError::Verification(format!(
                        "node {u} key {k}: payload differs from the reference replay"
                    )));
                }
            }
            deliveries.push(got);
        }
        report.verified = true;
        Ok((report, deliveries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use collective_plan::JobOp;
    use torus_topology::TorusShape;

    #[test]
    fn broadcast_runs_byte_real() {
        let shape = TorusShape::new(&[4, 4]).unwrap();
        let rt = CollectiveRuntime::new(
            &shape,
            CollectiveOp::Broadcast { root: 3 },
            RuntimeConfig::default().with_workers(4),
        )
        .unwrap();
        let (report, deliveries) = rt.run().unwrap();
        assert!(report.verified);
        assert_eq!(report.nodes, 16);
        assert!(report.wire_bytes > 0);
        let want = pattern_payload(3, 3, 64);
        for d in &deliveries {
            assert_eq!(d.len(), 1);
            assert_eq!(d[0].0, 3);
            assert_eq!(d[0].1, want);
        }
    }

    #[test]
    fn degrade_policy_rejected() {
        let shape = TorusShape::new(&[4, 4]).unwrap();
        let err = CollectiveRuntime::new(
            &shape,
            CollectiveOp::Allgather,
            RuntimeConfig::default().with_on_failure(OnFailure::Degrade),
        )
        .err()
        .unwrap();
        assert!(matches!(err, RuntimeError::Plan(PlanError::Unsupported(_))));
    }

    #[test]
    fn lane_mismatch_rejected_at_construction() {
        let shape = TorusShape::new(&[4, 4]).unwrap();
        let err = CollectiveRuntime::new(
            &shape,
            CollectiveOp::Allreduce {
                op: ReduceOp::Sum,
                dtype: Dtype::U64,
            },
            RuntimeConfig::default().with_block_bytes(12),
        )
        .err()
        .unwrap();
        assert!(matches!(
            err,
            RuntimeError::Plan(PlanError::LaneMismatch { .. })
        ));
    }

    #[test]
    fn job_op_reexport_is_usable() {
        assert_eq!(JobOp::Alltoall.name(), "alltoall");
    }
}
