//! A persistent, reusable worker-thread pool with gang scheduling.
//!
//! [`Runtime::run`](crate::Runtime::run) spawns and joins a fresh thread
//! fleet per exchange — fine for one-shot measurement, pure overhead for
//! a service executing thousands of exchanges. A [`WorkerPool`] keeps its
//! threads alive across runs: each thread parks on its task channel
//! between jobs and wakes only when handed work, so steady-state job
//! submission spawns no threads at all.
//!
//! # Gang scheduling
//!
//! An exchange run is a *gang*: its worker tasks rendezvous on a shared
//! [`Barrier`](std::sync::Barrier) every step, so all of them must be
//! running simultaneously or none makes progress. Handing a run's tasks
//! to a smaller free set would deadlock the pool — task 1 would wait on a
//! barrier that task 2, queued behind it on the same thread, can never
//! reach. [`WorkerPool::gang`] therefore reserves all `n` threads
//! atomically: it blocks until `n` are simultaneously free and takes them
//! in one motion. Because no caller ever holds a partial reservation,
//! concurrent gangs cannot deadlock against each other; the cost is that
//! a large gang can be starved by a stream of small ones, which callers
//! bound by capping per-job worker counts (see `torus-service`).
//!
//! # Failure isolation
//!
//! A task that panics is caught at the thread boundary and reported
//! through [`Gang::join`]; the pool thread itself survives and returns to
//! the free list. An aborted or degraded exchange never poisons the pool:
//! all abort/retry/quarantine state lives in the per-run shared context,
//! not in the threads.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

fn lk<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads executing tasks in
/// atomically-reserved gangs.
///
/// ```
/// use torus_runtime::WorkerPool;
///
/// let pool = WorkerPool::new(4);
/// let mut gang = pool.gang(2);
/// gang.spawn(|| 1 + 1);
/// gang.spawn(|| 2 + 2);
/// let results: Vec<i32> = gang.join().into_iter().map(Result::unwrap).collect();
/// assert_eq!(results, vec![2, 4]);
/// pool.shutdown();
/// ```
pub struct WorkerPool {
    size: usize,
    /// One task channel per thread: a gang addresses the exact threads it
    /// reserved. `None` once shut down.
    task_txs: Mutex<Option<Vec<Sender<Task>>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Indices of threads not currently reserved by a gang.
    free: Mutex<Vec<usize>>,
    freed: Condvar,
}

impl WorkerPool {
    /// Spawns `size` (at least 1) persistent worker threads.
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let mut txs = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for i in 0..size {
            let (tx, rx): (Sender<Task>, Receiver<Task>) = channel();
            txs.push(tx);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("torus-pool-{i}"))
                    .spawn(move || {
                        // Parked (blocked on the channel) between tasks;
                        // exits when the pool drops its sender.
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawning a pool worker thread"),
            );
        }
        Self {
            size,
            task_txs: Mutex::new(Some(txs)),
            handles: Mutex::new(handles),
            free: Mutex::new((0..size).collect()),
            freed: Condvar::new(),
        }
    }

    /// The thread count the pool was built with.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Atomically reserves `n` threads, blocking until that many are
    /// simultaneously free. Panics if `n` exceeds the pool size (such a
    /// gang could never be satisfied) or if the pool has been shut down.
    pub fn gang<T: Send + 'static>(&self, n: usize) -> Gang<'_, T> {
        assert!(n >= 1, "a gang needs at least one thread");
        assert!(
            n <= self.size,
            "gang of {n} cannot fit a pool of {}",
            self.size
        );
        let mut free = lk(&self.free);
        while free.len() < n {
            free = self
                .freed
                .wait(free)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let cut = free.len() - n;
        let slots: Vec<usize> = free.drain(cut..).collect();
        drop(free);
        Gang {
            pool: self,
            slots,
            pending: Vec::with_capacity(n),
        }
    }

    /// Hands `task` to pool thread `slot` (must be reserved by a gang).
    fn dispatch(&self, slot: usize, task: Task) {
        let txs = lk(&self.task_txs);
        let txs = txs.as_ref().expect("worker pool used after shutdown");
        // Send can only fail if the thread exited, which only happens at
        // shutdown — excluded by the line above while the lock is held.
        txs[slot].send(task).expect("pool worker thread is alive");
    }

    /// Returns reserved threads to the free list.
    fn release(&self, slots: &[usize]) {
        let mut free = lk(&self.free);
        free.extend_from_slice(slots);
        drop(free);
        self.freed.notify_all();
    }

    /// Stops every worker thread and joins it. In-flight tasks finish
    /// first (a thread only observes the closed channel after completing
    /// its current task). Idempotent; [`gang`](Self::gang) panics after.
    pub fn shutdown(&self) {
        // Dropping the senders makes each thread's `recv` fail, ending
        // its loop.
        lk(&self.task_txs).take();
        for h in lk(&self.handles).drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// An atomic reservation of pool threads, one task per thread, all tasks
/// returning the same type `T`.
///
/// Created by [`WorkerPool::gang`]. Spawn at most as many tasks as the
/// gang reserved, then [`join`](Self::join) to collect results in spawn
/// order and release the threads. Dropping a gang without joining also
/// waits for its spawned tasks (results discarded), so a pool thread is
/// never returned to the free list mid-task.
pub struct Gang<'p, T> {
    pool: &'p WorkerPool,
    slots: Vec<usize>,
    pending: Vec<Receiver<Result<T, String>>>,
}

impl<T: Send + 'static> Gang<'_, T> {
    /// The number of threads reserved.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the gang reserved zero threads. Never true — gangs are at
    /// least one thread — but paired with [`len`](Self::len) for idiom.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs `task` on the next reserved thread. Panics if every reserved
    /// thread already has a task.
    pub fn spawn<F>(&mut self, task: F)
    where
        F: FnOnce() -> T + Send + 'static,
    {
        assert!(
            self.pending.len() < self.slots.len(),
            "gang of {} cannot run a {}th task",
            self.slots.len(),
            self.pending.len() + 1
        );
        let slot = self.slots[self.pending.len()];
        let (tx, rx) = channel();
        self.pool.dispatch(
            slot,
            Box::new(move || {
                let result = catch_unwind(AssertUnwindSafe(task)).map_err(|p| {
                    p.downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_string())
                });
                // Receiver gone means the gang was dropped; the result is
                // intentionally discarded.
                let _ = tx.send(result);
            }),
        );
        self.pending.push(rx);
    }

    /// Waits for every spawned task and releases the threads, returning
    /// each task's result in spawn order (`Err` carries a stringified
    /// panic payload).
    pub fn join(mut self) -> Vec<Result<T, String>> {
        let results = self
            .pending
            .drain(..)
            .map(|rx| {
                rx.recv()
                    .unwrap_or_else(|_| Err("pool worker vanished".to_string()))
            })
            .collect();
        self.pool.release(&self.slots);
        self.slots.clear();
        results
    }
}

impl<T> Drop for Gang<'_, T> {
    fn drop(&mut self) {
        if !self.slots.is_empty() {
            // Not joined: wait for every spawned task (each sends exactly
            // once, panic or not) before releasing the threads.
            for rx in self.pending.drain(..) {
                let _ = rx.recv();
            }
            self.pool.release(&self.slots);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::Duration;

    #[test]
    fn gang_runs_tasks_and_returns_ordered_results() {
        let pool = WorkerPool::new(3);
        let mut gang = pool.gang(3);
        for i in 0..3 {
            gang.spawn(move || i * 10);
        }
        let results = gang.join();
        assert_eq!(
            results.into_iter().map(Result::unwrap).collect::<Vec<_>>(),
            vec![0, 10, 20]
        );
        pool.shutdown();
    }

    #[test]
    fn gang_tasks_run_concurrently_enough_to_share_a_barrier() {
        // The gang-scheduling contract: all tasks of one gang are live at
        // once, so a barrier across them completes.
        let pool = WorkerPool::new(4);
        let barrier = Arc::new(Barrier::new(4));
        let mut gang = pool.gang(4);
        for _ in 0..4 {
            let b = Arc::clone(&barrier);
            gang.spawn(move || {
                b.wait();
                true
            });
        }
        assert!(gang.join().into_iter().all(|r| r.unwrap()));
    }

    #[test]
    fn panicking_task_is_reported_and_thread_survives() {
        let pool = WorkerPool::new(2);
        let mut gang = pool.gang(1);
        gang.spawn(|| -> i32 { panic!("injected test panic") });
        let results = gang.join();
        assert!(results[0].as_ref().unwrap_err().contains("injected"));
        // The thread that hosted the panic is free and functional again.
        let mut gang = pool.gang(2);
        for _ in 0..2 {
            gang.spawn(|| 7);
        }
        assert!(gang.join().into_iter().all(|r| r.unwrap() == 7));
    }

    #[test]
    fn threads_are_reused_not_respawned() {
        let pool = WorkerPool::new(2);
        let seen = Arc::new(Mutex::new(std::collections::HashSet::new()));
        for _ in 0..10 {
            let mut gang = pool.gang(2);
            for _ in 0..2 {
                let seen = Arc::clone(&seen);
                gang.spawn(move || {
                    lk(&seen).insert(std::thread::current().id());
                });
            }
            gang.join();
        }
        assert_eq!(lk(&seen).len(), 2, "ten gangs, still only two threads");
    }

    #[test]
    fn concurrent_gangs_time_share_the_pool_without_deadlock() {
        let pool = Arc::new(WorkerPool::new(3));
        let done = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let done = Arc::clone(&done);
                s.spawn(move || {
                    // Gangs of 1, 2, and 3 interleave; atomic reservation
                    // means no interleaving can deadlock.
                    for n in [2usize, 3, 1] {
                        let mut gang = pool.gang(n);
                        let barrier = Arc::new(Barrier::new(n));
                        for _ in 0..n {
                            let b = Arc::clone(&barrier);
                            gang.spawn(move || b.wait());
                        }
                        gang.join();
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 24);
    }

    #[test]
    fn dropped_gang_waits_for_its_tasks_before_releasing() {
        let pool = WorkerPool::new(1);
        let flag = Arc::new(AtomicUsize::new(0));
        {
            let mut gang = pool.gang(1);
            let flag = Arc::clone(&flag);
            gang.spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                flag.store(1, Ordering::SeqCst);
            });
            // Gang dropped here without join().
        }
        // The drop path guarantees the task ran to completion before the
        // thread went back on the free list.
        assert_eq!(flag.load(Ordering::SeqCst), 1);
        let mut gang = pool.gang(1);
        gang.spawn(|| 9);
        assert_eq!(gang.join()[0].as_ref().unwrap(), &9);
    }

    #[test]
    fn shutdown_joins_all_threads_and_is_idempotent() {
        let pool = WorkerPool::new(4);
        let mut gang = pool.gang(4);
        for i in 0..4 {
            gang.spawn(move || i);
        }
        gang.join();
        pool.shutdown();
        pool.shutdown();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn shutdown_returns_thread_count_to_baseline() {
        let count = || std::fs::read_dir("/proc/self/task").unwrap().count();
        let before = count();
        let pool = WorkerPool::new(6);
        assert_eq!(count(), before + 6);
        pool.shutdown();
        assert_eq!(count(), before, "no leaked pool threads after shutdown");
    }
}
