//! External cancellation for in-flight runs.
//!
//! A [`CancelToken`] is a cheap clonable handle a caller keeps after
//! starting a run with
//! [`RuntimeConfig::with_cancel_token`](crate::RuntimeConfig::with_cancel_token).
//! Triggering it from any thread stops the run *cooperatively*: the
//! first worker to observe the trigger — at a step boundary, inside the
//! recovery receive loop, or mid-stall — records a typed
//! [`FailureReason::Cancelled`](crate::FailureReason::Cancelled) or
//! [`FailureReason::DeadlineExceeded`](crate::FailureReason::DeadlineExceeded)
//! and raises the run's existing first-failure-wins abort flag. Every
//! other worker then falls through its remaining barriers doing no
//! work, exactly like any other aborted run, so a cancelled run still
//! joins cleanly, leaks no threads, and yields a partial
//! [`RuntimeReport`](crate::RuntimeReport) inside
//! [`RuntimeError::Aborted`](crate::RuntimeError::Aborted).
//!
//! Triggering is idempotent and first-wins: once a token is cancelled,
//! later triggers (of either flavor) change nothing.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// Why a [`CancelToken`] was triggered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelKind {
    /// An explicit external cancellation request.
    Cancelled,
    /// A wall-clock deadline enforcer (e.g. a watchdog) fired.
    DeadlineExceeded,
}

/// A shared trigger that stops a running exchange between steps.
///
/// Clones share state; the token outliving the run is fine (triggering
/// after the run finished is a no-op).
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, untriggered token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cooperative cancellation. Returns `true` if this call
    /// was the first trigger.
    pub fn cancel(&self) -> bool {
        self.trigger(CancelKind::Cancelled)
    }

    /// Marks the run as having exceeded its deadline. Returns `true` if
    /// this call was the first trigger.
    pub fn expire(&self) -> bool {
        self.trigger(CancelKind::DeadlineExceeded)
    }

    fn trigger(&self, kind: CancelKind) -> bool {
        let value = match kind {
            CancelKind::Cancelled => CANCELLED,
            CancelKind::DeadlineExceeded => DEADLINE,
        };
        self.state
            .compare_exchange(LIVE, value, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// The trigger state, if any. Workers poll this at step boundaries.
    pub fn kind(&self) -> Option<CancelKind> {
        match self.state.load(Ordering::Acquire) {
            CANCELLED => Some(CancelKind::Cancelled),
            DEADLINE => Some(CancelKind::DeadlineExceeded),
            _ => None,
        }
    }

    /// Whether the token has been triggered (either flavor).
    pub fn is_triggered(&self) -> bool {
        self.state.load(Ordering::Acquire) != LIVE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_trigger_wins() {
        let token = CancelToken::new();
        assert_eq!(token.kind(), None);
        assert!(!token.is_triggered());
        assert!(token.cancel());
        assert!(!token.expire(), "second trigger must not overwrite");
        assert_eq!(token.kind(), Some(CancelKind::Cancelled));
        assert!(token.is_triggered());
    }

    #[test]
    fn expire_is_its_own_flavor() {
        let token = CancelToken::new();
        assert!(token.expire());
        assert!(!token.cancel());
        assert_eq!(token.kind(), Some(CancelKind::DeadlineExceeded));
    }

    #[test]
    fn clones_share_state() {
        let token = CancelToken::new();
        let clone = token.clone();
        token.cancel();
        assert!(clone.is_triggered());
    }
}
