//! Measured execution reports.
//!
//! A [`RuntimeReport`] is the byte-moving counterpart of
//! [`ExchangeReport`](alltoall_core::ExchangeReport): instead of modeled
//! time it carries *measured* wall time, broken down the way the paper's
//! cost analysis is — per phase, and within each phase into message
//! assembly (the combining memcpys), transport (channel traffic), and the
//! inter-phase data rearrangement. The analytic
//! [`CompletionTime`](cost_model::CompletionTime) for the same shape and
//! parameters rides along so model and measurement can be compared in one
//! artifact, and the [`Trace`](torus_sim::Trace) slot feeds the existing
//! figure harness unchanged.

use std::time::Duration;

use cost_model::CompletionTime;
use serde::Serialize;
use torus_sim::Trace;

use crate::degrade::DegradedReport;
use crate::fault::FaultEvent;
use crate::recovery::{NodeFailure, RecoveryStats};

/// Measured totals for one of the `n + 2` phases.
#[derive(Clone, Debug, Default, Serialize)]
pub struct PhaseReport {
    /// Phase label (`"phase 1"`…), matching the trace and the paper.
    pub name: String,
    /// Communication steps executed.
    pub steps: usize,
    /// Wall time of the whole phase, including its trailing rearrangement.
    pub wall: Duration,
    /// Worker time spent assembling and disassembling combined messages
    /// (block selection, framing, zero-copy splitting), summed over
    /// workers.
    pub assembly: Duration,
    /// Worker time spent on channel sends and receives, summed over
    /// workers.
    pub transport: Duration,
    /// Worker time spent in the inter-phase rearrangement memcpy pass,
    /// summed over workers (zero for the final phase).
    pub rearrange: Duration,
    /// Bytes put on the wire (framing + payloads).
    pub wire_bytes: u64,
    /// Payload bytes copied by the rearrangement pass.
    pub rearranged_bytes: u64,
    /// Bytes the send path actually copied while assembling frames.
    /// Fault-free this is framing only (headers); under a fault plan
    /// frames are materialized contiguously and it equals `wire_bytes`.
    pub bytes_copied: u64,
    /// Send-path buffer acquisitions that missed the worker's frame pool,
    /// plus the always-allocating contiguous encodes and rearrangement
    /// arenas. Stops growing once the pools are warm.
    pub allocations: u64,
    /// Combined messages sent.
    pub messages: u64,
}

/// Full measured report of one runtime execution.
#[derive(Clone, Debug, Serialize)]
pub struct RuntimeReport {
    /// Original (user-facing) torus extents.
    pub dims: Vec<u32>,
    /// Canonical extents actually executed (padding/permutation applied).
    pub executed_dims: Vec<u32>,
    /// Whether virtual-node padding was in effect.
    pub padded: bool,
    /// Number of real nodes.
    pub nodes: u32,
    /// Payload bytes per block (the paper's `m`) used for seeding and the
    /// analytic prediction.
    pub block_bytes: usize,
    /// Worker threads the nodes were multiplexed onto.
    pub workers: usize,
    /// Per-phase measurements, execution order.
    pub phases: Vec<PhaseReport>,
    /// End-to-end wall time (seeding and verification excluded).
    pub wall: Duration,
    /// Total bytes put on the wire.
    pub wire_bytes: u64,
    /// Total payload bytes copied by rearrangement passes.
    pub rearranged_bytes: u64,
    /// Total bytes the send path copied assembling frames. Fault-free
    /// the scatter-gather encoder copies only headers
    /// (`messages * MESSAGE_HEADER_BYTES + blocks * BLOCK_HEADER_BYTES`),
    /// never payloads — the visible form of the zero-copy send path.
    pub bytes_copied: u64,
    /// Total send-path buffer acquisitions that hit the allocator (frame
    /// pool misses, contiguous encodes, rearrangement arenas).
    pub allocations: u64,
    /// Peak bytes resident in any single node's buffer at a step boundary.
    pub peak_node_bytes: u64,
    /// Total combined messages sent.
    pub messages: u64,
    /// Whether delivery verified (correct block set at every node *and*
    /// bit-exact payloads). [`Runtime::run`](crate::Runtime::run) returns
    /// an error instead of a report with `verified = false`; partial
    /// reports carried by
    /// [`RuntimeError::Aborted`](crate::RuntimeError::Aborted) have
    /// `verified = false`.
    pub verified: bool,
    /// Fault, integrity, and recovery counters. All-zero
    /// ([`RecoveryStats::is_clean`]) on a fault-free run.
    pub faults: RecoveryStats,
    /// Every injected fault, in deterministic `(step, src, dst, attempt)`
    /// order — two runs with the same seed and config produce identical
    /// lists.
    pub fault_events: Vec<FaultEvent>,
    /// The first unrecoverable failure, if the run aborted (always
    /// `None` on a successful run).
    pub failure: Option<NodeFailure>,
    /// Degraded-mode accounting: present exactly when the run quarantined
    /// at least one node under [`OnFailure::Degrade`](crate::OnFailure)
    /// and completed for the survivors. `None` on fault-free runs, on
    /// aborted runs, and on degrade-policy runs that never lost a node.
    pub degraded: Option<DegradedReport>,
    /// The Table 1 closed-form prediction for the executed shape under the
    /// configured [`CommParams`](cost_model::CommParams).
    pub analytic: CompletionTime,
    /// Per-step trace in the same format the simulator emits (step walls
    /// in `time_us`), consumable by the figure harness.
    pub trace: Trace,
}

impl RuntimeReport {
    /// Total worker time spent assembling/disassembling messages.
    pub fn assembly(&self) -> Duration {
        self.phases.iter().map(|p| p.assembly).sum()
    }

    /// Total worker time spent on channel transport.
    pub fn transport(&self) -> Duration {
        self.phases.iter().map(|p| p.transport).sum()
    }

    /// Total worker time spent rearranging.
    pub fn rearrange(&self) -> Duration {
        self.phases.iter().map(|p| p.rearrange).sum()
    }

    /// Total communication steps executed.
    pub fn total_steps(&self) -> usize {
        self.phases.iter().map(|p| p.steps).sum()
    }

    /// One-line-per-phase human summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let dims = |d: &[u32]| {
            d.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("x")
        };
        let _ = writeln!(
            s,
            "runtime exchange on {} ({} nodes{}, {} workers, {} B blocks): \
             {:.3} ms wall, {} steps, {} messages, {} wire bytes, {} copied, \
             {} allocations, verified={}",
            dims(&self.dims),
            self.nodes,
            if self.padded {
                format!(", executed as {}", dims(&self.executed_dims))
            } else {
                String::new()
            },
            self.workers,
            self.block_bytes,
            self.wall.as_secs_f64() * 1e3,
            self.total_steps(),
            self.messages,
            self.wire_bytes,
            self.bytes_copied,
            self.allocations,
            self.verified,
        );
        for p in &self.phases {
            let _ = writeln!(
                s,
                "  {:<9} {:>2} steps  wall {:>9.3} ms  assembly {:>9.3} ms  \
                 transport {:>9.3} ms  rearrange {:>9.3} ms  {:>12} wire B  {:>12} rearr B  \
                 {:>10} copied B",
                p.name,
                p.steps,
                p.wall.as_secs_f64() * 1e3,
                p.assembly.as_secs_f64() * 1e3,
                p.transport.as_secs_f64() * 1e3,
                p.rearrange.as_secs_f64() * 1e3,
                p.wire_bytes,
                p.rearranged_bytes,
                p.bytes_copied,
            );
        }
        if !self.faults.is_clean() {
            let _ = writeln!(
                s,
                "  faults: {} injected ({} drop, {} corrupt, {} truncate, {} dup, {} delay, \
                 {} stall, {} kill); detected: {} crc, {} framing; recovery: {} timeouts, \
                 {} retries, {} resends, {} stale discarded, {} recovered",
                self.faults.total_injected(),
                self.faults.injected_drops,
                self.faults.injected_corruptions,
                self.faults.injected_truncations,
                self.faults.injected_duplicates,
                self.faults.injected_delays,
                self.faults.injected_stalls,
                self.faults.injected_kills,
                self.faults.crc_failures,
                self.faults.decode_failures,
                self.faults.timeouts,
                self.faults.retries,
                self.faults.resends,
                self.faults.stale_discarded,
                self.faults.recovered,
            );
        }
        if let Some(failure) = &self.failure {
            let _ = writeln!(s, "  ABORTED: {failure}");
        }
        if let Some(degraded) = &self.degraded {
            let _ = writeln!(s, "  {}", degraded.summary_line());
        }
        let _ = write!(
            s,
            "  peak node residency {} B; analytic model: {:.1} us total ({} dominant)",
            self.peak_node_bytes,
            self.analytic.total(),
            self.analytic.dominant(),
        );
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RuntimeReport {
        RuntimeReport {
            dims: vec![8, 8],
            executed_dims: vec![8, 8],
            padded: false,
            nodes: 64,
            block_bytes: 64,
            workers: 4,
            phases: vec![
                PhaseReport {
                    name: "phase 1".into(),
                    steps: 1,
                    wall: Duration::from_micros(500),
                    assembly: Duration::from_micros(200),
                    transport: Duration::from_micros(100),
                    rearrange: Duration::from_micros(50),
                    wire_bytes: 4096,
                    rearranged_bytes: 2048,
                    bytes_copied: 1024,
                    allocations: 80,
                    messages: 64,
                },
                PhaseReport {
                    name: "phase 2".into(),
                    steps: 1,
                    wall: Duration::from_micros(400),
                    assembly: Duration::from_micros(150),
                    transport: Duration::from_micros(80),
                    rearrange: Duration::default(),
                    wire_bytes: 2048,
                    rearranged_bytes: 0,
                    bytes_copied: 512,
                    allocations: 0,
                    messages: 64,
                },
            ],
            wall: Duration::from_micros(900),
            wire_bytes: 6144,
            rearranged_bytes: 2048,
            bytes_copied: 1536,
            allocations: 80,
            peak_node_bytes: 8192,
            messages: 128,
            verified: true,
            faults: RecoveryStats::default(),
            fault_events: Vec::new(),
            failure: None,
            degraded: None,
            analytic: CompletionTime::default(),
            trace: Trace::default(),
        }
    }

    #[test]
    fn totals_sum_phases() {
        let r = sample();
        assert_eq!(r.assembly(), Duration::from_micros(350));
        assert_eq!(r.transport(), Duration::from_micros(180));
        assert_eq!(r.rearrange(), Duration::from_micros(50));
        assert_eq!(r.total_steps(), 2);
    }

    #[test]
    fn summary_mentions_the_essentials() {
        let s = sample().summary();
        assert!(s.contains("8x8"));
        assert!(s.contains("verified=true"));
        assert!(s.contains("phase 1"));
        assert!(s.contains("peak node residency 8192 B"));
        assert!(s.contains("1536 copied"));
        assert!(s.contains("80 allocations"));
    }

    #[test]
    fn padded_summary_names_executed_shape() {
        let mut r = sample();
        r.dims = vec![6, 6];
        r.padded = true;
        assert!(r.summary().contains("executed as 8x8"));
    }

    #[test]
    fn summary_reports_faults_only_when_present() {
        let mut r = sample();
        assert!(!r.summary().contains("faults:"));
        r.faults.injected_drops = 2;
        r.faults.retries = 3;
        r.faults.recovered = 2;
        let s = r.summary();
        assert!(s.contains("faults: 2 injected"));
        assert!(s.contains("3 retries"));
        assert!(!s.contains("ABORTED"));
    }

    #[test]
    fn summary_names_abort_context() {
        let mut r = sample();
        r.verified = false;
        r.failure = Some(crate::recovery::NodeFailure {
            node: 5,
            phase: "phase 2".into(),
            step: 1,
            global_step: 3,
            reason: crate::recovery::FailureReason::WorkerKilled { node: 5 },
        });
        let s = r.summary();
        assert!(s.contains("ABORTED"));
        assert!(s.contains("node 5"));
        assert!(s.contains("phase 2"));
    }

    #[test]
    fn summary_includes_degraded_line_when_present() {
        let mut r = sample();
        r.degraded = Some(crate::degrade::DegradedReport {
            dead_nodes: vec![crate::degrade::DeadNode {
                node: 7,
                original: Some(7),
                quarantine_step: 3,
                reason: crate::recovery::FailureReason::WorkerKilled { node: 7 },
            }],
            dropped_blocks: 126,
            dropped: Vec::new(),
            contracted_rings: 2,
            contracted_sends: 4,
            fallback_steps: 3,
            fallback_blocks: 11,
            baseline_wire_bytes: 100_000,
            extra_wire_bytes: -512,
            restarts: 0,
            verified_degraded: true,
        });
        let s = r.summary();
        assert!(s.contains("DEGRADED: dead [7@3]"));
        assert!(s.contains("126 blocks dropped"));
    }
}
