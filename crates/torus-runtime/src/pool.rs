//! Per-worker recycling pool for frame buffers.
//!
//! The gathered send path ([`crate::message::encode_gathered`]) needs one
//! small framing [`BytesMut`] and one payload-segment `Vec` per message.
//! Allocating those per step would put an allocator round-trip on the hot
//! path for every send; instead each worker keeps a [`FramePool`] and the
//! *receiving* worker returns a frame's buffers to its own pool after
//! splitting it. Workers send and receive in near-equal measure every
//! step, so the pools stay warm: after the first few steps, steady-state
//! assembly performs no heap allocation at all.
//!
//! The pool also keeps score: [`FramePool::allocations`] counts every
//! acquisition it could not serve from a recycled buffer (pool miss, or a
//! recycled framing buffer that had to grow). The runtime threads this
//! into [`RuntimeReport::allocations`](crate::RuntimeReport::allocations),
//! which is how the report proves the steady state is allocation-free.

use bytes::{Bytes, BytesMut};

/// Buffers retained per pool. Bounds worst-case retention when ownership
/// of nodes is skewed and one worker receives far more than it sends.
const POOL_CAP: usize = 64;

/// A per-worker pool of reusable framing buffers and payload-segment
/// vectors. Not thread-safe by design — each worker owns one.
#[derive(Debug, Default)]
pub struct FramePool {
    bufs: Vec<BytesMut>,
    vecs: Vec<Vec<Bytes>>,
    allocations: u64,
}

impl FramePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared framing buffer with at least `capacity` bytes.
    /// Counts as an allocation when the pool is empty or the recycled
    /// buffer has to grow.
    pub fn take_buf(&mut self, capacity: usize) -> BytesMut {
        match self.bufs.pop() {
            Some(mut b) => {
                b.clear();
                if b.capacity() < capacity {
                    self.allocations += 1;
                    b.reserve(capacity);
                }
                b
            }
            None => {
                self.allocations += 1;
                BytesMut::with_capacity(capacity)
            }
        }
    }

    /// Returns a framing buffer for reuse (dropped if the pool is full).
    pub fn put_buf(&mut self, buf: BytesMut) {
        if self.bufs.len() < POOL_CAP {
            self.bufs.push(buf);
        }
    }

    /// Takes a cleared payload-segment vector. Counts as an allocation
    /// when the pool is empty.
    pub fn take_vec(&mut self) -> Vec<Bytes> {
        match self.vecs.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => {
                self.allocations += 1;
                Vec::new()
            }
        }
    }

    /// Returns a payload-segment vector for reuse (dropped if the pool is
    /// full). Any leftover segments are released.
    pub fn put_vec(&mut self, mut vec: Vec<Bytes>) {
        if self.vecs.len() < POOL_CAP {
            vec.clear();
            self.vecs.push(vec);
        }
    }

    /// Acquisitions that could not be served from a recycled buffer.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_take_allocates_recycled_take_does_not() {
        let mut pool = FramePool::new();
        let buf = pool.take_buf(128);
        let vec = pool.take_vec();
        assert_eq!(pool.allocations(), 2);
        pool.put_buf(buf);
        pool.put_vec(vec);
        let buf = pool.take_buf(128);
        let _vec = pool.take_vec();
        assert_eq!(pool.allocations(), 2, "warm pool must not allocate");
        assert!(buf.capacity() >= 128);
        assert!(buf.is_empty(), "recycled buffers come back cleared");
    }

    #[test]
    fn growing_a_recycled_buffer_counts_as_allocation() {
        let mut pool = FramePool::new();
        let buf = pool.take_buf(16);
        pool.put_buf(buf);
        let big = pool.take_buf(4096);
        assert!(big.capacity() >= 4096);
        assert_eq!(pool.allocations(), 2);
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool = FramePool::new();
        for _ in 0..(POOL_CAP + 10) {
            pool.put_buf(BytesMut::new());
            pool.put_vec(Vec::new());
        }
        assert_eq!(pool.bufs.len(), POOL_CAP);
        assert_eq!(pool.vecs.len(), POOL_CAP);
    }

    #[test]
    fn returned_vec_is_cleared_of_segments() {
        let mut pool = FramePool::new();
        pool.put_vec(vec![Bytes::from(vec![1u8, 2, 3])]);
        assert!(pool.take_vec().is_empty());
    }
}
