//! Per-worker recycling pool for frame buffers.
//!
//! The gathered send path ([`crate::message::encode_gathered`]) needs one
//! small framing [`BytesMut`] and one payload-segment `Vec` per message.
//! Allocating those per step would put an allocator round-trip on the hot
//! path for every send; instead each worker keeps a [`FramePool`] and the
//! *receiving* worker returns a frame's buffers to its own pool after
//! splitting it. Workers send and receive in near-equal measure every
//! step, so the pools stay warm: after the first few steps, steady-state
//! assembly performs no heap allocation at all.
//!
//! The pool also keeps score: [`FramePool::allocations`] counts every
//! acquisition it could not serve from a recycled buffer (pool miss, or a
//! recycled framing buffer that had to grow). The runtime threads this
//! into [`RuntimeReport::allocations`](crate::RuntimeReport::allocations),
//! which is how the report proves the steady state is allocation-free.

use std::sync::{Mutex, PoisonError};

use bytes::{Bytes, BytesMut};

/// Buffers retained per pool. Bounds worst-case retention when ownership
/// of nodes is skewed and one worker receives far more than it sends.
const POOL_CAP: usize = 64;

/// A per-worker pool of reusable framing buffers and payload-segment
/// vectors. Not thread-safe by design — each worker owns one.
#[derive(Debug, Default)]
pub struct FramePool {
    bufs: Vec<BytesMut>,
    vecs: Vec<Vec<Bytes>>,
    allocations: u64,
}

impl FramePool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a cleared framing buffer with at least `capacity` bytes.
    /// Counts as an allocation when the pool is empty or the recycled
    /// buffer has to grow.
    pub fn take_buf(&mut self, capacity: usize) -> BytesMut {
        match self.bufs.pop() {
            Some(mut b) => {
                b.clear();
                if b.capacity() < capacity {
                    self.allocations += 1;
                    b.reserve(capacity);
                }
                b
            }
            None => {
                self.allocations += 1;
                BytesMut::with_capacity(capacity)
            }
        }
    }

    /// Returns a framing buffer for reuse (dropped if the pool is full).
    pub fn put_buf(&mut self, buf: BytesMut) {
        if self.bufs.len() < POOL_CAP {
            self.bufs.push(buf);
        }
    }

    /// Takes a cleared payload-segment vector. Counts as an allocation
    /// when the pool is empty.
    pub fn take_vec(&mut self) -> Vec<Bytes> {
        match self.vecs.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => {
                self.allocations += 1;
                Vec::new()
            }
        }
    }

    /// Returns a payload-segment vector for reuse (dropped if the pool is
    /// full). Any leftover segments are released.
    pub fn put_vec(&mut self, mut vec: Vec<Bytes>) {
        if self.vecs.len() < POOL_CAP {
            vec.clear();
            self.vecs.push(vec);
        }
    }

    /// Acquisitions that could not be served from a recycled buffer.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }
}

/// Bounds the frame pools a [`PoolBank`] retains between runs.
const BANK_CAP: usize = 64;

/// A shared bank of [`FramePool`]s carried across runs.
///
/// Within a run each worker owns its pool exclusively (no locks on the
/// hot path); between runs the pools would normally be dropped with the
/// worker threads. A service executing many exchanges checks each
/// worker's pool back into a bank at job end and hands it to the next
/// job's worker, so the *warm* state — pre-grown framing buffers and
/// segment vectors — survives job boundaries and steady-state submission
/// stays allocation-free. The bank is locked only at job start/end, never
/// per step.
///
/// [`FramePool::allocations`] is cumulative over a pool's lifetime; the
/// runtime records per-run deltas, so a recycled pool never inflates a
/// later job's allocation count.
#[derive(Debug, Default)]
pub struct PoolBank {
    slots: Mutex<Vec<FramePool>>,
}

impl PoolBank {
    /// Creates an empty bank.
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out a warm pool, or a fresh one if the bank is empty.
    pub fn take(&self) -> FramePool {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .pop()
            .unwrap_or_default()
    }

    /// Checks a pool back in for the next run (dropped if the bank is
    /// already holding [`BANK_CAP`] pools).
    pub fn put(&self, pool: FramePool) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if slots.len() < BANK_CAP {
            slots.push(pool);
        }
    }

    /// The number of warm pools currently banked.
    pub fn len(&self) -> usize {
        self.slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether the bank currently holds no warm pools.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_take_allocates_recycled_take_does_not() {
        let mut pool = FramePool::new();
        let buf = pool.take_buf(128);
        let vec = pool.take_vec();
        assert_eq!(pool.allocations(), 2);
        pool.put_buf(buf);
        pool.put_vec(vec);
        let buf = pool.take_buf(128);
        let _vec = pool.take_vec();
        assert_eq!(pool.allocations(), 2, "warm pool must not allocate");
        assert!(buf.capacity() >= 128);
        assert!(buf.is_empty(), "recycled buffers come back cleared");
    }

    #[test]
    fn growing_a_recycled_buffer_counts_as_allocation() {
        let mut pool = FramePool::new();
        let buf = pool.take_buf(16);
        pool.put_buf(buf);
        let big = pool.take_buf(4096);
        assert!(big.capacity() >= 4096);
        assert_eq!(pool.allocations(), 2);
    }

    #[test]
    fn pool_is_bounded() {
        let mut pool = FramePool::new();
        for _ in 0..(POOL_CAP + 10) {
            pool.put_buf(BytesMut::new());
            pool.put_vec(Vec::new());
        }
        assert_eq!(pool.bufs.len(), POOL_CAP);
        assert_eq!(pool.vecs.len(), POOL_CAP);
    }

    #[test]
    fn returned_vec_is_cleared_of_segments() {
        let mut pool = FramePool::new();
        pool.put_vec(vec![Bytes::from(vec![1u8, 2, 3])]);
        assert!(pool.take_vec().is_empty());
    }

    #[test]
    fn bank_round_trips_warm_pools() {
        let bank = PoolBank::new();
        assert!(bank.is_empty());
        let mut pool = bank.take();
        let buf = pool.take_buf(256);
        pool.put_buf(buf);
        let warmed_allocs = pool.allocations();
        bank.put(pool);
        assert_eq!(bank.len(), 1);
        // The next checkout gets the warm pool back: taking the same
        // capacity again costs no allocation.
        let mut pool = bank.take();
        let _ = pool.take_buf(256);
        assert_eq!(pool.allocations(), warmed_allocs);
    }

    #[test]
    fn bank_is_bounded() {
        let bank = PoolBank::new();
        for _ in 0..(BANK_CAP + 5) {
            bank.put(FramePool::new());
        }
        assert_eq!(bank.len(), BANK_CAP);
    }
}
