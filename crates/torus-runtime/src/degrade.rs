//! Degraded-mode execution policy and reporting.
//!
//! With [`OnFailure::Abort`] (the default, and the only behavior before
//! degraded mode existed) an unrecoverable fault ends the run with
//! [`RuntimeError::Aborted`](crate::RuntimeError::Aborted). With
//! [`OnFailure::Degrade`] the runtime instead quarantines the failed node
//! and executes a *repaired* schedule
//! ([`alltoall_core::repair::RepairedSchedule`]): scatter rings contract
//! around dead members, blocks with a dead endpoint are dropped and
//! accounted, submesh exchanges with a dead partner fall back to direct
//! pairwise sends, and the run completes bit-exactly for every
//! survivor→survivor block. The [`DegradedReport`] summarizing the
//! degradation is attached to the
//! [`RuntimeReport`](crate::RuntimeReport) and contains no timing or
//! thread-dependent data, so identical seeds yield byte-identical
//! degraded reports regardless of worker count.

use alltoall_core::DroppedBlock;
use serde::Serialize;
use torus_topology::NodeId;

use crate::recovery::FailureReason;

/// What the runtime does when a node suffers an unrecoverable fault.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub enum OnFailure {
    /// Abort the whole run with a typed error and a partial report.
    #[default]
    Abort,
    /// Quarantine the failed node, repair the remaining schedule, and
    /// complete the exchange for all survivors.
    Degrade,
}

impl OnFailure {
    /// Parses a CLI policy value (`"abort"` or `"degrade"`).
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "abort" => Ok(Self::Abort),
            "degrade" => Ok(Self::Degrade),
            other => Err(format!(
                "unknown failure policy '{other}' (expected 'abort' or 'degrade')"
            )),
        }
    }
}

impl std::fmt::Display for OnFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Abort => write!(f, "abort"),
            Self::Degrade => write!(f, "degrade"),
        }
    }
}

/// One quarantined node.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DeadNode {
    /// Canonical node id (the id the schedule executes with).
    pub node: NodeId,
    /// The real node id it maps from, `None` if the canonical node is a
    /// padding-only virtual node.
    pub original: Option<NodeId>,
    /// Global step index from which the node is dead (clamped to the end
    /// of the base plan).
    pub quarantine_step: usize,
    /// Why the node was quarantined.
    pub reason: FailureReason,
}

/// How a degraded run deviated from the fault-free plan. Everything here
/// is a pure function of (schedule, fault plan, payload sizes): no
/// timing, no thread counts — byte-identical across reruns.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct DegradedReport {
    /// Quarantined nodes, sorted by canonical id.
    pub dead_nodes: Vec<DeadNode>,
    /// Number of blocks removed because an endpoint died.
    pub dropped_blocks: u64,
    /// Every dropped block, sorted by `(src, dst)`.
    pub dropped: Vec<DroppedBlock>,
    /// Distinct scatter rings contracted around dead members.
    pub contracted_rings: u64,
    /// Scatter sends that spanned more than one 4-stride link.
    pub contracted_sends: u64,
    /// Steps in the appended direct-exchange fallback phase.
    pub fallback_steps: u64,
    /// Blocks delivered by fallback sends.
    pub fallback_blocks: u64,
    /// Wire bytes the fault-free plan would have moved for this payload
    /// set (headers included).
    pub baseline_wire_bytes: u64,
    /// Measured wire bytes minus the fault-free baseline. Negative when
    /// the dead nodes' absent traffic outweighs repair overhead.
    pub extra_wire_bytes: i64,
    /// Times the run restarted to quarantine a dynamically-failed node
    /// (0 when every dead node was known from pinned kills).
    pub restarts: u32,
    /// True when every survivor received every survivor block bit-exactly.
    pub verified_degraded: bool,
}

impl DegradedReport {
    /// One-line text summary for [`RuntimeReport::summary`](crate::RuntimeReport::summary).
    pub fn summary_line(&self) -> String {
        let nodes: Vec<String> = self
            .dead_nodes
            .iter()
            .map(|d| format!("{}@{}", d.node, d.quarantine_step))
            .collect();
        format!(
            "DEGRADED: dead [{}], {} blocks dropped, {} rings contracted \
             ({} sends), {} fallback steps ({} blocks), {:+} wire bytes vs \
             fault-free, {} restarts, survivors {}",
            nodes.join(", "),
            self.dropped_blocks,
            self.contracted_rings,
            self.contracted_sends,
            self.fallback_steps,
            self.fallback_blocks,
            self.extra_wire_bytes,
            self.restarts,
            if self.verified_degraded {
                "verified"
            } else {
                "NOT verified"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parses_and_displays() {
        assert_eq!(OnFailure::parse("abort").unwrap(), OnFailure::Abort);
        assert_eq!(OnFailure::parse("degrade").unwrap(), OnFailure::Degrade);
        assert!(OnFailure::parse("panic").is_err());
        assert_eq!(OnFailure::Abort.to_string(), "abort");
        assert_eq!(OnFailure::Degrade.to_string(), "degrade");
        assert_eq!(OnFailure::default(), OnFailure::Abort);
    }

    #[test]
    fn summary_line_names_the_dead() {
        let rep = DegradedReport {
            dead_nodes: vec![DeadNode {
                node: 7,
                original: Some(7),
                quarantine_step: 3,
                reason: FailureReason::WorkerKilled { node: 7 },
            }],
            dropped_blocks: 126,
            dropped: Vec::new(),
            contracted_rings: 2,
            contracted_sends: 4,
            fallback_steps: 3,
            fallback_blocks: 11,
            baseline_wire_bytes: 100_000,
            extra_wire_bytes: -1_234,
            restarts: 0,
            verified_degraded: true,
        };
        let line = rep.summary_line();
        assert!(line.contains("7@3"));
        assert!(line.contains("126 blocks dropped"));
        assert!(line.contains("-1234 wire bytes"));
        assert!(line.contains("survivors verified"));
    }
}
