//! Multi-tenant admission: quotas and per-tenant accounting.
//!
//! Every submission names a tenant (the engine's bare
//! [`submit`](crate::Engine::submit) uses [`DEFAULT_TENANT`]). Tenants
//! share the engine's bounded queue and worker pool but are isolated at
//! admission and dispatch:
//!
//! * a per-tenant **queued cap** rejects a tenant's submissions once it
//!   alone holds `max_queued` slots, before the global bound is reached
//!   — one chatty tenant cannot fill the queue for everyone;
//! * a per-tenant **in-flight cap** holds a tenant's queued jobs back
//!   while `max_in_flight` of its jobs are executing, so dispatch
//!   bandwidth is shared even when only one tenant has work queued;
//! * dequeue is **round-robin across tenants**, not global FIFO, so two
//!   tenants submitting in bursts interleave fairly.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::stats::{Histogram, LatencyStats};

/// The tenant used by [`Engine::submit`](crate::Engine::submit) when no
/// tenant is named.
pub const DEFAULT_TENANT: &str = "default";

/// Per-tenant admission limits. The defaults are unlimited — the
/// engine's global queue depth is then the only bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantQuota {
    /// Most jobs this tenant may hold in the queue at once; further
    /// submissions get [`SubmitError::TenantQueueFull`](crate::SubmitError::TenantQueueFull).
    pub max_queued: usize,
    /// Most of this tenant's jobs that may execute concurrently; queued
    /// jobs beyond it wait (they are not rejected).
    pub max_in_flight: usize,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            max_queued: usize::MAX,
            max_in_flight: usize::MAX,
        }
    }
}

impl TenantQuota {
    /// Sets the queued-jobs cap (clamped to at least 1).
    pub fn with_max_queued(mut self, max: usize) -> Self {
        self.max_queued = max.max(1);
        self
    }

    /// Sets the concurrent-execution cap (clamped to at least 1).
    pub fn with_max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = max.max(1);
        self
    }
}

/// A point-in-time snapshot of one tenant's counters and latencies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's id.
    pub tenant: String,
    /// Jobs admitted to the queue.
    pub jobs_accepted: u64,
    /// Jobs refused (tenant quota or global bound).
    pub jobs_rejected: u64,
    /// Jobs finished with a verified report.
    pub jobs_completed: u64,
    /// Jobs finished with an error.
    pub jobs_failed: u64,
    /// Submit-to-dispatch wait, in microseconds.
    pub queue_wait: LatencyStats,
    /// Dispatch-to-finish run time, in microseconds.
    pub run_time: LatencyStats,
}

/// Lock-free per-tenant cells, bumped by submitters and drivers.
#[derive(Debug, Default)]
pub(crate) struct TenantCells {
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub queue_wait: Histogram,
    pub run_time: Histogram,
}

impl TenantCells {
    pub fn snapshot(&self, tenant: &str) -> TenantStats {
        TenantStats {
            tenant: tenant.to_string(),
            jobs_accepted: self.accepted.load(Ordering::Relaxed),
            jobs_rejected: self.rejected.load(Ordering::Relaxed),
            jobs_completed: self.completed.load(Ordering::Relaxed),
            jobs_failed: self.failed.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.stats(),
            run_time: self.run_time.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_builders_clamp_to_one() {
        let q = TenantQuota::default()
            .with_max_queued(0)
            .with_max_in_flight(0);
        assert_eq!(q.max_queued, 1);
        assert_eq!(q.max_in_flight, 1);
        assert_eq!(TenantQuota::default().max_queued, usize::MAX);
    }

    #[test]
    fn cells_snapshot_carries_latencies() {
        let cells = TenantCells::default();
        cells.accepted.fetch_add(2, Ordering::Relaxed);
        cells.queue_wait.record(100);
        cells.run_time.record(1000);
        let snap = cells.snapshot("acme");
        assert_eq!(snap.tenant, "acme");
        assert_eq!(snap.jobs_accepted, 2);
        assert_eq!(snap.queue_wait.count, 1);
        assert!(snap.run_time.p50 >= 1000);
    }
}
