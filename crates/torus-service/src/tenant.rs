//! Multi-tenant admission: quotas and per-tenant accounting.
//!
//! Every submission names a tenant (the engine's bare
//! [`submit`](crate::Engine::submit) uses [`DEFAULT_TENANT`]). Tenants
//! share the engine's bounded queue and worker pool but are isolated at
//! admission and dispatch:
//!
//! * a per-tenant **queued cap** rejects a tenant's submissions once it
//!   alone holds `max_queued` slots, before the global bound is reached
//!   — one chatty tenant cannot fill the queue for everyone;
//! * a per-tenant **in-flight cap** holds a tenant's queued jobs back
//!   while `max_in_flight` of its jobs are executing, so dispatch
//!   bandwidth is shared even when only one tenant has work queued;
//! * dequeue is **round-robin across tenants**, not global FIFO, so two
//!   tenants submitting in bursts interleave fairly;
//! * an optional per-tenant **token-bucket rate limit** converts
//!   sustained overload into typed
//!   [`RateLimited`](crate::SubmitError::RateLimited) rejections that
//!   carry a `retry_after_ms` hint, so a well-behaved client backs off
//!   instead of hammering the queue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::stats::{Histogram, LatencyStats};

/// The tenant used by [`Engine::submit`](crate::Engine::submit) when no
/// tenant is named.
pub const DEFAULT_TENANT: &str = "default";

/// A token-bucket admission rate: sustained submissions above
/// `tokens_per_sec` are rejected once the `burst` allowance is spent.
///
/// The bucket refills continuously; a rejection's `retry_after_ms`
/// reports how long until one whole token will have accumulated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RateLimit {
    /// Sustained admissions per second this tenant may make.
    pub tokens_per_sec: u32,
    /// Extra submissions allowed in a burst before the sustained rate
    /// gates admission (the bucket's capacity).
    pub burst: u32,
}

impl RateLimit {
    /// A limit of `tokens_per_sec` sustained with a burst of the same
    /// size (both clamped to at least 1).
    pub fn per_sec(tokens_per_sec: u32) -> Self {
        Self {
            tokens_per_sec: tokens_per_sec.max(1),
            burst: tokens_per_sec.max(1),
        }
    }

    /// Sets the burst allowance (clamped to at least 1).
    pub fn with_burst(mut self, burst: u32) -> Self {
        self.burst = burst.max(1);
        self
    }
}

/// Per-tenant admission limits. The defaults are unlimited — the
/// engine's global queue depth is then the only bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantQuota {
    /// Most jobs this tenant may hold in the queue at once; further
    /// submissions get [`SubmitError::TenantQueueFull`](crate::SubmitError::TenantQueueFull).
    pub max_queued: usize,
    /// Most of this tenant's jobs that may execute concurrently; queued
    /// jobs beyond it wait (they are not rejected).
    pub max_in_flight: usize,
    /// Optional token-bucket rate limit; `None` leaves the tenant's
    /// submission rate ungated.
    pub rate: Option<RateLimit>,
}

impl Default for TenantQuota {
    fn default() -> Self {
        Self {
            max_queued: usize::MAX,
            max_in_flight: usize::MAX,
            rate: None,
        }
    }
}

impl TenantQuota {
    /// Sets the queued-jobs cap (clamped to at least 1).
    pub fn with_max_queued(mut self, max: usize) -> Self {
        self.max_queued = max.max(1);
        self
    }

    /// Sets the concurrent-execution cap (clamped to at least 1).
    pub fn with_max_in_flight(mut self, max: usize) -> Self {
        self.max_in_flight = max.max(1);
        self
    }

    /// Sets the token-bucket rate limit.
    pub fn with_rate_limit(mut self, rate: RateLimit) -> Self {
        self.rate = Some(rate);
        self
    }
}

/// One tenant's token-bucket state, advanced lazily at each submission.
///
/// Lives inside the engine's queue mutex, so plain `f64` arithmetic is
/// race-free. Tokens refill continuously at the quota's rate and cap at
/// its burst; each admission spends one token.
#[derive(Debug)]
pub(crate) struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A full bucket (the burst allowance is immediately available).
    pub(crate) fn full(rate: &RateLimit) -> Self {
        Self {
            tokens: rate.burst as f64,
            last_refill: Instant::now(),
        }
    }

    /// Refills for elapsed time, then either spends one token (`Ok`) or
    /// reports how many milliseconds until a whole token accumulates.
    pub(crate) fn try_take(&mut self, rate: &RateLimit) -> Result<(), u64> {
        let now = Instant::now();
        let elapsed = now.duration_since(self.last_refill).as_secs_f64();
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed * rate.tokens_per_sec as f64).min(rate.burst as f64);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - self.tokens;
            let wait_ms = (deficit / rate.tokens_per_sec as f64 * 1000.0).ceil() as u64;
            Err(wait_ms.max(1))
        }
    }
}

/// A point-in-time snapshot of one tenant's counters and latencies.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// The tenant's id.
    pub tenant: String,
    /// Jobs admitted to the queue.
    pub jobs_accepted: u64,
    /// Jobs refused (tenant quota or global bound).
    pub jobs_rejected: u64,
    /// Jobs finished with a verified report.
    pub jobs_completed: u64,
    /// Jobs finished with an error.
    pub jobs_failed: u64,
    /// Jobs stopped by an explicit cancel.
    pub jobs_cancelled: u64,
    /// Jobs reaped past their wall-clock deadline.
    pub jobs_deadline_exceeded: u64,
    /// Submit-to-dispatch wait, in microseconds.
    pub queue_wait: LatencyStats,
    /// Dispatch-to-finish run time, in microseconds.
    pub run_time: LatencyStats,
}

/// Lock-free per-tenant cells, bumped by submitters and drivers.
#[derive(Debug, Default)]
pub(crate) struct TenantCells {
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub queue_wait: Histogram,
    pub run_time: Histogram,
}

impl TenantCells {
    pub fn snapshot(&self, tenant: &str) -> TenantStats {
        TenantStats {
            tenant: tenant.to_string(),
            jobs_accepted: self.accepted.load(Ordering::Relaxed),
            jobs_rejected: self.rejected.load(Ordering::Relaxed),
            jobs_completed: self.completed.load(Ordering::Relaxed),
            jobs_failed: self.failed.load(Ordering::Relaxed),
            jobs_cancelled: self.cancelled.load(Ordering::Relaxed),
            jobs_deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.stats(),
            run_time: self.run_time.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_builders_clamp_to_one() {
        let q = TenantQuota::default()
            .with_max_queued(0)
            .with_max_in_flight(0);
        assert_eq!(q.max_queued, 1);
        assert_eq!(q.max_in_flight, 1);
        assert_eq!(TenantQuota::default().max_queued, usize::MAX);
        assert_eq!(TenantQuota::default().rate, None);
        assert_eq!(RateLimit::per_sec(0).tokens_per_sec, 1);
        assert_eq!(RateLimit::per_sec(10).with_burst(0).burst, 1);
    }

    #[test]
    fn token_bucket_spends_burst_then_reports_wait() {
        let rate = RateLimit::per_sec(5).with_burst(3);
        let mut bucket = TokenBucket::full(&rate);
        for _ in 0..3 {
            assert_eq!(bucket.try_take(&rate), Ok(()));
        }
        // Bucket drained; the next take must wait for a refill. At
        // 5 tokens/s a whole token is at most 200 ms away.
        let wait = bucket.try_take(&rate).unwrap_err();
        assert!((1..=200).contains(&wait), "wait {wait} ms");
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let rate = RateLimit::per_sec(1000).with_burst(1);
        let mut bucket = TokenBucket::full(&rate);
        assert_eq!(bucket.try_take(&rate), Ok(()));
        // At 1000 tokens/s a token is back within a few ms.
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        loop {
            if bucket.try_take(&rate).is_ok() {
                break;
            }
            assert!(Instant::now() < deadline, "bucket never refilled");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    #[test]
    fn cells_snapshot_carries_latencies() {
        let cells = TenantCells::default();
        cells.accepted.fetch_add(2, Ordering::Relaxed);
        cells.queue_wait.record(100);
        cells.run_time.record(1000);
        let snap = cells.snapshot("acme");
        assert_eq!(snap.tenant, "acme");
        assert_eq!(snap.jobs_accepted, 2);
        assert_eq!(snap.queue_wait.count, 1);
        assert!(snap.run_time.p50 >= 1000);
    }
}
