//! Aggregate service counters.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use serde::Serialize;

/// Aggregate statistics over an engine's lifetime.
///
/// Serializable with the same machinery as
/// [`RuntimeReport`](torus_runtime::RuntimeReport) — the CLI's `--json`
/// mode emits it verbatim.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServiceStats {
    /// Jobs admitted to the queue.
    pub jobs_accepted: u64,
    /// Jobs refused by admission control (queue full or shutting down).
    pub jobs_rejected: u64,
    /// Jobs that finished with a verified report.
    pub jobs_completed: u64,
    /// Jobs that finished with an error; the engine survived each one.
    pub jobs_failed: u64,
    /// Completed jobs that ran in degraded mode (quarantined dead nodes).
    pub jobs_degraded: u64,
    /// Highest queue occupancy observed.
    pub queue_high_water: usize,
    /// Plan-cache lookups served from the cache.
    pub cache_hits: u64,
    /// Plan-cache lookups that had to build a plan.
    pub cache_misses: u64,
    /// Wire bytes moved across all finished jobs.
    pub wire_bytes: u64,
    /// Bytes memcpy'd across all finished jobs (assembly + rearrange).
    pub bytes_copied: u64,
}

impl ServiceStats {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "jobs {}/{} ok ({} failed, {} degraded, {} rejected) | queue hwm {} | \
             cache {}/{} hit | {} wire B | {} copied B",
            self.jobs_completed,
            self.jobs_accepted,
            self.jobs_failed,
            self.jobs_degraded,
            self.jobs_rejected,
            self.queue_high_water,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.wire_bytes,
            self.bytes_copied,
        )
    }

    /// Cache hit rate in `[0, 1]`; `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

/// Lock-free counter cells the drivers bump; snapshotted into
/// [`ServiceStats`] on demand.
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub degraded: AtomicU64,
    pub queue_hwm: AtomicUsize,
    pub wire_bytes: AtomicU64,
    pub bytes_copied: AtomicU64,
}

impl StatCells {
    /// Raises the queue high-water mark to at least `depth`.
    pub fn observe_depth(&self, depth: usize) {
        self.queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Snapshot; `cache` counters are supplied by the caller, which
    /// owns the plan cache's lock.
    pub fn snapshot(&self, cache_hits: u64, cache_misses: u64) -> ServiceStats {
        ServiceStats {
            jobs_accepted: self.accepted.load(Ordering::Relaxed),
            jobs_rejected: self.rejected.load(Ordering::Relaxed),
            jobs_completed: self.completed.load(Ordering::Relaxed),
            jobs_failed: self.failed.load(Ordering::Relaxed),
            jobs_degraded: self.degraded.load(Ordering::Relaxed),
            queue_high_water: self.queue_hwm.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            wire_bytes: self.wire_bytes.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_and_hit_rate() {
        let stats = ServiceStats {
            jobs_accepted: 10,
            jobs_completed: 9,
            jobs_failed: 1,
            cache_hits: 9,
            cache_misses: 1,
            ..Default::default()
        };
        assert!(stats.summary().contains("9/10 ok"));
        assert_eq!(stats.cache_hit_rate(), Some(0.9));
        assert_eq!(ServiceStats::default().cache_hit_rate(), None);
    }

    #[test]
    fn cells_snapshot_round_trips() {
        let cells = StatCells::default();
        cells.accepted.fetch_add(3, Ordering::Relaxed);
        cells.observe_depth(2);
        cells.observe_depth(1);
        let snap = cells.snapshot(5, 2);
        assert_eq!(snap.jobs_accepted, 3);
        assert_eq!(snap.queue_high_water, 2);
        assert_eq!(snap.cache_hits, 5);
        assert_eq!(snap.cache_misses, 2);
    }

    #[test]
    fn stats_serialize_to_json() {
        let stats = ServiceStats {
            jobs_accepted: 2,
            ..Default::default()
        };
        // The offline serde_json stub elides fields; assert the derive
        // wiring works (a real serde_json emits every counter).
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
