//! Aggregate service counters and latency histograms.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use serde::Serialize;
use torus_runtime::JobOp;

/// Buckets in a [`Histogram`]: one per power of two of microseconds,
/// which covers 1 µs .. ~146 hours with ≤2x relative error.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket concurrent latency histogram.
///
/// Values (microseconds by convention) land in power-of-two buckets:
/// bucket `i` holds values in `[2^(i-1), 2^i)` (bucket 0 holds zero).
/// Recording is a pair of relaxed atomic adds — drivers bump it on the
/// hot path without a lock — and quantiles are computed from a snapshot
/// by cumulative count, which makes `p50 ≤ p95 ≤ p99` structural rather
/// than incidental.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    total: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Index of the bucket holding `value`.
    fn bucket(value: u64) -> usize {
        ((u64::BITS - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Upper bound (inclusive) of bucket `idx` — the value a quantile
    /// landing in this bucket reports.
    fn bucket_ceiling(idx: usize) -> u64 {
        if idx >= 63 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.counts[Self::bucket(value)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed))
    }

    /// Summarizes the histogram into count/max plus p50/p95/p99.
    ///
    /// Each percentile reports its bucket's ceiling (capped at the true
    /// observed max), so the estimate errs high by at most 2x and the
    /// three are monotone by construction.
    pub fn stats(&self) -> LatencyStats {
        let buckets = self.buckets();
        let count: u64 = buckets.iter().sum();
        let max = self.max.load(Ordering::Relaxed);
        if count == 0 {
            return LatencyStats::default();
        }
        let quantile = |pct: u64| -> u64 {
            // Rank of the pct-th percentile observation, 1-based,
            // rounded up (p50 of 1 observation is observation 1).
            let rank = (count * pct).div_ceil(100).max(1);
            let mut seen = 0u64;
            for (idx, &n) in buckets.iter().enumerate() {
                seen += n;
                if seen >= rank {
                    return Self::bucket_ceiling(idx).min(max);
                }
            }
            max
        };
        LatencyStats {
            count,
            p50: quantile(50),
            p95: quantile(95),
            p99: quantile(99),
            max,
        }
    }
}

/// Percentile summary of a [`Histogram`] (microseconds by convention).
///
/// All fields are integers so the containing stats types keep `Eq`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct LatencyStats {
    /// Observations recorded.
    pub count: u64,
    /// 50th-percentile estimate (bucket ceiling, ≤ 2x high).
    pub p50: u64,
    /// 95th-percentile estimate.
    pub p95: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact maximum observed.
    pub max: u64,
}

/// Aggregate statistics over an engine's lifetime.
///
/// Serializable with the same machinery as
/// [`RuntimeReport`](torus_runtime::RuntimeReport) — the CLI's `--json`
/// mode emits it verbatim.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServiceStats {
    /// Jobs admitted to the queue.
    pub jobs_accepted: u64,
    /// Jobs refused by admission control (queue full, tenant quota, or
    /// shutting down).
    pub jobs_rejected: u64,
    /// Jobs that finished with a verified report.
    pub jobs_completed: u64,
    /// Jobs that finished with an error; the engine survived each one.
    pub jobs_failed: u64,
    /// Jobs stopped by an explicit cancel (queued or mid-run).
    pub jobs_cancelled: u64,
    /// Jobs reaped past their wall-clock deadline.
    pub jobs_deadline_exceeded: u64,
    /// Deadline expirations triggered by the watchdog thread itself (a
    /// subset of `jobs_deadline_exceeded` — deadlines can also be
    /// enforced by external token holders).
    pub watchdog_reaps: u64,
    /// Completed jobs that ran in degraded mode (quarantined dead nodes).
    pub jobs_degraded: u64,
    /// Highest queue occupancy observed.
    pub queue_high_water: usize,
    /// Plan-cache lookups served from the cache.
    pub cache_hits: u64,
    /// Plan-cache lookups that had to build a plan.
    pub cache_misses: u64,
    /// Wire bytes moved across all finished jobs.
    pub wire_bytes: u64,
    /// Bytes memcpy'd across all finished jobs (assembly + rearrange).
    pub bytes_copied: u64,
    /// Submit-to-dispatch wait across all jobs, in microseconds.
    pub queue_wait: LatencyStats,
    /// Dispatch-to-finish run time across all jobs, in microseconds.
    pub run_time: LatencyStats,
    /// Jobs accepted per operation, indexed by [`JobOp::index`] (slot
    /// order is [`JobOp::NAMES`]: alltoall, broadcast, scatter, gather,
    /// allgather, reduce, allreduce).
    pub ops_accepted: [u64; JobOp::COUNT],
    /// Jobs completed per operation, same slot order.
    pub ops_completed: [u64; JobOp::COUNT],
}

impl ServiceStats {
    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "jobs {}/{} ok ({} failed, {} cancelled, {} deadline, {} degraded, {} rejected) | \
             queue hwm {} | cache {}/{} hit | {} wire B | {} copied B | \
             wait p50/p95/p99 {}/{}/{} µs | run p50/p95/p99 {}/{}/{} µs",
            self.jobs_completed,
            self.jobs_accepted,
            self.jobs_failed,
            self.jobs_cancelled,
            self.jobs_deadline_exceeded,
            self.jobs_degraded,
            self.jobs_rejected,
            self.queue_high_water,
            self.cache_hits,
            self.cache_hits + self.cache_misses,
            self.wire_bytes,
            self.bytes_copied,
            self.queue_wait.p50,
            self.queue_wait.p95,
            self.queue_wait.p99,
            self.run_time.p50,
            self.run_time.p95,
            self.run_time.p99,
        )
    }

    /// Cache hit rate in `[0, 1]`; `None` before any lookup.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// `(accepted, completed)` counters for one op by name, or `None`
    /// for an unknown name. Names are [`JobOp::NAMES`].
    pub fn op_counts(&self, name: &str) -> Option<(u64, u64)> {
        let idx = JobOp::NAMES.iter().position(|n| *n == name)?;
        Some((self.ops_accepted[idx], self.ops_completed[idx]))
    }
}

/// Lock-free counter cells the drivers bump; snapshotted into
/// [`ServiceStats`] on demand.
#[derive(Debug, Default)]
pub(crate) struct StatCells {
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub cancelled: AtomicU64,
    pub deadline_exceeded: AtomicU64,
    pub watchdog_reaps: AtomicU64,
    pub degraded: AtomicU64,
    pub queue_hwm: AtomicUsize,
    pub wire_bytes: AtomicU64,
    pub bytes_copied: AtomicU64,
    pub queue_wait: Histogram,
    pub run_time: Histogram,
    pub ops_accepted: [AtomicU64; JobOp::COUNT],
    pub ops_completed: [AtomicU64; JobOp::COUNT],
}

impl StatCells {
    /// Raises the queue high-water mark to at least `depth`.
    pub fn observe_depth(&self, depth: usize) {
        self.queue_hwm.fetch_max(depth, Ordering::Relaxed);
    }

    /// Snapshot; `cache` counters are supplied by the caller, which
    /// owns the plan cache's lock.
    pub fn snapshot(&self, cache_hits: u64, cache_misses: u64) -> ServiceStats {
        ServiceStats {
            jobs_accepted: self.accepted.load(Ordering::Relaxed),
            jobs_rejected: self.rejected.load(Ordering::Relaxed),
            jobs_completed: self.completed.load(Ordering::Relaxed),
            jobs_failed: self.failed.load(Ordering::Relaxed),
            jobs_cancelled: self.cancelled.load(Ordering::Relaxed),
            jobs_deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            watchdog_reaps: self.watchdog_reaps.load(Ordering::Relaxed),
            jobs_degraded: self.degraded.load(Ordering::Relaxed),
            queue_high_water: self.queue_hwm.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            wire_bytes: self.wire_bytes.load(Ordering::Relaxed),
            bytes_copied: self.bytes_copied.load(Ordering::Relaxed),
            queue_wait: self.queue_wait.stats(),
            run_time: self.run_time.stats(),
            ops_accepted: std::array::from_fn(|i| self.ops_accepted[i].load(Ordering::Relaxed)),
            ops_completed: std::array::from_fn(|i| self.ops_completed[i].load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_and_hit_rate() {
        let stats = ServiceStats {
            jobs_accepted: 10,
            jobs_completed: 9,
            jobs_failed: 1,
            cache_hits: 9,
            cache_misses: 1,
            ..Default::default()
        };
        assert!(stats.summary().contains("9/10 ok"));
        assert_eq!(stats.cache_hit_rate(), Some(0.9));
        assert_eq!(ServiceStats::default().cache_hit_rate(), None);
    }

    #[test]
    fn cells_snapshot_round_trips() {
        let cells = StatCells::default();
        cells.accepted.fetch_add(3, Ordering::Relaxed);
        cells.observe_depth(2);
        cells.observe_depth(1);
        let snap = cells.snapshot(5, 2);
        assert_eq!(snap.jobs_accepted, 3);
        assert_eq!(snap.queue_high_water, 2);
        assert_eq!(snap.cache_hits, 5);
        assert_eq!(snap.cache_misses, 2);
    }

    #[test]
    fn stats_serialize_to_json() {
        let stats = ServiceStats {
            jobs_accepted: 2,
            ..Default::default()
        };
        // The offline serde_json stub elides fields; assert the derive
        // wiring works (a real serde_json emits every counter).
        let json = serde_json::to_string(&stats).unwrap();
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn histogram_empty_stats_are_zero() {
        assert_eq!(Histogram::default().stats(), LatencyStats::default());
    }

    #[test]
    fn histogram_percentiles_are_monotone_and_bound_the_data() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.stats();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        // p50 of 1..=1000 is 500; the bucket ceiling estimate may be up
        // to 2x high but never below the true value.
        assert!((500..=1000).contains(&s.p50), "p50 = {}", s.p50);
        assert!(s.p99 >= 990);
    }

    #[test]
    fn histogram_handles_zero_and_huge_values() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.stats();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, 0, "first of two sorted observations is 0");
    }

    #[test]
    fn histogram_single_observation_is_every_percentile() {
        let h = Histogram::default();
        h.record(300);
        let s = h.stats();
        // 300 lands in bucket [256, 512); ceiling 511 capped to max 300.
        assert_eq!(s.p50, 300);
        assert_eq!(s.p95, 300);
        assert_eq!(s.p99, 300);
    }
}
