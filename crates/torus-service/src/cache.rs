//! The LRU plan cache shared by every job the engine runs.
//!
//! Preparing an exchange is the expensive part of a job: building the
//! schedule, the seeding tables, the verification tables, and the step
//! plan is `O(N²)` in nodes, while executing a cached plan is pure data
//! movement. Two jobs with the same `(shape, block_bytes, workers)` key
//! execute byte-for-byte identical schedules, so the cache hands both
//! the *same* reference-counted [`PreparedExchange`] and
//! [`StepPlan`] — plus a shared [`PoolBank`] so the warm frame buffers
//! one job's workers grew are recycled by the next job's workers.
//!
//! Everything cached is immutable schedule state (the `PoolBank` is
//! internally synchronized), so sharing an entry across concurrently
//! executing jobs is safe; per-run mutable state lives in the runtime's
//! per-run context, never in the cache.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use alltoall_core::steps::StepPlan;
use alltoall_core::PreparedExchange;
use torus_runtime::{CollectivePlan, JobOp, PoolBank};
use torus_topology::TorusShape;

/// Cache key: jobs agreeing on all four fields share a plan.
///
/// `workers` is the *resolved* per-job worker count (after clamping to
/// the node count and the pool size), not the raw config value, so
/// `workers: None` and an explicit `workers: Some(default)` hit the
/// same entry. `op` is part of the key because different collectives
/// (and different roots of the same collective) lower to different
/// step manifests.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Logical torus shape of the exchange.
    pub shape: TorusShape,
    /// Bytes per `(src, dst)` block.
    pub block_bytes: usize,
    /// Resolved worker-thread count the job will run with.
    pub workers: usize,
    /// The operation the plan executes (all-to-all or a collective,
    /// including its root/operator/dtype parameters).
    pub op: JobOp,
}

/// The op-specific immutable schedule state of a cache entry.
pub enum PlanVariant {
    /// An all-to-all exchange plan.
    Alltoall {
        /// Prepared schedule, seeding, and verification tables.
        prepared: Arc<PreparedExchange>,
        /// Flattened per-step execution plan.
        plan: Arc<StepPlan>,
    },
    /// A lowered collective send manifest.
    Collective {
        /// The validated collective plan.
        plan: Arc<CollectivePlan>,
    },
}

/// One cache entry: the immutable schedule state shared across jobs.
pub struct CachedPlan {
    /// The op-specific plan.
    pub variant: PlanVariant,
    /// Warm frame pools recycled across jobs with this key.
    pub bank: Arc<PoolBank>,
}

impl std::fmt::Debug for CachedPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("CachedPlan");
        match &self.variant {
            PlanVariant::Alltoall { plan, .. } => d
                .field("op", &"alltoall")
                .field("shape", plan.shape())
                .field("total_steps", &plan.total_steps()),
            PlanVariant::Collective { plan } => d
                .field("op", &plan.op().kind())
                .field("shape", plan.shape())
                .field("total_steps", &plan.num_steps()),
        }
        .finish_non_exhaustive()
    }
}

/// Outcome of [`PlanCache::begin_lookup`]: what the caller must do
/// next for its key.
#[derive(Debug)]
pub enum Lookup {
    /// The plan is cached — use it. Counted as a hit.
    Hit(Arc<CachedPlan>),
    /// Nothing cached and nobody building: the caller now owns the
    /// build for this key and must finish with [`PlanCache::complete_build`]
    /// or [`PlanCache::abandon_build`]. Counted as a miss.
    Build,
    /// Another caller is already building this key. Wait (on whatever
    /// condvar the owner pairs with the cache mutex) and retry; counted
    /// as neither hit nor miss — the retry decides.
    Wait,
}

/// A bounded LRU map from [`PlanKey`] to [`CachedPlan`], with
/// single-flight build coordination.
///
/// Not internally synchronized — the engine wraps it in a `Mutex` held
/// only for lookup/insert, never while a job executes. Blocking for an
/// in-flight build happens on a condvar paired with that mutex, never
/// inside the cache itself.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<PlanKey, (Arc<CachedPlan>, u64)>,
    /// Keys whose plan is being built right now. A key in this set and
    /// in `entries` at once is impossible: `complete_build` does both
    /// transitions under the caller's single cache lock.
    building: HashSet<PlanKey>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
            building: HashSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Single-flight lookup: a hit returns the plan, a cold key claims
    /// the build for this caller, and a key someone else is already
    /// building says [`Lookup::Wait`]. Exactly one caller per cold key
    /// ever sees [`Lookup::Build`], so concurrent jobs sharing a key
    /// pay for one `O(N²)` plan construction, not one each.
    pub fn begin_lookup(&mut self, key: &PlanKey) -> Lookup {
        self.tick += 1;
        if let Some((plan, used)) = self.entries.get_mut(key) {
            *used = self.tick;
            self.hits += 1;
            return Lookup::Hit(Arc::clone(plan));
        }
        if self.building.contains(key) {
            return Lookup::Wait;
        }
        self.building.insert(key.clone());
        self.misses += 1;
        Lookup::Build
    }

    /// Publishes a finished build claimed via [`Lookup::Build`] and
    /// releases the key's build claim in one step. The caller must
    /// notify its condvar afterwards so waiters retry.
    pub fn complete_build(&mut self, key: PlanKey, plan: Arc<CachedPlan>) {
        self.building.remove(&key);
        self.insert(key, plan);
    }

    /// Releases a build claim without publishing a plan (the build
    /// failed). The caller must notify its condvar afterwards; a
    /// retrying waiter will claim the build itself and surface the
    /// same construction error.
    pub fn abandon_build(&mut self, key: &PlanKey) {
        self.building.remove(key);
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &PlanKey) -> Option<Arc<CachedPlan>> {
        self.tick += 1;
        match self.entries.get_mut(key) {
            Some((plan, used)) => {
                *used = self.tick;
                self.hits += 1;
                Some(Arc::clone(plan))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts `plan` under `key`, evicting the least-recently-used
    /// entry if the cache is at capacity. Jobs still holding an `Arc`
    /// to an evicted plan keep running — eviction only forgets the
    /// entry, it never invalidates in-flight work.
    pub fn insert(&mut self, key: PlanKey, plan: Arc<CachedPlan>) {
        self.tick += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (plan, self.tick));
    }

    /// Plans currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to build a plan.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(r: u32, c: u32) -> PlanKey {
        PlanKey {
            shape: TorusShape::new_2d(r, c).unwrap(),
            block_bytes: 64,
            workers: 2,
            op: JobOp::Alltoall,
        }
    }

    fn entry(shape: &TorusShape) -> Arc<CachedPlan> {
        let prepared = Arc::new(PreparedExchange::new(shape).unwrap());
        let plan = prepared.step_plan_arc();
        Arc::new(CachedPlan {
            variant: PlanVariant::Alltoall { prepared, plan },
            bank: Arc::new(PoolBank::new()),
        })
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let mut cache = PlanCache::new(4);
        let k = key(2, 2);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), entry(&k.shape));
        assert!(cache.get(&k).is_some());
        assert!(cache.get(&k).is_some());
        assert_eq!(cache.hits(), 2);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let mut cache = PlanCache::new(4);
        let a = key(2, 2);
        let mut b = key(2, 2);
        b.block_bytes = 128;
        cache.insert(a.clone(), entry(&a.shape));
        assert!(cache.get(&b).is_none(), "block_bytes is part of the key");
        let mut c = key(2, 2);
        c.workers = 4;
        assert!(cache.get(&c).is_none(), "workers is part of the key");
        let mut d = key(2, 2);
        d.op = JobOp::Collective(torus_runtime::CollectiveOp::Allgather);
        assert!(cache.get(&d).is_none(), "op is part of the key");
        let mut e = key(2, 2);
        e.op = JobOp::Collective(torus_runtime::CollectiveOp::Broadcast { root: 1 });
        assert!(cache.get(&e).is_none(), "op parameters are part of the key");
        assert!(cache.get(&a).is_some());
    }

    #[test]
    fn lru_evicts_the_coldest_entry_at_capacity() {
        let mut cache = PlanCache::new(2);
        let a = key(2, 2);
        let b = key(2, 4);
        let c = key(4, 4);
        cache.insert(a.clone(), entry(&a.shape));
        cache.insert(b.clone(), entry(&b.shape));
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        assert!(cache.get(&a).is_some());
        cache.insert(c.clone(), entry(&c.shape));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&a).is_some(), "recently used entry survives");
        assert!(cache.get(&c).is_some(), "new entry present");
        assert!(cache.get(&b).is_none(), "LRU entry evicted");
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let mut cache = PlanCache::new(2);
        let a = key(2, 2);
        let b = key(2, 4);
        cache.insert(a.clone(), entry(&a.shape));
        cache.insert(b.clone(), entry(&b.shape));
        cache.insert(a.clone(), entry(&a.shape));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&b).is_some());
    }

    #[test]
    fn single_flight_admits_exactly_one_builder_per_cold_key() {
        let mut cache = PlanCache::new(4);
        let k = key(2, 2);
        assert!(matches!(cache.begin_lookup(&k), Lookup::Build));
        // Second and third lookups while the build is in flight wait —
        // they neither build nor count toward hits or misses.
        assert!(matches!(cache.begin_lookup(&k), Lookup::Wait));
        assert!(matches!(cache.begin_lookup(&k), Lookup::Wait));
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        cache.complete_build(k.clone(), entry(&k.shape));
        // Retrying waiters now hit; the cold key cost exactly one miss.
        assert!(matches!(cache.begin_lookup(&k), Lookup::Hit(_)));
        assert!(matches!(cache.begin_lookup(&k), Lookup::Hit(_)));
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
    }

    #[test]
    fn abandoned_build_lets_the_next_lookup_claim_the_key() {
        let mut cache = PlanCache::new(4);
        let k = key(2, 2);
        assert!(matches!(cache.begin_lookup(&k), Lookup::Build));
        cache.abandon_build(&k);
        // The failed build published nothing; a retrying waiter claims
        // the build itself rather than waiting forever.
        assert!(matches!(cache.begin_lookup(&k), Lookup::Build));
        assert_eq!(cache.misses(), 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn shared_entries_are_the_same_allocation() {
        let mut cache = PlanCache::new(2);
        let k = key(2, 2);
        cache.insert(k.clone(), entry(&k.shape));
        let first = cache.get(&k).unwrap();
        let second = cache.get(&k).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        match (&first.variant, &second.variant) {
            (PlanVariant::Alltoall { plan: a, .. }, PlanVariant::Alltoall { plan: b, .. }) => {
                assert!(Arc::ptr_eq(a, b));
            }
            _ => panic!("expected all-to-all entries"),
        }
    }
}
