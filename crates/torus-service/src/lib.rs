#![warn(missing_docs)]

//! A persistent multi-job exchange engine over the torus runtime.
//!
//! Every entry point below [`torus_runtime::Runtime`] executes *one*
//! exchange: it spawns worker threads, builds the step plan, runs, and
//! tears everything down. A deployment that serves many transposes,
//! FFT shuffles, and collective phases per second cannot afford that
//! per-call setup, so this crate keeps the expensive state alive across
//! jobs:
//!
//! * **One shared [`WorkerPool`](torus_runtime::WorkerPool)** executes
//!   every job. Worker threads park between jobs instead of being
//!   joined; a run reserves a *gang* of threads atomically, so
//!   concurrent jobs time-share the pool without deadlock.
//! * **A bounded FIFO queue with admission control** decouples
//!   submission from execution. [`Engine::submit`] returns immediately
//!   with a [`JobHandle`]; when the queue is at its configured depth the
//!   job is rejected with [`SubmitError::QueueFull`] instead of growing
//!   without bound.
//! * **An LRU plan cache** keyed by `(shape, block_bytes, workers)`
//!   shares one [`PreparedExchange`](alltoall_core::PreparedExchange),
//!   one [`StepPlan`](alltoall_core::steps::StepPlan), and one warm
//!   [`PoolBank`](torus_runtime::PoolBank) of frame buffers across every
//!   job with the same key — steady-state submission does no schedule
//!   construction and no hot-path allocation.
//! * **Failure isolation**: each run owns its abort flag, retained
//!   frames, and failure record, so a job that aborts or degrades under
//!   an injected [`FaultPlan`](torus_runtime::FaultPlan) cannot poison
//!   the pool, the cache, or any other job.
//!
//! [`Engine::shutdown`] drains queued jobs, joins the drivers and the
//! pool, and returns the aggregate [`ServiceStats`].
//!
//! ```
//! use torus_service::{Engine, EngineConfig, PayloadSpec};
//! use torus_runtime::RuntimeConfig;
//! use torus_topology::TorusShape;
//!
//! let engine = Engine::new(EngineConfig::default());
//! let shape = TorusShape::new_2d(4, 4).unwrap();
//! let cfg = RuntimeConfig::default().with_workers(2);
//! let job = engine
//!     .submit(shape, PayloadSpec::Pattern, cfg)
//!     .unwrap();
//! let result = job.wait();
//! assert!(result.report.as_ref().unwrap().verified);
//! let stats = engine.shutdown();
//! assert_eq!(stats.jobs_completed, 1);
//! ```

mod cache;
mod engine;
mod job;
mod stats;
mod tenant;

pub use cache::{CachedPlan, PlanCache, PlanKey, PlanVariant};
pub use engine::{CancelOutcome, Engine, EngineConfig};
pub use job::{EventHook, JobEvent, JobHandle, JobResult, JobStatus, PayloadSpec, SubmitError};
// Collective vocabulary, re-exported so the daemon and clients need no
// direct `torus-runtime` edge just to name an op.
pub use stats::{Histogram, LatencyStats, ServiceStats, HISTOGRAM_BUCKETS};
pub use tenant::{RateLimit, TenantQuota, TenantStats, DEFAULT_TENANT};
pub use torus_runtime::{CollectiveOp, Dtype, JobOp, ReduceOp};
