//! The engine: tenant-aware admission, driver threads, and the shared
//! pool.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use alltoall_core::PreparedExchange;
use torus_runtime::{
    CancelToken, CollectivePlan, CollectiveRuntime, FailureReason, JobOp, Runtime, RuntimeConfig,
    RuntimeError, WorkerPool,
};
use torus_topology::TorusShape;

use crate::cache::{CachedPlan, Lookup, PlanCache, PlanKey, PlanVariant};
use crate::job::{
    EventHook, JobEvent, JobHandle, JobResult, JobState, JobStatus, PayloadSpec, SubmitError,
};
use crate::stats::{ServiceStats, StatCells};
use crate::tenant::{TenantCells, TenantQuota, TenantStats, TokenBucket, DEFAULT_TENANT};

fn lk<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sizing knobs for an [`Engine`].
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads in the shared pool (every job's gang is carved
    /// from these). Default: [`torus_sim::default_threads`].
    pub pool_size: usize,
    /// Maximum queued (admitted but not yet running) jobs across all
    /// tenants; submissions beyond this are rejected. Default 64.
    pub queue_depth: usize,
    /// Driver threads, i.e. how many jobs execute concurrently
    /// (time-sharing the pool). Default 4.
    pub drivers: usize,
    /// Plans retained by the LRU cache. Default 8.
    pub cache_capacity: usize,
    /// Quota applied to tenants that have no explicit override.
    /// Default: unlimited (the global `queue_depth` still bounds them).
    pub default_quota: TenantQuota,
    /// Optional job-lifecycle observer, invoked by drivers on
    /// [`JobEvent::Started`]/[`JobEvent::Finished`]. Default: none.
    pub event_hook: Option<EventHook>,
    /// Deadline applied to jobs that request none. Default: none.
    pub default_deadline: Option<Duration>,
    /// Server-side cap on any job's wall-clock deadline. When set, every
    /// job runs under an effective deadline of at most this — including
    /// jobs that asked for none. Default: none (deadlines are opt-in).
    pub max_deadline: Option<Duration>,
    /// How often the watchdog scans running jobs for expired deadlines.
    /// Default 100 ms.
    pub watchdog_interval: Duration,
    /// Extra no-progress slack past a job's deadline before the
    /// watchdog reaps it. Default: zero (reap at the deadline).
    pub watchdog_grace: Duration,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("pool_size", &self.pool_size)
            .field("queue_depth", &self.queue_depth)
            .field("drivers", &self.drivers)
            .field("cache_capacity", &self.cache_capacity)
            .field("default_quota", &self.default_quota)
            .field("event_hook", &self.event_hook.as_ref().map(|_| "set"))
            .field("default_deadline", &self.default_deadline)
            .field("max_deadline", &self.max_deadline)
            .field("watchdog_interval", &self.watchdog_interval)
            .field("watchdog_grace", &self.watchdog_grace)
            .finish()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            pool_size: torus_sim::default_threads(),
            queue_depth: 64,
            drivers: 4,
            cache_capacity: 8,
            default_quota: TenantQuota::default(),
            event_hook: None,
            default_deadline: None,
            max_deadline: None,
            watchdog_interval: Duration::from_millis(100),
            watchdog_grace: Duration::ZERO,
        }
    }
}

impl EngineConfig {
    /// Sets the shared pool's thread count.
    pub fn with_pool_size(mut self, size: usize) -> Self {
        self.pool_size = size.max(1);
        self
    }

    /// Sets the admission-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the number of concurrently executing jobs.
    pub fn with_drivers(mut self, drivers: usize) -> Self {
        self.drivers = drivers.max(1);
        self
    }

    /// Sets the plan-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Sets the quota for tenants without an explicit override.
    pub fn with_default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Installs a job-lifecycle observer. Drivers invoke it
    /// synchronously on start and finish; it must be fast and must not
    /// call back into the engine.
    pub fn with_event_hook(mut self, hook: EventHook) -> Self {
        self.event_hook = Some(hook);
        self
    }

    /// Sets the deadline applied to jobs that request none.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Sets the server-side deadline cap. Every job's effective deadline
    /// is clamped to at most this, including jobs that asked for none.
    pub fn with_max_deadline(mut self, max: Duration) -> Self {
        self.max_deadline = Some(max);
        self
    }

    /// Tunes the watchdog: scan `interval` and no-progress `grace` past
    /// a job's deadline before it is reaped.
    pub fn with_watchdog(mut self, interval: Duration, grace: Duration) -> Self {
        self.watchdog_interval = interval;
        self.watchdog_grace = grace;
        self
    }
}

/// What [`Engine::cancel`] found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelOutcome {
    /// The job was still queued: it has been removed and finished as
    /// [`JobStatus::Cancelled`] before this call returned.
    Cancelled,
    /// The job is running: its cancel token was triggered and the run
    /// will abort cooperatively at the next step boundary, reaching
    /// [`JobStatus::Cancelled`] shortly.
    Cancelling,
    /// No live job has this id — it already finished, or never existed.
    Unknown,
}

/// A job sitting in the admission queue.
struct QueuedJob {
    id: u64,
    shape: TorusShape,
    op: JobOp,
    payload: PayloadSpec,
    config: RuntimeConfig,
    state: Arc<JobState>,
    tenant: Arc<str>,
    tenant_cells: Arc<TenantCells>,
    submitted_at: Instant,
    /// Effective wall-clock deadline (already clamped to the server
    /// max), measured from dispatch. `None` runs unbounded.
    deadline: Option<Duration>,
    /// The job's cancel trigger, created at admission so `cancel` can
    /// reach the job in every pre-terminal state without racing the
    /// queue→running handoff.
    token: CancelToken,
}

/// One live (admitted, not yet terminal) job's cancellation state, kept
/// in [`Shared::lifecycle`] so `cancel` and the watchdog can reach it
/// without touching the queue shards.
struct LifecycleEntry {
    token: CancelToken,
    /// When the watchdog may reap the job (dispatch time + deadline).
    /// `None` while queued or when the job has no deadline.
    reap_at: Option<Instant>,
}

/// One tenant's slice of the queue.
struct TenantEntry {
    jobs: VecDeque<QueuedJob>,
    in_flight: usize,
    quota: TenantQuota,
    cells: Arc<TenantCells>,
    /// Token-bucket state, created full on the first submission after
    /// the quota gains a rate limit.
    bucket: Option<TokenBucket>,
}

/// How many ways the tenant queue map is sharded. Submission, status,
/// and in-flight accounting for different tenants contend only within a
/// shard; the global bound and the drain condition live in atomics.
pub const QUEUE_SHARDS: usize = 16;

/// FNV-1a over the tenant name, reduced to a shard index. Stable across
/// runs so a tenant's shard never migrates within a process lifetime.
fn shard_of(tenant: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % QUEUE_SHARDS as u64) as usize
}

/// One shard of the tenant queue map: a slice of the tenants with their
/// FIFOs and in-flight counts. The global queue bound (`total_queued`),
/// the accepting flag, and the fair-dispatch cursor live in [`Shared`],
/// so admission and status for different tenants never serialize on a
/// single mutex; only the dispatch rotation (drivers-only, a handful of
/// threads) consults the global first-seen order.
struct QueueShard {
    tenants: HashMap<Arc<str>, TenantEntry>,
}

struct Shared {
    pool: WorkerPool,
    /// The sharded tenant queue map, indexed by [`shard_of`].
    shards: Vec<Mutex<QueueShard>>,
    /// Every tenant in first-submission order, for stats snapshots.
    tenant_order: Mutex<Vec<Arc<str>>>,
    /// Jobs admitted but not yet claimed, across all shards. Submission
    /// reserves a slot optimistically (fetch_add, undone on rejection)
    /// so the configured depth stays a hard bound without a global lock.
    total_queued: AtomicUsize,
    /// Cleared by shutdown; checked lock-free on every submission.
    accepting: AtomicBool,
    /// Index into `tenant_order` where the next driver claim starts its
    /// scan. Advanced past each claimed tenant so bursts interleave —
    /// a tenant that just dispatched goes to the back of the rotation.
    /// Racy across drivers by design; fairness is approximate under
    /// concurrency, exact with a single driver.
    claim_cursor: AtomicUsize,
    /// Wakeup generation for `work`: bumped (under this mutex) by every
    /// queue mutation a sleeping driver could care about — enqueue,
    /// in-flight release, quota change, shutdown. Drivers re-scan when
    /// the generation moves, so a wakeup between their failed claim and
    /// their wait is never lost.
    signal: Mutex<u64>,
    work: Condvar,
    cache: Mutex<PlanCache>,
    /// Signalled (under the `cache` mutex) whenever a single-flight
    /// plan build completes or is abandoned, so drivers waiting on a
    /// key someone else is building re-run their lookup.
    plan_ready: Condvar,
    cells: StatCells,
    queue_depth: usize,
    default_quota: TenantQuota,
    hook: Option<EventHook>,
    /// Every live job's cancel token and reap deadline, keyed by job id.
    /// Entries are inserted at admission and removed on every terminal
    /// path. Lock ordering: a queue shard may be held while taking this
    /// lock, never the reverse.
    lifecycle: Mutex<HashMap<u64, LifecycleEntry>>,
    default_deadline: Option<Duration>,
    max_deadline: Option<Duration>,
    watchdog_grace: Duration,
    /// Watchdog stop flag; flipped under the mutex and signalled so the
    /// watchdog's timed wait exits promptly on shutdown.
    watchdog_stop: Mutex<bool>,
    watchdog_cv: Condvar,
}

impl Shared {
    fn shard(&self, tenant: &str) -> &Mutex<QueueShard> {
        &self.shards[shard_of(tenant)]
    }

    /// The tenant's entry in `shard`, created with the default quota
    /// (and registered in the global first-seen order) on first sight.
    fn entry_mut<'a>(&self, shard: &'a mut QueueShard, tenant: &str) -> &'a mut TenantEntry {
        if !shard.tenants.contains_key(tenant) {
            let name: Arc<str> = Arc::from(tenant);
            lk(&self.tenant_order).push(Arc::clone(&name));
            shard.tenants.insert(
                name,
                TenantEntry {
                    jobs: VecDeque::new(),
                    in_flight: 0,
                    quota: self.default_quota,
                    cells: Arc::new(TenantCells::default()),
                    bucket: None,
                },
            );
        }
        shard.tenants.get_mut(tenant).expect("entry just ensured")
    }

    /// Returns a reserved-but-unused queue slot after a rejection.
    /// During shutdown a drain-waiting driver may be blocked on exactly
    /// this reservation reaching zero, so wake everyone then; the
    /// common accepting-path rejection stays signal-free.
    fn unreserve(&self) {
        self.total_queued.fetch_sub(1, Ordering::SeqCst);
        if !self.accepting.load(Ordering::SeqCst) {
            self.signal_work(true);
        }
    }

    /// Bumps the wakeup generation and wakes `all` (or one) drivers.
    fn signal_work(&self, all: bool) {
        *lk(&self.signal) += 1;
        if all {
            self.work.notify_all();
        } else {
            self.work.notify_one();
        }
    }

    /// Claims one job round-robin across tenants in first-seen order:
    /// the first tenant at or after the claim cursor with queued work
    /// and spare in-flight budget. The order is snapshotted outside any
    /// shard lock (the registration path locks shard-then-order, so
    /// holding order across shard locks here would invert and deadlock);
    /// each candidate's shard is then locked individually, so a claim
    /// scan never stalls admission to unrelated shards.
    fn claim_any(&self) -> Option<QueuedJob> {
        if self.total_queued.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let order: Vec<Arc<str>> = lk(&self.tenant_order).clone();
        let n = order.len();
        if n == 0 {
            return None;
        }
        let start = self.claim_cursor.load(Ordering::Relaxed);
        for k in 0..n {
            let i = (start + k) % n;
            let name = &order[i];
            let mut shard = lk(self.shard(name));
            let entry = shard.tenants.get_mut(name).expect("ordered tenant exists");
            if !entry.jobs.is_empty() && entry.in_flight < entry.quota.max_in_flight {
                let job = entry.jobs.pop_front().expect("checked non-empty");
                entry.in_flight += 1;
                self.claim_cursor.store((i + 1) % n, Ordering::Relaxed);
                self.total_queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }
    /// Backoff hint for overload rejections: half the median run time
    /// (one of the in-flight jobs is likely to free a slot by then),
    /// clamped to 1..=5000 ms, defaulting to 50 ms with no history.
    fn retry_hint_ms(&self) -> u64 {
        let p50_us = self.cells.run_time.stats().p50;
        if p50_us == 0 {
            50
        } else {
            (p50_us / 2000).clamp(1, 5000)
        }
    }

    fn fire(&self, event: JobEvent<'_>) {
        if let Some(hook) = &self.hook {
            hook(event);
        }
    }

    /// The deadline actually enforced for a job that requested
    /// `requested`: the request (or the engine default), clamped to the
    /// server-side max. When a max is configured even jobs that asked
    /// for no deadline get it.
    fn effective_deadline(&self, requested: Option<Duration>) -> Option<Duration> {
        let wanted = requested.or(self.default_deadline);
        match (wanted, self.max_deadline) {
            (Some(d), Some(max)) => Some(d.min(max)),
            (None, Some(max)) => Some(max),
            (d, None) => d,
        }
    }

    /// Finishes a job plucked out of the queue by [`Engine::cancel`]:
    /// terminal [`JobStatus::Cancelled`], cancelled counters (books stay
    /// accepted == completed + failed + cancelled + deadline_exceeded),
    /// and a `Finished` event so the daemon journals the terminal record.
    fn finish_cancelled_queued(&self, job: QueuedJob) {
        lk(&self.lifecycle).remove(&job.id);
        self.cells.cancelled.fetch_add(1, Ordering::Relaxed);
        job.tenant_cells.cancelled.fetch_add(1, Ordering::Relaxed);
        self.total_queued.fetch_sub(1, Ordering::SeqCst);
        let result = job.state.finish(
            JobStatus::Cancelled,
            JobResult {
                job_id: job.id,
                report: None,
                deliveries: None,
                error: Some("cancelled before dispatch".to_string()),
                cache_hit: false,
            },
        );
        self.fire(JobEvent::Finished {
            job_id: job.id,
            tenant: &job.tenant,
            status: JobStatus::Cancelled,
            result: &result,
        });
        // The freed slot matters to shutdown's drain condition.
        self.signal_work(true);
    }
}

/// Watchdog loop: every `interval`, expire the token of any running job
/// past its deadline plus the engine's grace. The driver that owns the
/// job observes the trigger, aborts the run cooperatively, and accounts
/// the [`JobStatus::DeadlineExceeded`] terminal state — the watchdog
/// itself only pulls triggers, so it can never race a finishing job.
fn watchdog_loop(shared: &Shared, interval: Duration) {
    let mut stop = lk(&shared.watchdog_stop);
    loop {
        if *stop {
            return;
        }
        let (guard, _) = shared
            .watchdog_cv
            .wait_timeout(stop, interval)
            .unwrap_or_else(PoisonError::into_inner);
        stop = guard;
        if *stop {
            return;
        }
        let now = Instant::now();
        let lifecycle = lk(&shared.lifecycle);
        for entry in lifecycle.values() {
            if let Some(reap_at) = entry.reap_at {
                if now >= reap_at + shared.watchdog_grace && entry.token.expire() {
                    shared.cells.watchdog_reaps.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// A persistent multi-job exchange engine.
///
/// See the [crate docs](crate) for the execution model. Construction
/// spawns the worker pool and the driver threads; they idle until jobs
/// arrive and survive across jobs until [`shutdown`](Engine::shutdown).
pub struct Engine {
    shared: Arc<Shared>,
    drivers: Mutex<Vec<JoinHandle<()>>>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
    next_id: AtomicU64,
    /// The final stats snapshot, taken exactly once after every driver
    /// has joined. Serializes concurrent `shutdown` callers: the first
    /// does the teardown under this lock, later callers (and re-calls)
    /// get the same frozen snapshot instead of racing the join.
    final_stats: Mutex<Option<ServiceStats>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("pool_size", &self.shared.pool.size())
            .field("queue_depth", &self.shared.queue_depth)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts an engine: spawns the shared pool and the driver threads.
    pub fn new(config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            pool: WorkerPool::new(config.pool_size.max(1)),
            shards: (0..QUEUE_SHARDS)
                .map(|_| {
                    Mutex::new(QueueShard {
                        tenants: HashMap::new(),
                    })
                })
                .collect(),
            tenant_order: Mutex::new(Vec::new()),
            total_queued: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            claim_cursor: AtomicUsize::new(0),
            signal: Mutex::new(0),
            work: Condvar::new(),
            cache: Mutex::new(PlanCache::new(config.cache_capacity)),
            plan_ready: Condvar::new(),
            cells: StatCells::default(),
            queue_depth: config.queue_depth.max(1),
            default_quota: config.default_quota,
            hook: config.event_hook,
            lifecycle: Mutex::new(HashMap::new()),
            default_deadline: config.default_deadline,
            max_deadline: config.max_deadline,
            watchdog_grace: config.watchdog_grace,
            watchdog_stop: Mutex::new(false),
            watchdog_cv: Condvar::new(),
        });
        let drivers = (0..config.drivers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("torus-driver-{i}"))
                    .spawn(move || drive(&shared))
                    .expect("spawn driver thread")
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            let interval = config.watchdog_interval.max(Duration::from_millis(1));
            std::thread::Builder::new()
                .name("torus-watchdog".to_string())
                .spawn(move || watchdog_loop(&shared, interval))
                .expect("spawn watchdog thread")
        };
        Self {
            shared,
            drivers: Mutex::new(drivers),
            watchdog: Mutex::new(Some(watchdog)),
            next_id: AtomicU64::new(0),
            final_stats: Mutex::new(None),
        }
    }

    /// Submits a job under the [`DEFAULT_TENANT`]. See
    /// [`submit_as`](Engine::submit_as).
    pub fn submit(
        &self,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        self.submit_as(DEFAULT_TENANT, shape, payload, config)
    }

    /// Submits a job on behalf of `tenant`: an exchange over `shape`
    /// carrying `payload` bytes, executed under `config` (worker count,
    /// block size, fault plan, failure policy — all per-job). Returns
    /// immediately with a handle; rejects (typed) instead of queueing
    /// unboundedly — globally at `queue_depth`, per tenant at the
    /// tenant's `max_queued`.
    pub fn submit_as(
        &self,
        tenant: &str,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        self.submit_with_deadline(tenant, shape, payload, config, None)
    }

    /// [`submit_as`](Engine::submit_as) with an explicit wall-clock
    /// deadline, measured from dispatch. The effective deadline is the
    /// request (or the engine's `default_deadline`), clamped to
    /// `max_deadline`; the watchdog reaps a run still going past it
    /// (plus the configured grace), finishing the job as
    /// [`JobStatus::DeadlineExceeded`] with a partial report.
    pub fn submit_with_deadline(
        &self,
        tenant: &str,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
        deadline: Option<Duration>,
    ) -> Result<JobHandle, SubmitError> {
        self.submit_op_with_deadline(tenant, shape, JobOp::Alltoall, payload, config, deadline)
    }

    /// [`submit_with_deadline`](Engine::submit_with_deadline) for any
    /// [`JobOp`]: all-to-all jobs behave exactly as before, collective
    /// jobs lower their [`CollectiveOp`](torus_runtime::CollectiveOp)
    /// into a cached [`CollectivePlan`] and run on the same pool, with
    /// the same deadline, cancellation, and fault machinery.
    pub fn submit_op_with_deadline(
        &self,
        tenant: &str,
        shape: TorusShape,
        op: JobOp,
        payload: PayloadSpec,
        config: RuntimeConfig,
        deadline: Option<Duration>,
    ) -> Result<JobHandle, SubmitError> {
        let shared = &self.shared;
        if !shared.accepting.load(Ordering::SeqCst) {
            shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        let retry_after_ms = shared.retry_hint_ms();
        // Reserve a global slot optimistically; undone on any rejection
        // below so the configured depth stays a hard bound.
        let reserved = shared.total_queued.fetch_add(1, Ordering::SeqCst);
        if reserved >= shared.queue_depth {
            shared.unreserve();
            let mut shard = lk(shared.shard(tenant));
            let entry = shared.entry_mut(&mut shard, tenant);
            entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
            shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                depth: shared.queue_depth,
                retry_after_ms,
            });
        }
        let mut shard = lk(shared.shard(tenant));
        let entry = shared.entry_mut(&mut shard, tenant);
        if entry.jobs.len() >= entry.quota.max_queued {
            let max_queued = entry.quota.max_queued;
            entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
            shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            drop(shard);
            shared.unreserve();
            return Err(SubmitError::TenantQueueFull {
                tenant: tenant.to_string(),
                max_queued,
                retry_after_ms,
            });
        }
        if let Some(rate) = entry.quota.rate {
            let bucket = entry.bucket.get_or_insert_with(|| TokenBucket::full(&rate));
            if let Err(wait_ms) = bucket.try_take(&rate) {
                entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
                shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
                drop(shard);
                shared.unreserve();
                return Err(SubmitError::RateLimited {
                    tenant: tenant.to_string(),
                    retry_after_ms: wait_ms,
                });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.enqueue_shard_locked(&mut shard, tenant, id, shape, op, payload, config, deadline)
    }

    /// Re-enqueues a journal-recovered job under its original id,
    /// bypassing the queue-depth, quota, and rate-limit checks — the job
    /// was already admitted once, before the crash. Fails only while
    /// shutting down. Future fresh ids are bumped past `job_id` so the
    /// monotonic-id invariant survives the restart.
    pub fn resubmit_as(
        &self,
        tenant: &str,
        job_id: u64,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
        deadline: Option<Duration>,
    ) -> Result<JobHandle, SubmitError> {
        self.resubmit_op_as(
            tenant,
            job_id,
            shape,
            JobOp::Alltoall,
            payload,
            config,
            deadline,
        )
    }

    /// [`resubmit_as`](Engine::resubmit_as) for any [`JobOp`] — the
    /// crash-recovery path for collective jobs replayed from the
    /// daemon's journal.
    #[allow(clippy::too_many_arguments)]
    pub fn resubmit_op_as(
        &self,
        tenant: &str,
        job_id: u64,
        shape: TorusShape,
        op: JobOp,
        payload: PayloadSpec,
        config: RuntimeConfig,
        deadline: Option<Duration>,
    ) -> Result<JobHandle, SubmitError> {
        let shared = &self.shared;
        if !shared.accepting.load(Ordering::SeqCst) {
            shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        self.next_id.fetch_max(job_id, Ordering::Relaxed);
        shared.total_queued.fetch_add(1, Ordering::SeqCst);
        let mut shard = lk(shared.shard(tenant));
        self.enqueue_shard_locked(
            &mut shard, tenant, job_id, shape, op, payload, config, deadline,
        )
    }

    /// Admission tail shared by fresh and replayed submissions: records
    /// acceptance, queues the job, wakes one driver, and closes the
    /// shutdown race. The caller has already reserved the job's
    /// `total_queued` slot.
    #[allow(clippy::too_many_arguments)]
    fn enqueue_shard_locked(
        &self,
        shard: &mut QueueShard,
        tenant: &str,
        id: u64,
        shape: TorusShape,
        op: JobOp,
        payload: PayloadSpec,
        config: RuntimeConfig,
        deadline: Option<Duration>,
    ) -> Result<JobHandle, SubmitError> {
        let shared = &self.shared;
        let entry = shared.entry_mut(shard, tenant);
        let state = Arc::new(JobState::new());
        let tenant_name: Arc<str> = Arc::from(tenant);
        entry.cells.accepted.fetch_add(1, Ordering::Relaxed);
        shared.cells.ops_accepted[op.index()].fetch_add(1, Ordering::Relaxed);
        let tenant_cells = Arc::clone(&entry.cells);
        let token = CancelToken::new();
        lk(&shared.lifecycle).insert(
            id,
            LifecycleEntry {
                token: token.clone(),
                reap_at: None,
            },
        );
        entry.jobs.push_back(QueuedJob {
            id,
            shape,
            op,
            payload,
            config,
            state: Arc::clone(&state),
            tenant: tenant_name,
            tenant_cells,
            submitted_at: Instant::now(),
            deadline: shared.effective_deadline(deadline),
            token,
        });
        shared.cells.accepted.fetch_add(1, Ordering::Relaxed);
        shared
            .cells
            .observe_depth(shared.total_queued.load(Ordering::SeqCst));
        // With admission sharded, the accepting flag can flip between
        // the entry check and the push — and by then the drivers may
        // already have drained-and-exited without seeing this job. Undo
        // the enqueue if it is still sitting in the queue; if a driver
        // claimed it in the window, it was accepted in time and runs.
        if !shared.accepting.load(Ordering::SeqCst) {
            let entry = shared.entry_mut(shard, tenant);
            if let Some(pos) = entry.jobs.iter().position(|job| job.id == id) {
                entry.jobs.remove(pos);
                lk(&shared.lifecycle).remove(&id);
                entry.cells.accepted.fetch_sub(1, Ordering::Relaxed);
                shared.cells.accepted.fetch_sub(1, Ordering::Relaxed);
                shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
                entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
                shared.total_queued.fetch_sub(1, Ordering::SeqCst);
                shared.signal_work(true);
                return Err(SubmitError::ShuttingDown);
            }
        }
        shared.signal_work(false);
        Ok(JobHandle { id, state })
    }

    /// Removes a still-queued job, failing it with a canceled error —
    /// the daemon's escape hatch when the admission journal cannot make
    /// an already-enqueued job durable (the client is then rejected, so
    /// the job must not run). Returns `false` when the job is unknown or
    /// a driver already claimed it; a claimed job runs to completion
    /// normally. The canceled job counts as failed, so per-tenant books
    /// (accepted == completed + failed) still balance.
    pub fn cancel_queued(&self, job_id: u64) -> bool {
        let shared = &self.shared;
        for shard in &shared.shards {
            let mut shard = lk(shard);
            let names: Vec<Arc<str>> = shard.tenants.keys().cloned().collect();
            for name in names {
                let entry = shard.tenants.get_mut(&name).expect("key just listed");
                if let Some(pos) = entry.jobs.iter().position(|job| job.id == job_id) {
                    let job = entry.jobs.remove(pos).expect("position just found");
                    shared.cells.failed.fetch_add(1, Ordering::Relaxed);
                    job.tenant_cells.failed.fetch_add(1, Ordering::Relaxed);
                    drop(shard);
                    lk(&shared.lifecycle).remove(&job_id);
                    shared.total_queued.fetch_sub(1, Ordering::SeqCst);
                    job.state.finish(
                        JobStatus::Failed,
                        JobResult {
                            job_id,
                            report: None,
                            deliveries: None,
                            error: Some("canceled: admission journal unavailable".to_string()),
                            cache_hit: false,
                        },
                    );
                    shared.signal_work(true);
                    return true;
                }
            }
        }
        false
    }

    /// Cancels a job in any pre-terminal state.
    ///
    /// A still-queued job is removed and finished as
    /// [`JobStatus::Cancelled`] before this returns (its `Finished`
    /// event fires, so a daemon journal hook records the terminal). A
    /// running job has its [`CancelToken`] triggered and aborts
    /// cooperatively at the next step boundary — wait on its handle to
    /// observe the terminal state. Cancelling a finished or unknown job
    /// is a safe no-op ([`CancelOutcome::Unknown`]).
    ///
    /// Tenant scoping is the caller's job: the engine cancels by id
    /// alone, and the daemon checks ownership in its registry first.
    pub fn cancel(&self, job_id: u64) -> CancelOutcome {
        let shared = &self.shared;
        // Queued first: such a job can be finished right here. Scanning
        // the shards is O(queued jobs) but cancel is rare.
        for shard_mutex in &shared.shards {
            let mut shard = lk(shard_mutex);
            let names: Vec<Arc<str>> = shard.tenants.keys().cloned().collect();
            for name in names {
                let entry = shard.tenants.get_mut(&name).expect("key just listed");
                if let Some(pos) = entry.jobs.iter().position(|job| job.id == job_id) {
                    let job = entry.jobs.remove(pos).expect("position just found");
                    drop(shard);
                    shared.finish_cancelled_queued(job);
                    return CancelOutcome::Cancelled;
                }
            }
        }
        // Not queued but still live: a driver owns it (running, or in
        // the claim→dispatch window). Pull the trigger; the driver
        // accounts the terminal state when the run aborts.
        match lk(&shared.lifecycle).get(&job_id) {
            Some(entry) => {
                entry.token.cancel();
                CancelOutcome::Cancelling
            }
            None => CancelOutcome::Unknown,
        }
    }

    /// Guarantees every future fresh id exceeds `id`. Used after crash
    /// recovery so ids of compacted (terminal, no longer replayed) jobs
    /// are never reissued.
    pub fn reserve_ids_through(&self, id: u64) {
        self.next_id.fetch_max(id, Ordering::Relaxed);
    }

    /// Overrides `tenant`'s quota (creating the tenant if new). Takes
    /// effect for subsequent admission and dispatch decisions; already
    /// queued jobs stay queued even if the new cap is lower.
    pub fn set_tenant_quota(&self, tenant: &str, quota: TenantQuota) {
        let mut shard = lk(self.shared.shard(tenant));
        self.shared.entry_mut(&mut shard, tenant).quota = quota;
        drop(shard);
        // A raised in-flight cap can make blocked work dispatchable.
        self.shared.signal_work(true);
    }

    /// A point-in-time snapshot of the aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let cache = lk(&self.shared.cache);
        self.shared.cells.snapshot(cache.hits(), cache.misses())
    }

    /// Per-tenant snapshots, in first-submission order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let order: Vec<Arc<str>> = lk(&self.shared.tenant_order).clone();
        order
            .iter()
            .map(|name| {
                let shard = lk(self.shared.shard(name));
                shard.tenants[name].cells.snapshot(name)
            })
            .collect()
    }

    /// The shared pool's thread count.
    pub fn pool_size(&self) -> usize {
        self.shared.pool.size()
    }

    /// Jobs currently admitted but not yet claimed by a driver.
    pub fn queue_len(&self) -> usize {
        self.shared.total_queued.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stops admission, lets the drivers drain every
    /// queued job, joins them, tears down the pool, and returns the
    /// final stats. Idempotent, and safe to race: concurrent callers all
    /// receive the same post-drain snapshot — the teardown and the final
    /// stats read are serialized through one lock, so no caller can
    /// observe counters from before the last job finished.
    pub fn shutdown(&self) -> ServiceStats {
        let mut done = lk(&self.final_stats);
        if let Some(stats) = done.as_ref() {
            return stats.clone();
        }
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.signal_work(true);
        let handles: Vec<_> = lk(&self.drivers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        // Stop the watchdog only after the drivers drained, so reaps
        // keep working for jobs finishing during shutdown.
        *lk(&self.shared.watchdog_stop) = true;
        self.shared.watchdog_cv.notify_all();
        if let Some(watchdog) = lk(&self.watchdog).take() {
            let _ = watchdog.join();
        }
        self.shared.pool.shutdown();
        let stats = self.stats();
        *done = Some(stats.clone());
        stats
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Driver loop: claim jobs round-robin across tenants until the queue
/// is drained *and* admission has stopped.
fn drive(shared: &Shared) {
    loop {
        let job = loop {
            // Read the wakeup generation *before* scanning, so a signal
            // that fires between a failed scan and the wait below moves
            // the generation and the wait returns immediately — no lost
            // wakeup, even though claims don't hold the signal lock.
            let gen_before = *lk(&shared.signal);
            if let Some(job) = shared.claim_any() {
                break Some(job);
            }
            // `claim_any` returning None with jobs still queued means
            // every tenant with work is at its in-flight cap; wait for
            // a finishing job's signal even mid-shutdown.
            if !shared.accepting.load(Ordering::SeqCst)
                && shared.total_queued.load(Ordering::SeqCst) == 0
            {
                break None;
            }
            let mut gen = lk(&shared.signal);
            while *gen == gen_before {
                gen = shared
                    .work
                    .wait(gen)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => {
                let wait_us = job.submitted_at.elapsed().as_micros() as u64;
                shared.cells.queue_wait.record(wait_us);
                job.tenant_cells.queue_wait.record(wait_us);
                let tenant = Arc::clone(&job.tenant);
                run_job(shared, job);
                let mut shard = lk(shared.shard(&tenant));
                if let Some(entry) = shard.tenants.get_mut(&tenant) {
                    entry.in_flight -= 1;
                }
                drop(shard);
                // The finished slot may unblock a capped tenant, and
                // shutdown waiters must recheck the drain condition.
                shared.signal_work(true);
            }
            None => return,
        }
    }
}

/// Executes one job on the shared pool. Every failure path lands in the
/// job's result — nothing a job does (bad shape, fault abort, worker
/// panic) escapes to the driver or the engine.
fn run_job(shared: &Shared, job: QueuedJob) {
    job.state.set_running();
    shared.fire(JobEvent::Started {
        job_id: job.id,
        tenant: &job.tenant,
    });
    let started = Instant::now();
    // Publish the reap deadline before any work happens, so a stall in
    // the very first step is still covered by the watchdog.
    if let Some(deadline) = job.deadline {
        if let Some(entry) = lk(&shared.lifecycle).get_mut(&job.id) {
            entry.reap_at = Some(started + deadline);
        }
    }
    let finish_run = |status: JobStatus| {
        lk(&shared.lifecycle).remove(&job.id);
        let run_us = started.elapsed().as_micros() as u64;
        shared.cells.run_time.record(run_us);
        job.tenant_cells.run_time.record(run_us);
        let (cell, tenant_cell) = match status {
            JobStatus::Completed => (&shared.cells.completed, &job.tenant_cells.completed),
            JobStatus::Cancelled => (&shared.cells.cancelled, &job.tenant_cells.cancelled),
            JobStatus::DeadlineExceeded => (
                &shared.cells.deadline_exceeded,
                &job.tenant_cells.deadline_exceeded,
            ),
            _ => (&shared.cells.failed, &job.tenant_cells.failed),
        };
        cell.fetch_add(1, Ordering::Relaxed);
        tenant_cell.fetch_add(1, Ordering::Relaxed);
    };
    let nn = job.shape.num_nodes() as usize;
    let workers = job
        .config
        .workers
        .unwrap_or_else(torus_sim::default_threads)
        .clamp(1, nn.max(1))
        .min(shared.pool.size());
    let key = PlanKey {
        shape: job.shape.clone(),
        block_bytes: job.config.block_bytes,
        workers,
        op: job.op,
    };

    // Single-flight plan construction: exactly one driver builds a
    // cold key while the rest wait on `plan_ready`, so a burst of
    // same-shape jobs claimed by concurrent drivers pays for one
    // `O(N²)` prepare — and the hit/miss counters are deterministic
    // (one miss per cold key) instead of racing on who misses first.
    let (entry, cache_hit) = loop {
        let mut cache = lk(&shared.cache);
        match cache.begin_lookup(&key) {
            Lookup::Hit(entry) => break (entry, true),
            Lookup::Build => {
                // Build outside the cache lock so a cold build never
                // stalls other drivers' hits on warm keys.
                drop(cache);
                let built: Result<PlanVariant, String> = match job.op {
                    JobOp::Alltoall => PreparedExchange::new(&job.shape)
                        .map(|p| {
                            let prepared = Arc::new(p);
                            let plan = prepared.step_plan_arc();
                            PlanVariant::Alltoall { prepared, plan }
                        })
                        .map_err(|e| format!("exchange setup failed: {e}")),
                    JobOp::Collective(op) => CollectivePlan::new(&job.shape, op)
                        .map(|p| PlanVariant::Collective { plan: Arc::new(p) })
                        .map_err(|e| format!("collective plan rejected: {e}")),
                };
                let variant = match built {
                    Ok(v) => v,
                    Err(error) => {
                        // Release the build claim before reporting, or
                        // every driver waiting on this key hangs.
                        lk(&shared.cache).abandon_build(&key);
                        shared.plan_ready.notify_all();
                        finish_run(JobStatus::Failed);
                        let result = job.state.finish(
                            JobStatus::Failed,
                            JobResult {
                                job_id: job.id,
                                report: None,
                                deliveries: None,
                                error: Some(error),
                                cache_hit: false,
                            },
                        );
                        shared.fire(JobEvent::Finished {
                            job_id: job.id,
                            tenant: &job.tenant,
                            status: JobStatus::Failed,
                            result: &result,
                        });
                        return;
                    }
                };
                let entry = Arc::new(CachedPlan {
                    variant,
                    bank: Arc::new(torus_runtime::PoolBank::new()),
                });
                lk(&shared.cache).complete_build(key.clone(), Arc::clone(&entry));
                shared.plan_ready.notify_all();
                break (entry, false);
            }
            Lookup::Wait => {
                // The builder publishes (or abandons) under this same
                // mutex, so the wakeup cannot be lost between our
                // lookup and the wait.
                drop(
                    shared
                        .plan_ready
                        .wait(cache)
                        .unwrap_or_else(PoisonError::into_inner),
                );
            }
        }
    };

    let block_bytes = job.config.block_bytes;
    let payload = job.payload;
    let run_config = job.config.clone().with_cancel_token(job.token.clone());
    let outcome = match &entry.variant {
        PlanVariant::Alltoall { prepared, plan } => {
            let runtime = Runtime::from_shared(Arc::clone(prepared), Arc::clone(plan), run_config);
            runtime.run_pooled(&shared.pool, Some(&entry.bank), |s, d| {
                payload.payload(s, d, block_bytes)
            })
        }
        PlanVariant::Collective { plan } => {
            CollectiveRuntime::from_plan(Arc::clone(plan), run_config).and_then(|runtime| {
                runtime.run_pooled(&shared.pool, Some(&entry.bank), |id| {
                    payload.key_payload(id, block_bytes)
                })
            })
        }
    };
    match outcome {
        Ok((report, deliveries)) => {
            finish_run(JobStatus::Completed);
            shared.cells.ops_completed[job.op.index()].fetch_add(1, Ordering::Relaxed);
            if report.degraded.is_some() {
                shared.cells.degraded.fetch_add(1, Ordering::Relaxed);
            }
            shared
                .cells
                .wire_bytes
                .fetch_add(report.wire_bytes, Ordering::Relaxed);
            shared
                .cells
                .bytes_copied
                .fetch_add(report.bytes_copied, Ordering::Relaxed);
            let result = job.state.finish(
                JobStatus::Completed,
                JobResult {
                    job_id: job.id,
                    report: Some(report),
                    deliveries: Some(deliveries),
                    error: None,
                    cache_hit,
                },
            );
            shared.fire(JobEvent::Finished {
                job_id: job.id,
                tenant: &job.tenant,
                status: JobStatus::Completed,
                result: &result,
            });
        }
        Err(e) => {
            // A fault abort still carries partial measurements worth
            // surfacing; count its wire traffic too. Cancelled and
            // deadline-reaped runs get their own terminal statuses so
            // the books distinguish "we stopped it" from "it broke".
            let (status, error, report) = match e {
                RuntimeError::Aborted { failure, report } => {
                    shared
                        .cells
                        .wire_bytes
                        .fetch_add(report.wire_bytes, Ordering::Relaxed);
                    shared
                        .cells
                        .bytes_copied
                        .fetch_add(report.bytes_copied, Ordering::Relaxed);
                    let status = match failure.reason {
                        FailureReason::Cancelled => JobStatus::Cancelled,
                        FailureReason::DeadlineExceeded => JobStatus::DeadlineExceeded,
                        _ => JobStatus::Failed,
                    };
                    (status, format!("run aborted: {failure}"), Some(*report))
                }
                other => (JobStatus::Failed, other.to_string(), None),
            };
            finish_run(status);
            let result = job.state.finish(
                status,
                JobResult {
                    job_id: job.id,
                    report,
                    deliveries: None,
                    error: Some(error),
                    cache_hit,
                },
            );
            shared.fire(JobEvent::Finished {
                job_id: job.id,
                tenant: &job.tenant,
                status,
                result: &result,
            });
        }
    }
}
