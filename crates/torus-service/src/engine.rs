//! The engine: admission queue, driver threads, and the shared pool.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use alltoall_core::PreparedExchange;
use torus_runtime::{Runtime, RuntimeConfig, RuntimeError, WorkerPool};
use torus_topology::TorusShape;

use crate::cache::{CachedPlan, PlanCache, PlanKey};
use crate::job::{JobHandle, JobResult, JobState, JobStatus, PayloadSpec, SubmitError};
use crate::stats::{ServiceStats, StatCells};

fn lk<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sizing knobs for an [`Engine`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Worker threads in the shared pool (every job's gang is carved
    /// from these). Default: [`torus_sim::default_threads`].
    pub pool_size: usize,
    /// Maximum queued (admitted but not yet running) jobs; submissions
    /// beyond this are rejected. Default 64.
    pub queue_depth: usize,
    /// Driver threads, i.e. how many jobs execute concurrently
    /// (time-sharing the pool). Default 4.
    pub drivers: usize,
    /// Plans retained by the LRU cache. Default 8.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            pool_size: torus_sim::default_threads(),
            queue_depth: 64,
            drivers: 4,
            cache_capacity: 8,
        }
    }
}

impl EngineConfig {
    /// Sets the shared pool's thread count.
    pub fn with_pool_size(mut self, size: usize) -> Self {
        self.pool_size = size.max(1);
        self
    }

    /// Sets the admission-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the number of concurrently executing jobs.
    pub fn with_drivers(mut self, drivers: usize) -> Self {
        self.drivers = drivers.max(1);
        self
    }

    /// Sets the plan-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }
}

/// A job sitting in the admission queue.
struct QueuedJob {
    id: u64,
    shape: TorusShape,
    payload: PayloadSpec,
    config: RuntimeConfig,
    state: Arc<JobState>,
}

/// Queue state guarded by one mutex: the FIFO plus the accepting flag,
/// so admission control and shutdown observe a consistent view.
struct QueueState {
    jobs: VecDeque<QueuedJob>,
    accepting: bool,
}

struct Shared {
    pool: WorkerPool,
    queue: Mutex<QueueState>,
    work: Condvar,
    cache: Mutex<PlanCache>,
    cells: StatCells,
    queue_depth: usize,
}

/// A persistent multi-job exchange engine.
///
/// See the [crate docs](crate) for the execution model. Construction
/// spawns the worker pool and the driver threads; they idle until jobs
/// arrive and survive across jobs until [`shutdown`](Engine::shutdown).
pub struct Engine {
    shared: Arc<Shared>,
    drivers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("pool_size", &self.shared.pool.size())
            .field("queue_depth", &self.shared.queue_depth)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts an engine: spawns the shared pool and the driver threads.
    pub fn new(config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            pool: WorkerPool::new(config.pool_size.max(1)),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                accepting: true,
            }),
            work: Condvar::new(),
            cache: Mutex::new(PlanCache::new(config.cache_capacity)),
            cells: StatCells::default(),
            queue_depth: config.queue_depth.max(1),
        });
        let drivers = (0..config.drivers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("torus-driver-{i}"))
                    .spawn(move || drive(&shared))
                    .expect("spawn driver thread")
            })
            .collect();
        Self {
            shared,
            drivers: Mutex::new(drivers),
            next_id: AtomicU64::new(0),
        }
    }

    /// Submits a job: an exchange over `shape` carrying `payload` bytes,
    /// executed under `config` (worker count, block size, fault plan,
    /// failure policy — all per-job). Returns immediately with a handle;
    /// rejects instead of queueing unboundedly.
    pub fn submit(
        &self,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        let mut q = lk(&self.shared.queue);
        if !q.accepting {
            self.shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        if q.jobs.len() >= self.shared.queue_depth {
            self.shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                depth: self.shared.queue_depth,
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        let state = Arc::new(JobState::new());
        q.jobs.push_back(QueuedJob {
            id,
            shape,
            payload,
            config,
            state: Arc::clone(&state),
        });
        self.shared.cells.accepted.fetch_add(1, Ordering::Relaxed);
        self.shared.cells.observe_depth(q.jobs.len());
        drop(q);
        self.shared.work.notify_one();
        Ok(JobHandle { id, state })
    }

    /// A point-in-time snapshot of the aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let cache = lk(&self.shared.cache);
        self.shared.cells.snapshot(cache.hits(), cache.misses())
    }

    /// The shared pool's thread count.
    pub fn pool_size(&self) -> usize {
        self.shared.pool.size()
    }

    /// Jobs currently admitted but not yet claimed by a driver.
    pub fn queue_len(&self) -> usize {
        lk(&self.shared.queue).jobs.len()
    }

    /// Graceful shutdown: stops admission, lets the drivers drain every
    /// queued job, joins them, tears down the pool, and returns the
    /// final stats. Idempotent; also invoked by `Drop`.
    pub fn shutdown(&self) -> ServiceStats {
        {
            let mut q = lk(&self.shared.queue);
            q.accepting = false;
        }
        self.shared.work.notify_all();
        let handles: Vec<_> = lk(&self.drivers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
        self.stats()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Driver loop: claim jobs FIFO until the queue is drained *and*
/// admission has stopped.
fn drive(shared: &Shared) {
    loop {
        let job = {
            let mut q = lk(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break Some(job);
                }
                if !q.accepting {
                    break None;
                }
                q = shared.work.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => run_job(shared, job),
            None => return,
        }
    }
}

/// Executes one job on the shared pool. Every failure path lands in the
/// job's result — nothing a job does (bad shape, fault abort, worker
/// panic) escapes to the driver or the engine.
fn run_job(shared: &Shared, job: QueuedJob) {
    job.state.set_running();
    let nn = job.shape.num_nodes() as usize;
    let workers = job
        .config
        .workers
        .unwrap_or_else(torus_sim::default_threads)
        .clamp(1, nn.max(1))
        .min(shared.pool.size());
    let key = PlanKey {
        shape: job.shape.clone(),
        block_bytes: job.config.block_bytes,
        workers,
    };

    // Bind the lookup before matching on it: a guard living in the
    // match scrutinee would still be held inside the miss arm, and the
    // `insert` there would self-deadlock on the cache mutex.
    let looked_up = lk(&shared.cache).get(&key);
    let (entry, cache_hit) = match looked_up {
        Some(entry) => (entry, true),
        None => {
            // Build outside the cache lock so a cold lookup never
            // stalls other drivers' hits.
            let prepared = match PreparedExchange::new(&job.shape) {
                Ok(p) => Arc::new(p),
                Err(e) => {
                    shared.cells.failed.fetch_add(1, Ordering::Relaxed);
                    job.state.finish(
                        JobStatus::Failed,
                        JobResult {
                            job_id: job.id,
                            report: None,
                            deliveries: None,
                            error: Some(format!("exchange setup failed: {e}")),
                            cache_hit: false,
                        },
                    );
                    return;
                }
            };
            let plan = prepared.step_plan_arc();
            let entry = Arc::new(CachedPlan {
                prepared,
                plan,
                bank: Arc::new(torus_runtime::PoolBank::new()),
            });
            lk(&shared.cache).insert(key, Arc::clone(&entry));
            (entry, false)
        }
    };

    let block_bytes = job.config.block_bytes;
    let payload = job.payload;
    let runtime = Runtime::from_shared(
        Arc::clone(&entry.prepared),
        Arc::clone(&entry.plan),
        job.config,
    );
    let outcome = runtime.run_pooled(&shared.pool, Some(&entry.bank), |s, d| {
        payload.payload(s, d, block_bytes)
    });
    match outcome {
        Ok((report, deliveries)) => {
            shared.cells.completed.fetch_add(1, Ordering::Relaxed);
            if report.degraded.is_some() {
                shared.cells.degraded.fetch_add(1, Ordering::Relaxed);
            }
            shared
                .cells
                .wire_bytes
                .fetch_add(report.wire_bytes, Ordering::Relaxed);
            shared
                .cells
                .bytes_copied
                .fetch_add(report.bytes_copied, Ordering::Relaxed);
            job.state.finish(
                JobStatus::Completed,
                JobResult {
                    job_id: job.id,
                    report: Some(report),
                    deliveries: Some(deliveries),
                    error: None,
                    cache_hit,
                },
            );
        }
        Err(e) => {
            shared.cells.failed.fetch_add(1, Ordering::Relaxed);
            // A fault abort still carries partial measurements worth
            // surfacing; count its wire traffic too.
            let (error, report) = match e {
                RuntimeError::Aborted { failure, report } => {
                    shared
                        .cells
                        .wire_bytes
                        .fetch_add(report.wire_bytes, Ordering::Relaxed);
                    shared
                        .cells
                        .bytes_copied
                        .fetch_add(report.bytes_copied, Ordering::Relaxed);
                    (format!("run aborted: {failure}"), Some(*report))
                }
                other => (other.to_string(), None),
            };
            job.state.finish(
                JobStatus::Failed,
                JobResult {
                    job_id: job.id,
                    report,
                    deliveries: None,
                    error: Some(error),
                    cache_hit,
                },
            );
        }
    }
}
