//! The engine: tenant-aware admission, driver threads, and the shared
//! pool.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use alltoall_core::PreparedExchange;
use torus_runtime::{Runtime, RuntimeConfig, RuntimeError, WorkerPool};
use torus_topology::TorusShape;

use crate::cache::{CachedPlan, PlanCache, PlanKey};
use crate::job::{
    EventHook, JobEvent, JobHandle, JobResult, JobState, JobStatus, PayloadSpec, SubmitError,
};
use crate::stats::{ServiceStats, StatCells};
use crate::tenant::{TenantCells, TenantQuota, TenantStats, TokenBucket, DEFAULT_TENANT};

fn lk<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sizing knobs for an [`Engine`].
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads in the shared pool (every job's gang is carved
    /// from these). Default: [`torus_sim::default_threads`].
    pub pool_size: usize,
    /// Maximum queued (admitted but not yet running) jobs across all
    /// tenants; submissions beyond this are rejected. Default 64.
    pub queue_depth: usize,
    /// Driver threads, i.e. how many jobs execute concurrently
    /// (time-sharing the pool). Default 4.
    pub drivers: usize,
    /// Plans retained by the LRU cache. Default 8.
    pub cache_capacity: usize,
    /// Quota applied to tenants that have no explicit override.
    /// Default: unlimited (the global `queue_depth` still bounds them).
    pub default_quota: TenantQuota,
    /// Optional job-lifecycle observer, invoked by drivers on
    /// [`JobEvent::Started`]/[`JobEvent::Finished`]. Default: none.
    pub event_hook: Option<EventHook>,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("pool_size", &self.pool_size)
            .field("queue_depth", &self.queue_depth)
            .field("drivers", &self.drivers)
            .field("cache_capacity", &self.cache_capacity)
            .field("default_quota", &self.default_quota)
            .field("event_hook", &self.event_hook.as_ref().map(|_| "set"))
            .finish()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            pool_size: torus_sim::default_threads(),
            queue_depth: 64,
            drivers: 4,
            cache_capacity: 8,
            default_quota: TenantQuota::default(),
            event_hook: None,
        }
    }
}

impl EngineConfig {
    /// Sets the shared pool's thread count.
    pub fn with_pool_size(mut self, size: usize) -> Self {
        self.pool_size = size.max(1);
        self
    }

    /// Sets the admission-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the number of concurrently executing jobs.
    pub fn with_drivers(mut self, drivers: usize) -> Self {
        self.drivers = drivers.max(1);
        self
    }

    /// Sets the plan-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Sets the quota for tenants without an explicit override.
    pub fn with_default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Installs a job-lifecycle observer. Drivers invoke it
    /// synchronously on start and finish; it must be fast and must not
    /// call back into the engine.
    pub fn with_event_hook(mut self, hook: EventHook) -> Self {
        self.event_hook = Some(hook);
        self
    }
}

/// A job sitting in the admission queue.
struct QueuedJob {
    id: u64,
    shape: TorusShape,
    payload: PayloadSpec,
    config: RuntimeConfig,
    state: Arc<JobState>,
    tenant: Arc<str>,
    tenant_cells: Arc<TenantCells>,
    submitted_at: Instant,
}

/// One tenant's slice of the queue.
struct TenantEntry {
    jobs: VecDeque<QueuedJob>,
    in_flight: usize,
    quota: TenantQuota,
    cells: Arc<TenantCells>,
    /// Token-bucket state, created full on the first submission after
    /// the quota gains a rate limit.
    bucket: Option<TokenBucket>,
}

/// Queue state guarded by one mutex: every tenant's FIFO, the
/// round-robin cursor, and the accepting flag, so admission control,
/// fair dispatch, and shutdown observe a consistent view.
struct QueueState {
    tenants: HashMap<Arc<str>, TenantEntry>,
    /// Tenants in first-seen order; the dispatch cursor walks this.
    order: Vec<Arc<str>>,
    cursor: usize,
    total_queued: usize,
    accepting: bool,
}

impl QueueState {
    /// The tenant's entry, created with `default_quota` on first sight.
    fn entry(&mut self, tenant: &str, default_quota: TenantQuota) -> &mut TenantEntry {
        if !self.tenants.contains_key(tenant) {
            let name: Arc<str> = Arc::from(tenant);
            self.order.push(Arc::clone(&name));
            self.tenants.insert(
                name,
                TenantEntry {
                    jobs: VecDeque::new(),
                    in_flight: 0,
                    quota: default_quota,
                    cells: Arc::new(TenantCells::default()),
                    bucket: None,
                },
            );
        }
        self.tenants.get_mut(tenant).expect("entry just ensured")
    }

    /// Claims the next job round-robin: the first tenant at or after the
    /// cursor with queued work and spare in-flight budget. Advancing the
    /// cursor past the chosen tenant is what makes bursts interleave —
    /// a tenant that just dispatched goes to the back of the rotation.
    fn claim_next(&mut self) -> Option<QueuedJob> {
        let n = self.order.len();
        for k in 0..n {
            let i = (self.cursor + k) % n;
            let name = Arc::clone(&self.order[i]);
            let entry = self.tenants.get_mut(&name).expect("ordered tenant exists");
            if !entry.jobs.is_empty() && entry.in_flight < entry.quota.max_in_flight {
                let job = entry.jobs.pop_front().expect("checked non-empty");
                entry.in_flight += 1;
                self.total_queued -= 1;
                self.cursor = (i + 1) % n;
                return Some(job);
            }
        }
        None
    }
}

struct Shared {
    pool: WorkerPool,
    queue: Mutex<QueueState>,
    work: Condvar,
    cache: Mutex<PlanCache>,
    cells: StatCells,
    queue_depth: usize,
    default_quota: TenantQuota,
    hook: Option<EventHook>,
}

impl Shared {
    /// Backoff hint for overload rejections: half the median run time
    /// (one of the in-flight jobs is likely to free a slot by then),
    /// clamped to 1..=5000 ms, defaulting to 50 ms with no history.
    fn retry_hint_ms(&self) -> u64 {
        let p50_us = self.cells.run_time.stats().p50;
        if p50_us == 0 {
            50
        } else {
            (p50_us / 2000).clamp(1, 5000)
        }
    }

    fn fire(&self, event: JobEvent<'_>) {
        if let Some(hook) = &self.hook {
            hook(event);
        }
    }
}

/// A persistent multi-job exchange engine.
///
/// See the [crate docs](crate) for the execution model. Construction
/// spawns the worker pool and the driver threads; they idle until jobs
/// arrive and survive across jobs until [`shutdown`](Engine::shutdown).
pub struct Engine {
    shared: Arc<Shared>,
    drivers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    /// The final stats snapshot, taken exactly once after every driver
    /// has joined. Serializes concurrent `shutdown` callers: the first
    /// does the teardown under this lock, later callers (and re-calls)
    /// get the same frozen snapshot instead of racing the join.
    final_stats: Mutex<Option<ServiceStats>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("pool_size", &self.shared.pool.size())
            .field("queue_depth", &self.shared.queue_depth)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts an engine: spawns the shared pool and the driver threads.
    pub fn new(config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            pool: WorkerPool::new(config.pool_size.max(1)),
            queue: Mutex::new(QueueState {
                tenants: HashMap::new(),
                order: Vec::new(),
                cursor: 0,
                total_queued: 0,
                accepting: true,
            }),
            work: Condvar::new(),
            cache: Mutex::new(PlanCache::new(config.cache_capacity)),
            cells: StatCells::default(),
            queue_depth: config.queue_depth.max(1),
            default_quota: config.default_quota,
            hook: config.event_hook,
        });
        let drivers = (0..config.drivers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("torus-driver-{i}"))
                    .spawn(move || drive(&shared))
                    .expect("spawn driver thread")
            })
            .collect();
        Self {
            shared,
            drivers: Mutex::new(drivers),
            next_id: AtomicU64::new(0),
            final_stats: Mutex::new(None),
        }
    }

    /// Submits a job under the [`DEFAULT_TENANT`]. See
    /// [`submit_as`](Engine::submit_as).
    pub fn submit(
        &self,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        self.submit_as(DEFAULT_TENANT, shape, payload, config)
    }

    /// Submits a job on behalf of `tenant`: an exchange over `shape`
    /// carrying `payload` bytes, executed under `config` (worker count,
    /// block size, fault plan, failure policy — all per-job). Returns
    /// immediately with a handle; rejects (typed) instead of queueing
    /// unboundedly — globally at `queue_depth`, per tenant at the
    /// tenant's `max_queued`.
    pub fn submit_as(
        &self,
        tenant: &str,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        let mut q = lk(&self.shared.queue);
        if !q.accepting {
            self.shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        let retry_after_ms = self.shared.retry_hint_ms();
        let global_full = q.total_queued >= self.shared.queue_depth;
        let entry = q.entry(tenant, self.shared.default_quota);
        if global_full {
            entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
            self.shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                depth: self.shared.queue_depth,
                retry_after_ms,
            });
        }
        if entry.jobs.len() >= entry.quota.max_queued {
            let max_queued = entry.quota.max_queued;
            entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
            self.shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::TenantQueueFull {
                tenant: tenant.to_string(),
                max_queued,
                retry_after_ms,
            });
        }
        if let Some(rate) = entry.quota.rate {
            let bucket = entry.bucket.get_or_insert_with(|| TokenBucket::full(&rate));
            if let Err(wait_ms) = bucket.try_take(&rate) {
                entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
                self.shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::RateLimited {
                    tenant: tenant.to_string(),
                    retry_after_ms: wait_ms,
                });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.enqueue_locked(&mut q, tenant, id, shape, payload, config)
    }

    /// Re-enqueues a journal-recovered job under its original id,
    /// bypassing the queue-depth, quota, and rate-limit checks — the job
    /// was already admitted once, before the crash. Fails only while
    /// shutting down. Future fresh ids are bumped past `job_id` so the
    /// monotonic-id invariant survives the restart.
    pub fn resubmit_as(
        &self,
        tenant: &str,
        job_id: u64,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        let mut q = lk(&self.shared.queue);
        if !q.accepting {
            self.shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        self.next_id.fetch_max(job_id, Ordering::Relaxed);
        self.enqueue_locked(&mut q, tenant, job_id, shape, payload, config)
    }

    /// Admission tail shared by fresh and replayed submissions: records
    /// acceptance, queues the job, and wakes one driver.
    fn enqueue_locked(
        &self,
        q: &mut QueueState,
        tenant: &str,
        id: u64,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        let entry = q.entry(tenant, self.shared.default_quota);
        let state = Arc::new(JobState::new());
        let tenant_name: Arc<str> = Arc::from(tenant);
        entry.cells.accepted.fetch_add(1, Ordering::Relaxed);
        let tenant_cells = Arc::clone(&entry.cells);
        entry.jobs.push_back(QueuedJob {
            id,
            shape,
            payload,
            config,
            state: Arc::clone(&state),
            tenant: tenant_name,
            tenant_cells,
            submitted_at: Instant::now(),
        });
        q.total_queued += 1;
        self.shared.cells.accepted.fetch_add(1, Ordering::Relaxed);
        self.shared.cells.observe_depth(q.total_queued);
        self.shared.work.notify_one();
        Ok(JobHandle { id, state })
    }

    /// Guarantees every future fresh id exceeds `id`. Used after crash
    /// recovery so ids of compacted (terminal, no longer replayed) jobs
    /// are never reissued.
    pub fn reserve_ids_through(&self, id: u64) {
        self.next_id.fetch_max(id, Ordering::Relaxed);
    }

    /// Overrides `tenant`'s quota (creating the tenant if new). Takes
    /// effect for subsequent admission and dispatch decisions; already
    /// queued jobs stay queued even if the new cap is lower.
    pub fn set_tenant_quota(&self, tenant: &str, quota: TenantQuota) {
        let mut q = lk(&self.shared.queue);
        q.entry(tenant, self.shared.default_quota).quota = quota;
        drop(q);
        // A raised in-flight cap can make blocked work dispatchable.
        self.shared.work.notify_all();
    }

    /// A point-in-time snapshot of the aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let cache = lk(&self.shared.cache);
        self.shared.cells.snapshot(cache.hits(), cache.misses())
    }

    /// Per-tenant snapshots, in first-submission order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let q = lk(&self.shared.queue);
        q.order
            .iter()
            .map(|name| q.tenants[name].cells.snapshot(name))
            .collect()
    }

    /// The shared pool's thread count.
    pub fn pool_size(&self) -> usize {
        self.shared.pool.size()
    }

    /// Jobs currently admitted but not yet claimed by a driver.
    pub fn queue_len(&self) -> usize {
        lk(&self.shared.queue).total_queued
    }

    /// Graceful shutdown: stops admission, lets the drivers drain every
    /// queued job, joins them, tears down the pool, and returns the
    /// final stats. Idempotent, and safe to race: concurrent callers all
    /// receive the same post-drain snapshot — the teardown and the final
    /// stats read are serialized through one lock, so no caller can
    /// observe counters from before the last job finished.
    pub fn shutdown(&self) -> ServiceStats {
        let mut done = lk(&self.final_stats);
        if let Some(stats) = done.as_ref() {
            return stats.clone();
        }
        {
            let mut q = lk(&self.shared.queue);
            q.accepting = false;
        }
        self.shared.work.notify_all();
        let handles: Vec<_> = lk(&self.drivers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
        let stats = self.stats();
        *done = Some(stats.clone());
        stats
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Driver loop: claim jobs round-robin across tenants until the queue
/// is drained *and* admission has stopped.
fn drive(shared: &Shared) {
    loop {
        let job = {
            let mut q = lk(&shared.queue);
            loop {
                if let Some(job) = q.claim_next() {
                    break Some(job);
                }
                // `claim_next` returning None with jobs still queued
                // means every tenant with work is at its in-flight cap;
                // wait for a finishing job's notify even mid-shutdown.
                if !q.accepting && q.total_queued == 0 {
                    break None;
                }
                q = shared.work.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => {
                let wait_us = job.submitted_at.elapsed().as_micros() as u64;
                shared.cells.queue_wait.record(wait_us);
                job.tenant_cells.queue_wait.record(wait_us);
                let tenant = Arc::clone(&job.tenant);
                run_job(shared, job);
                let mut q = lk(&shared.queue);
                if let Some(entry) = q.tenants.get_mut(&tenant) {
                    entry.in_flight -= 1;
                }
                drop(q);
                // The finished slot may unblock a capped tenant, and
                // shutdown waiters must recheck the drain condition.
                shared.work.notify_all();
            }
            None => return,
        }
    }
}

/// Executes one job on the shared pool. Every failure path lands in the
/// job's result — nothing a job does (bad shape, fault abort, worker
/// panic) escapes to the driver or the engine.
fn run_job(shared: &Shared, job: QueuedJob) {
    job.state.set_running();
    shared.fire(JobEvent::Started {
        job_id: job.id,
        tenant: &job.tenant,
    });
    let started = Instant::now();
    let finish_run = |failed: bool| {
        let run_us = started.elapsed().as_micros() as u64;
        shared.cells.run_time.record(run_us);
        job.tenant_cells.run_time.record(run_us);
        if failed {
            shared.cells.failed.fetch_add(1, Ordering::Relaxed);
            job.tenant_cells.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.cells.completed.fetch_add(1, Ordering::Relaxed);
            job.tenant_cells.completed.fetch_add(1, Ordering::Relaxed);
        }
    };
    let nn = job.shape.num_nodes() as usize;
    let workers = job
        .config
        .workers
        .unwrap_or_else(torus_sim::default_threads)
        .clamp(1, nn.max(1))
        .min(shared.pool.size());
    let key = PlanKey {
        shape: job.shape.clone(),
        block_bytes: job.config.block_bytes,
        workers,
    };

    // Bind the lookup before matching on it: a guard living in the
    // match scrutinee would still be held inside the miss arm, and the
    // `insert` there would self-deadlock on the cache mutex.
    let looked_up = lk(&shared.cache).get(&key);
    let (entry, cache_hit) = match looked_up {
        Some(entry) => (entry, true),
        None => {
            // Build outside the cache lock so a cold lookup never
            // stalls other drivers' hits.
            let prepared = match PreparedExchange::new(&job.shape) {
                Ok(p) => Arc::new(p),
                Err(e) => {
                    finish_run(true);
                    let result = job.state.finish(
                        JobStatus::Failed,
                        JobResult {
                            job_id: job.id,
                            report: None,
                            deliveries: None,
                            error: Some(format!("exchange setup failed: {e}")),
                            cache_hit: false,
                        },
                    );
                    shared.fire(JobEvent::Finished {
                        job_id: job.id,
                        tenant: &job.tenant,
                        status: JobStatus::Failed,
                        result: &result,
                    });
                    return;
                }
            };
            let plan = prepared.step_plan_arc();
            let entry = Arc::new(CachedPlan {
                prepared,
                plan,
                bank: Arc::new(torus_runtime::PoolBank::new()),
            });
            lk(&shared.cache).insert(key, Arc::clone(&entry));
            (entry, false)
        }
    };

    let block_bytes = job.config.block_bytes;
    let payload = job.payload;
    let runtime = Runtime::from_shared(
        Arc::clone(&entry.prepared),
        Arc::clone(&entry.plan),
        job.config.clone(),
    );
    let outcome = runtime.run_pooled(&shared.pool, Some(&entry.bank), |s, d| {
        payload.payload(s, d, block_bytes)
    });
    match outcome {
        Ok((report, deliveries)) => {
            finish_run(false);
            if report.degraded.is_some() {
                shared.cells.degraded.fetch_add(1, Ordering::Relaxed);
            }
            shared
                .cells
                .wire_bytes
                .fetch_add(report.wire_bytes, Ordering::Relaxed);
            shared
                .cells
                .bytes_copied
                .fetch_add(report.bytes_copied, Ordering::Relaxed);
            let result = job.state.finish(
                JobStatus::Completed,
                JobResult {
                    job_id: job.id,
                    report: Some(report),
                    deliveries: Some(deliveries),
                    error: None,
                    cache_hit,
                },
            );
            shared.fire(JobEvent::Finished {
                job_id: job.id,
                tenant: &job.tenant,
                status: JobStatus::Completed,
                result: &result,
            });
        }
        Err(e) => {
            finish_run(true);
            // A fault abort still carries partial measurements worth
            // surfacing; count its wire traffic too.
            let (error, report) = match e {
                RuntimeError::Aborted { failure, report } => {
                    shared
                        .cells
                        .wire_bytes
                        .fetch_add(report.wire_bytes, Ordering::Relaxed);
                    shared
                        .cells
                        .bytes_copied
                        .fetch_add(report.bytes_copied, Ordering::Relaxed);
                    (format!("run aborted: {failure}"), Some(*report))
                }
                other => (other.to_string(), None),
            };
            let result = job.state.finish(
                JobStatus::Failed,
                JobResult {
                    job_id: job.id,
                    report,
                    deliveries: None,
                    error: Some(error),
                    cache_hit,
                },
            );
            shared.fire(JobEvent::Finished {
                job_id: job.id,
                tenant: &job.tenant,
                status: JobStatus::Failed,
                result: &result,
            });
        }
    }
}
