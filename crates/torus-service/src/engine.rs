//! The engine: tenant-aware admission, driver threads, and the shared
//! pool.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use alltoall_core::PreparedExchange;
use torus_runtime::{Runtime, RuntimeConfig, RuntimeError, WorkerPool};
use torus_topology::TorusShape;

use crate::cache::{CachedPlan, Lookup, PlanCache, PlanKey};
use crate::job::{
    EventHook, JobEvent, JobHandle, JobResult, JobState, JobStatus, PayloadSpec, SubmitError,
};
use crate::stats::{ServiceStats, StatCells};
use crate::tenant::{TenantCells, TenantQuota, TenantStats, TokenBucket, DEFAULT_TENANT};

fn lk<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sizing knobs for an [`Engine`].
#[derive(Clone)]
pub struct EngineConfig {
    /// Worker threads in the shared pool (every job's gang is carved
    /// from these). Default: [`torus_sim::default_threads`].
    pub pool_size: usize,
    /// Maximum queued (admitted but not yet running) jobs across all
    /// tenants; submissions beyond this are rejected. Default 64.
    pub queue_depth: usize,
    /// Driver threads, i.e. how many jobs execute concurrently
    /// (time-sharing the pool). Default 4.
    pub drivers: usize,
    /// Plans retained by the LRU cache. Default 8.
    pub cache_capacity: usize,
    /// Quota applied to tenants that have no explicit override.
    /// Default: unlimited (the global `queue_depth` still bounds them).
    pub default_quota: TenantQuota,
    /// Optional job-lifecycle observer, invoked by drivers on
    /// [`JobEvent::Started`]/[`JobEvent::Finished`]. Default: none.
    pub event_hook: Option<EventHook>,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("pool_size", &self.pool_size)
            .field("queue_depth", &self.queue_depth)
            .field("drivers", &self.drivers)
            .field("cache_capacity", &self.cache_capacity)
            .field("default_quota", &self.default_quota)
            .field("event_hook", &self.event_hook.as_ref().map(|_| "set"))
            .finish()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            pool_size: torus_sim::default_threads(),
            queue_depth: 64,
            drivers: 4,
            cache_capacity: 8,
            default_quota: TenantQuota::default(),
            event_hook: None,
        }
    }
}

impl EngineConfig {
    /// Sets the shared pool's thread count.
    pub fn with_pool_size(mut self, size: usize) -> Self {
        self.pool_size = size.max(1);
        self
    }

    /// Sets the admission-queue depth.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Sets the number of concurrently executing jobs.
    pub fn with_drivers(mut self, drivers: usize) -> Self {
        self.drivers = drivers.max(1);
        self
    }

    /// Sets the plan-cache capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity.max(1);
        self
    }

    /// Sets the quota for tenants without an explicit override.
    pub fn with_default_quota(mut self, quota: TenantQuota) -> Self {
        self.default_quota = quota;
        self
    }

    /// Installs a job-lifecycle observer. Drivers invoke it
    /// synchronously on start and finish; it must be fast and must not
    /// call back into the engine.
    pub fn with_event_hook(mut self, hook: EventHook) -> Self {
        self.event_hook = Some(hook);
        self
    }
}

/// A job sitting in the admission queue.
struct QueuedJob {
    id: u64,
    shape: TorusShape,
    payload: PayloadSpec,
    config: RuntimeConfig,
    state: Arc<JobState>,
    tenant: Arc<str>,
    tenant_cells: Arc<TenantCells>,
    submitted_at: Instant,
}

/// One tenant's slice of the queue.
struct TenantEntry {
    jobs: VecDeque<QueuedJob>,
    in_flight: usize,
    quota: TenantQuota,
    cells: Arc<TenantCells>,
    /// Token-bucket state, created full on the first submission after
    /// the quota gains a rate limit.
    bucket: Option<TokenBucket>,
}

/// How many ways the tenant queue map is sharded. Submission, status,
/// and in-flight accounting for different tenants contend only within a
/// shard; the global bound and the drain condition live in atomics.
pub const QUEUE_SHARDS: usize = 16;

/// FNV-1a over the tenant name, reduced to a shard index. Stable across
/// runs so a tenant's shard never migrates within a process lifetime.
fn shard_of(tenant: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % QUEUE_SHARDS as u64) as usize
}

/// One shard of the tenant queue map: a slice of the tenants with their
/// FIFOs and in-flight counts. The global queue bound (`total_queued`),
/// the accepting flag, and the fair-dispatch cursor live in [`Shared`],
/// so admission and status for different tenants never serialize on a
/// single mutex; only the dispatch rotation (drivers-only, a handful of
/// threads) consults the global first-seen order.
struct QueueShard {
    tenants: HashMap<Arc<str>, TenantEntry>,
}

struct Shared {
    pool: WorkerPool,
    /// The sharded tenant queue map, indexed by [`shard_of`].
    shards: Vec<Mutex<QueueShard>>,
    /// Every tenant in first-submission order, for stats snapshots.
    tenant_order: Mutex<Vec<Arc<str>>>,
    /// Jobs admitted but not yet claimed, across all shards. Submission
    /// reserves a slot optimistically (fetch_add, undone on rejection)
    /// so the configured depth stays a hard bound without a global lock.
    total_queued: AtomicUsize,
    /// Cleared by shutdown; checked lock-free on every submission.
    accepting: AtomicBool,
    /// Index into `tenant_order` where the next driver claim starts its
    /// scan. Advanced past each claimed tenant so bursts interleave —
    /// a tenant that just dispatched goes to the back of the rotation.
    /// Racy across drivers by design; fairness is approximate under
    /// concurrency, exact with a single driver.
    claim_cursor: AtomicUsize,
    /// Wakeup generation for `work`: bumped (under this mutex) by every
    /// queue mutation a sleeping driver could care about — enqueue,
    /// in-flight release, quota change, shutdown. Drivers re-scan when
    /// the generation moves, so a wakeup between their failed claim and
    /// their wait is never lost.
    signal: Mutex<u64>,
    work: Condvar,
    cache: Mutex<PlanCache>,
    /// Signalled (under the `cache` mutex) whenever a single-flight
    /// plan build completes or is abandoned, so drivers waiting on a
    /// key someone else is building re-run their lookup.
    plan_ready: Condvar,
    cells: StatCells,
    queue_depth: usize,
    default_quota: TenantQuota,
    hook: Option<EventHook>,
}

impl Shared {
    fn shard(&self, tenant: &str) -> &Mutex<QueueShard> {
        &self.shards[shard_of(tenant)]
    }

    /// The tenant's entry in `shard`, created with the default quota
    /// (and registered in the global first-seen order) on first sight.
    fn entry_mut<'a>(&self, shard: &'a mut QueueShard, tenant: &str) -> &'a mut TenantEntry {
        if !shard.tenants.contains_key(tenant) {
            let name: Arc<str> = Arc::from(tenant);
            lk(&self.tenant_order).push(Arc::clone(&name));
            shard.tenants.insert(
                name,
                TenantEntry {
                    jobs: VecDeque::new(),
                    in_flight: 0,
                    quota: self.default_quota,
                    cells: Arc::new(TenantCells::default()),
                    bucket: None,
                },
            );
        }
        shard.tenants.get_mut(tenant).expect("entry just ensured")
    }

    /// Returns a reserved-but-unused queue slot after a rejection.
    /// During shutdown a drain-waiting driver may be blocked on exactly
    /// this reservation reaching zero, so wake everyone then; the
    /// common accepting-path rejection stays signal-free.
    fn unreserve(&self) {
        self.total_queued.fetch_sub(1, Ordering::SeqCst);
        if !self.accepting.load(Ordering::SeqCst) {
            self.signal_work(true);
        }
    }

    /// Bumps the wakeup generation and wakes `all` (or one) drivers.
    fn signal_work(&self, all: bool) {
        *lk(&self.signal) += 1;
        if all {
            self.work.notify_all();
        } else {
            self.work.notify_one();
        }
    }

    /// Claims one job round-robin across tenants in first-seen order:
    /// the first tenant at or after the claim cursor with queued work
    /// and spare in-flight budget. The order is snapshotted outside any
    /// shard lock (the registration path locks shard-then-order, so
    /// holding order across shard locks here would invert and deadlock);
    /// each candidate's shard is then locked individually, so a claim
    /// scan never stalls admission to unrelated shards.
    fn claim_any(&self) -> Option<QueuedJob> {
        if self.total_queued.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let order: Vec<Arc<str>> = lk(&self.tenant_order).clone();
        let n = order.len();
        if n == 0 {
            return None;
        }
        let start = self.claim_cursor.load(Ordering::Relaxed);
        for k in 0..n {
            let i = (start + k) % n;
            let name = &order[i];
            let mut shard = lk(self.shard(name));
            let entry = shard.tenants.get_mut(name).expect("ordered tenant exists");
            if !entry.jobs.is_empty() && entry.in_flight < entry.quota.max_in_flight {
                let job = entry.jobs.pop_front().expect("checked non-empty");
                entry.in_flight += 1;
                self.claim_cursor.store((i + 1) % n, Ordering::Relaxed);
                self.total_queued.fetch_sub(1, Ordering::SeqCst);
                return Some(job);
            }
        }
        None
    }
    /// Backoff hint for overload rejections: half the median run time
    /// (one of the in-flight jobs is likely to free a slot by then),
    /// clamped to 1..=5000 ms, defaulting to 50 ms with no history.
    fn retry_hint_ms(&self) -> u64 {
        let p50_us = self.cells.run_time.stats().p50;
        if p50_us == 0 {
            50
        } else {
            (p50_us / 2000).clamp(1, 5000)
        }
    }

    fn fire(&self, event: JobEvent<'_>) {
        if let Some(hook) = &self.hook {
            hook(event);
        }
    }
}

/// A persistent multi-job exchange engine.
///
/// See the [crate docs](crate) for the execution model. Construction
/// spawns the worker pool and the driver threads; they idle until jobs
/// arrive and survive across jobs until [`shutdown`](Engine::shutdown).
pub struct Engine {
    shared: Arc<Shared>,
    drivers: Mutex<Vec<JoinHandle<()>>>,
    next_id: AtomicU64,
    /// The final stats snapshot, taken exactly once after every driver
    /// has joined. Serializes concurrent `shutdown` callers: the first
    /// does the teardown under this lock, later callers (and re-calls)
    /// get the same frozen snapshot instead of racing the join.
    final_stats: Mutex<Option<ServiceStats>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("pool_size", &self.shared.pool.size())
            .field("queue_depth", &self.shared.queue_depth)
            .finish_non_exhaustive()
    }
}

impl Engine {
    /// Starts an engine: spawns the shared pool and the driver threads.
    pub fn new(config: EngineConfig) -> Self {
        let shared = Arc::new(Shared {
            pool: WorkerPool::new(config.pool_size.max(1)),
            shards: (0..QUEUE_SHARDS)
                .map(|_| {
                    Mutex::new(QueueShard {
                        tenants: HashMap::new(),
                    })
                })
                .collect(),
            tenant_order: Mutex::new(Vec::new()),
            total_queued: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            claim_cursor: AtomicUsize::new(0),
            signal: Mutex::new(0),
            work: Condvar::new(),
            cache: Mutex::new(PlanCache::new(config.cache_capacity)),
            plan_ready: Condvar::new(),
            cells: StatCells::default(),
            queue_depth: config.queue_depth.max(1),
            default_quota: config.default_quota,
            hook: config.event_hook,
        });
        let drivers = (0..config.drivers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("torus-driver-{i}"))
                    .spawn(move || drive(&shared))
                    .expect("spawn driver thread")
            })
            .collect();
        Self {
            shared,
            drivers: Mutex::new(drivers),
            next_id: AtomicU64::new(0),
            final_stats: Mutex::new(None),
        }
    }

    /// Submits a job under the [`DEFAULT_TENANT`]. See
    /// [`submit_as`](Engine::submit_as).
    pub fn submit(
        &self,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        self.submit_as(DEFAULT_TENANT, shape, payload, config)
    }

    /// Submits a job on behalf of `tenant`: an exchange over `shape`
    /// carrying `payload` bytes, executed under `config` (worker count,
    /// block size, fault plan, failure policy — all per-job). Returns
    /// immediately with a handle; rejects (typed) instead of queueing
    /// unboundedly — globally at `queue_depth`, per tenant at the
    /// tenant's `max_queued`.
    pub fn submit_as(
        &self,
        tenant: &str,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        let shared = &self.shared;
        if !shared.accepting.load(Ordering::SeqCst) {
            shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        let retry_after_ms = shared.retry_hint_ms();
        // Reserve a global slot optimistically; undone on any rejection
        // below so the configured depth stays a hard bound.
        let reserved = shared.total_queued.fetch_add(1, Ordering::SeqCst);
        if reserved >= shared.queue_depth {
            shared.unreserve();
            let mut shard = lk(shared.shard(tenant));
            let entry = shared.entry_mut(&mut shard, tenant);
            entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
            shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                depth: shared.queue_depth,
                retry_after_ms,
            });
        }
        let mut shard = lk(shared.shard(tenant));
        let entry = shared.entry_mut(&mut shard, tenant);
        if entry.jobs.len() >= entry.quota.max_queued {
            let max_queued = entry.quota.max_queued;
            entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
            shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            drop(shard);
            shared.unreserve();
            return Err(SubmitError::TenantQueueFull {
                tenant: tenant.to_string(),
                max_queued,
                retry_after_ms,
            });
        }
        if let Some(rate) = entry.quota.rate {
            let bucket = entry.bucket.get_or_insert_with(|| TokenBucket::full(&rate));
            if let Err(wait_ms) = bucket.try_take(&rate) {
                entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
                shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
                drop(shard);
                shared.unreserve();
                return Err(SubmitError::RateLimited {
                    tenant: tenant.to_string(),
                    retry_after_ms: wait_ms,
                });
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.enqueue_shard_locked(&mut shard, tenant, id, shape, payload, config)
    }

    /// Re-enqueues a journal-recovered job under its original id,
    /// bypassing the queue-depth, quota, and rate-limit checks — the job
    /// was already admitted once, before the crash. Fails only while
    /// shutting down. Future fresh ids are bumped past `job_id` so the
    /// monotonic-id invariant survives the restart.
    pub fn resubmit_as(
        &self,
        tenant: &str,
        job_id: u64,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        let shared = &self.shared;
        if !shared.accepting.load(Ordering::SeqCst) {
            shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::ShuttingDown);
        }
        self.next_id.fetch_max(job_id, Ordering::Relaxed);
        shared.total_queued.fetch_add(1, Ordering::SeqCst);
        let mut shard = lk(shared.shard(tenant));
        self.enqueue_shard_locked(&mut shard, tenant, job_id, shape, payload, config)
    }

    /// Admission tail shared by fresh and replayed submissions: records
    /// acceptance, queues the job, wakes one driver, and closes the
    /// shutdown race. The caller has already reserved the job's
    /// `total_queued` slot.
    fn enqueue_shard_locked(
        &self,
        shard: &mut QueueShard,
        tenant: &str,
        id: u64,
        shape: TorusShape,
        payload: PayloadSpec,
        config: RuntimeConfig,
    ) -> Result<JobHandle, SubmitError> {
        let shared = &self.shared;
        let entry = shared.entry_mut(shard, tenant);
        let state = Arc::new(JobState::new());
        let tenant_name: Arc<str> = Arc::from(tenant);
        entry.cells.accepted.fetch_add(1, Ordering::Relaxed);
        let tenant_cells = Arc::clone(&entry.cells);
        entry.jobs.push_back(QueuedJob {
            id,
            shape,
            payload,
            config,
            state: Arc::clone(&state),
            tenant: tenant_name,
            tenant_cells,
            submitted_at: Instant::now(),
        });
        shared.cells.accepted.fetch_add(1, Ordering::Relaxed);
        shared
            .cells
            .observe_depth(shared.total_queued.load(Ordering::SeqCst));
        // With admission sharded, the accepting flag can flip between
        // the entry check and the push — and by then the drivers may
        // already have drained-and-exited without seeing this job. Undo
        // the enqueue if it is still sitting in the queue; if a driver
        // claimed it in the window, it was accepted in time and runs.
        if !shared.accepting.load(Ordering::SeqCst) {
            let entry = shared.entry_mut(shard, tenant);
            if let Some(pos) = entry.jobs.iter().position(|job| job.id == id) {
                entry.jobs.remove(pos);
                entry.cells.accepted.fetch_sub(1, Ordering::Relaxed);
                shared.cells.accepted.fetch_sub(1, Ordering::Relaxed);
                shared.cells.rejected.fetch_add(1, Ordering::Relaxed);
                entry.cells.rejected.fetch_add(1, Ordering::Relaxed);
                shared.total_queued.fetch_sub(1, Ordering::SeqCst);
                shared.signal_work(true);
                return Err(SubmitError::ShuttingDown);
            }
        }
        shared.signal_work(false);
        Ok(JobHandle { id, state })
    }

    /// Removes a still-queued job, failing it with a canceled error —
    /// the daemon's escape hatch when the admission journal cannot make
    /// an already-enqueued job durable (the client is then rejected, so
    /// the job must not run). Returns `false` when the job is unknown or
    /// a driver already claimed it; a claimed job runs to completion
    /// normally. The canceled job counts as failed, so per-tenant books
    /// (accepted == completed + failed) still balance.
    pub fn cancel_queued(&self, job_id: u64) -> bool {
        let shared = &self.shared;
        for shard in &shared.shards {
            let mut shard = lk(shard);
            let names: Vec<Arc<str>> = shard.tenants.keys().cloned().collect();
            for name in names {
                let entry = shard.tenants.get_mut(&name).expect("key just listed");
                if let Some(pos) = entry.jobs.iter().position(|job| job.id == job_id) {
                    let job = entry.jobs.remove(pos).expect("position just found");
                    shared.cells.failed.fetch_add(1, Ordering::Relaxed);
                    job.tenant_cells.failed.fetch_add(1, Ordering::Relaxed);
                    drop(shard);
                    shared.total_queued.fetch_sub(1, Ordering::SeqCst);
                    job.state.finish(
                        JobStatus::Failed,
                        JobResult {
                            job_id,
                            report: None,
                            deliveries: None,
                            error: Some("canceled: admission journal unavailable".to_string()),
                            cache_hit: false,
                        },
                    );
                    shared.signal_work(true);
                    return true;
                }
            }
        }
        false
    }

    /// Guarantees every future fresh id exceeds `id`. Used after crash
    /// recovery so ids of compacted (terminal, no longer replayed) jobs
    /// are never reissued.
    pub fn reserve_ids_through(&self, id: u64) {
        self.next_id.fetch_max(id, Ordering::Relaxed);
    }

    /// Overrides `tenant`'s quota (creating the tenant if new). Takes
    /// effect for subsequent admission and dispatch decisions; already
    /// queued jobs stay queued even if the new cap is lower.
    pub fn set_tenant_quota(&self, tenant: &str, quota: TenantQuota) {
        let mut shard = lk(self.shared.shard(tenant));
        self.shared.entry_mut(&mut shard, tenant).quota = quota;
        drop(shard);
        // A raised in-flight cap can make blocked work dispatchable.
        self.shared.signal_work(true);
    }

    /// A point-in-time snapshot of the aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let cache = lk(&self.shared.cache);
        self.shared.cells.snapshot(cache.hits(), cache.misses())
    }

    /// Per-tenant snapshots, in first-submission order.
    pub fn tenant_stats(&self) -> Vec<TenantStats> {
        let order: Vec<Arc<str>> = lk(&self.shared.tenant_order).clone();
        order
            .iter()
            .map(|name| {
                let shard = lk(self.shared.shard(name));
                shard.tenants[name].cells.snapshot(name)
            })
            .collect()
    }

    /// The shared pool's thread count.
    pub fn pool_size(&self) -> usize {
        self.shared.pool.size()
    }

    /// Jobs currently admitted but not yet claimed by a driver.
    pub fn queue_len(&self) -> usize {
        self.shared.total_queued.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stops admission, lets the drivers drain every
    /// queued job, joins them, tears down the pool, and returns the
    /// final stats. Idempotent, and safe to race: concurrent callers all
    /// receive the same post-drain snapshot — the teardown and the final
    /// stats read are serialized through one lock, so no caller can
    /// observe counters from before the last job finished.
    pub fn shutdown(&self) -> ServiceStats {
        let mut done = lk(&self.final_stats);
        if let Some(stats) = done.as_ref() {
            return stats.clone();
        }
        self.shared.accepting.store(false, Ordering::SeqCst);
        self.shared.signal_work(true);
        let handles: Vec<_> = lk(&self.drivers).drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.shared.pool.shutdown();
        let stats = self.stats();
        *done = Some(stats.clone());
        stats
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Driver loop: claim jobs round-robin across tenants until the queue
/// is drained *and* admission has stopped.
fn drive(shared: &Shared) {
    loop {
        let job = loop {
            // Read the wakeup generation *before* scanning, so a signal
            // that fires between a failed scan and the wait below moves
            // the generation and the wait returns immediately — no lost
            // wakeup, even though claims don't hold the signal lock.
            let gen_before = *lk(&shared.signal);
            if let Some(job) = shared.claim_any() {
                break Some(job);
            }
            // `claim_any` returning None with jobs still queued means
            // every tenant with work is at its in-flight cap; wait for
            // a finishing job's signal even mid-shutdown.
            if !shared.accepting.load(Ordering::SeqCst)
                && shared.total_queued.load(Ordering::SeqCst) == 0
            {
                break None;
            }
            let mut gen = lk(&shared.signal);
            while *gen == gen_before {
                gen = shared
                    .work
                    .wait(gen)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match job {
            Some(job) => {
                let wait_us = job.submitted_at.elapsed().as_micros() as u64;
                shared.cells.queue_wait.record(wait_us);
                job.tenant_cells.queue_wait.record(wait_us);
                let tenant = Arc::clone(&job.tenant);
                run_job(shared, job);
                let mut shard = lk(shared.shard(&tenant));
                if let Some(entry) = shard.tenants.get_mut(&tenant) {
                    entry.in_flight -= 1;
                }
                drop(shard);
                // The finished slot may unblock a capped tenant, and
                // shutdown waiters must recheck the drain condition.
                shared.signal_work(true);
            }
            None => return,
        }
    }
}

/// Executes one job on the shared pool. Every failure path lands in the
/// job's result — nothing a job does (bad shape, fault abort, worker
/// panic) escapes to the driver or the engine.
fn run_job(shared: &Shared, job: QueuedJob) {
    job.state.set_running();
    shared.fire(JobEvent::Started {
        job_id: job.id,
        tenant: &job.tenant,
    });
    let started = Instant::now();
    let finish_run = |failed: bool| {
        let run_us = started.elapsed().as_micros() as u64;
        shared.cells.run_time.record(run_us);
        job.tenant_cells.run_time.record(run_us);
        if failed {
            shared.cells.failed.fetch_add(1, Ordering::Relaxed);
            job.tenant_cells.failed.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.cells.completed.fetch_add(1, Ordering::Relaxed);
            job.tenant_cells.completed.fetch_add(1, Ordering::Relaxed);
        }
    };
    let nn = job.shape.num_nodes() as usize;
    let workers = job
        .config
        .workers
        .unwrap_or_else(torus_sim::default_threads)
        .clamp(1, nn.max(1))
        .min(shared.pool.size());
    let key = PlanKey {
        shape: job.shape.clone(),
        block_bytes: job.config.block_bytes,
        workers,
    };

    // Single-flight plan construction: exactly one driver builds a
    // cold key while the rest wait on `plan_ready`, so a burst of
    // same-shape jobs claimed by concurrent drivers pays for one
    // `O(N²)` prepare — and the hit/miss counters are deterministic
    // (one miss per cold key) instead of racing on who misses first.
    let (entry, cache_hit) = loop {
        let mut cache = lk(&shared.cache);
        match cache.begin_lookup(&key) {
            Lookup::Hit(entry) => break (entry, true),
            Lookup::Build => {
                // Build outside the cache lock so a cold build never
                // stalls other drivers' hits on warm keys.
                drop(cache);
                let prepared = match PreparedExchange::new(&job.shape) {
                    Ok(p) => Arc::new(p),
                    Err(e) => {
                        // Release the build claim before reporting, or
                        // every driver waiting on this key hangs.
                        lk(&shared.cache).abandon_build(&key);
                        shared.plan_ready.notify_all();
                        finish_run(true);
                        let result = job.state.finish(
                            JobStatus::Failed,
                            JobResult {
                                job_id: job.id,
                                report: None,
                                deliveries: None,
                                error: Some(format!("exchange setup failed: {e}")),
                                cache_hit: false,
                            },
                        );
                        shared.fire(JobEvent::Finished {
                            job_id: job.id,
                            tenant: &job.tenant,
                            status: JobStatus::Failed,
                            result: &result,
                        });
                        return;
                    }
                };
                let plan = prepared.step_plan_arc();
                let entry = Arc::new(CachedPlan {
                    prepared,
                    plan,
                    bank: Arc::new(torus_runtime::PoolBank::new()),
                });
                lk(&shared.cache).complete_build(key.clone(), Arc::clone(&entry));
                shared.plan_ready.notify_all();
                break (entry, false);
            }
            Lookup::Wait => {
                // The builder publishes (or abandons) under this same
                // mutex, so the wakeup cannot be lost between our
                // lookup and the wait.
                drop(
                    shared
                        .plan_ready
                        .wait(cache)
                        .unwrap_or_else(PoisonError::into_inner),
                );
            }
        }
    };

    let block_bytes = job.config.block_bytes;
    let payload = job.payload;
    let runtime = Runtime::from_shared(
        Arc::clone(&entry.prepared),
        Arc::clone(&entry.plan),
        job.config.clone(),
    );
    let outcome = runtime.run_pooled(&shared.pool, Some(&entry.bank), |s, d| {
        payload.payload(s, d, block_bytes)
    });
    match outcome {
        Ok((report, deliveries)) => {
            finish_run(false);
            if report.degraded.is_some() {
                shared.cells.degraded.fetch_add(1, Ordering::Relaxed);
            }
            shared
                .cells
                .wire_bytes
                .fetch_add(report.wire_bytes, Ordering::Relaxed);
            shared
                .cells
                .bytes_copied
                .fetch_add(report.bytes_copied, Ordering::Relaxed);
            let result = job.state.finish(
                JobStatus::Completed,
                JobResult {
                    job_id: job.id,
                    report: Some(report),
                    deliveries: Some(deliveries),
                    error: None,
                    cache_hit,
                },
            );
            shared.fire(JobEvent::Finished {
                job_id: job.id,
                tenant: &job.tenant,
                status: JobStatus::Completed,
                result: &result,
            });
        }
        Err(e) => {
            finish_run(true);
            // A fault abort still carries partial measurements worth
            // surfacing; count its wire traffic too.
            let (error, report) = match e {
                RuntimeError::Aborted { failure, report } => {
                    shared
                        .cells
                        .wire_bytes
                        .fetch_add(report.wire_bytes, Ordering::Relaxed);
                    shared
                        .cells
                        .bytes_copied
                        .fetch_add(report.bytes_copied, Ordering::Relaxed);
                    (format!("run aborted: {failure}"), Some(*report))
                }
                other => (other.to_string(), None),
            };
            let result = job.state.finish(
                JobStatus::Failed,
                JobResult {
                    job_id: job.id,
                    report,
                    deliveries: None,
                    error: Some(error),
                    cache_hit,
                },
            );
            shared.fire(JobEvent::Finished {
                job_id: job.id,
                tenant: &job.tenant,
                status: JobStatus::Failed,
                result: &result,
            });
        }
    }
}
