//! Job handles: the client's view of a submitted exchange.

use std::sync::{Arc, Condvar, Mutex, PoisonError};

use bytes::Bytes;
use torus_runtime::RuntimeReport;
use torus_topology::NodeId;

/// What bytes a job's blocks carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadSpec {
    /// The runtime's standard per-pair pattern
    /// ([`torus_runtime::pattern_payload`]): every `(src, dst)` pair is
    /// a distinct deterministic stream, shared by all jobs.
    Pattern,
    /// [`torus_runtime::seeded_payload`] re-keyed by `seed`: jobs with
    /// different seeds exchange fully distinct byte streams, which makes
    /// cross-job buffer aliasing detectable bit-exactly.
    Seeded {
        /// The job's payload seed.
        seed: u64,
    },
}

impl PayloadSpec {
    /// The payload bytes for pair `(src, dst)` under this spec.
    pub fn payload(&self, src: NodeId, dst: NodeId, len: usize) -> Bytes {
        match self {
            PayloadSpec::Pattern => torus_runtime::pattern_payload(src, dst, len),
            PayloadSpec::Seeded { seed } => torus_runtime::seeded_payload(*seed, src, dst, len),
        }
    }
}

/// Why [`Engine::submit`](crate::Engine::submit) refused a job.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded admission queue is at its configured depth; resubmit
    /// after in-flight jobs drain.
    QueueFull {
        /// The queue depth at rejection time (== the configured bound).
        depth: usize,
    },
    /// The submitting tenant alone is at its queued-jobs quota, even
    /// though the global queue may have room. Resubmit after this
    /// tenant's jobs drain.
    TenantQueueFull {
        /// The tenant that hit its quota.
        tenant: String,
        /// The tenant's configured cap at rejection time.
        max_queued: usize,
    },
    /// [`Engine::shutdown`](crate::Engine::shutdown) has begun; no new
    /// jobs are accepted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { depth } => {
                write!(f, "job rejected: queue full at depth {depth}")
            }
            SubmitError::TenantQueueFull { tenant, max_queued } => {
                write!(
                    f,
                    "job rejected: tenant {tenant:?} is at its queued-jobs quota ({max_queued})"
                )
            }
            SubmitError::ShuttingDown => write!(f, "job rejected: engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Lifecycle of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a driver.
    Queued,
    /// A driver is executing it on the shared pool.
    Running,
    /// Finished with a verified report.
    Completed,
    /// Finished with an error (setup failure, abort, or panic). The
    /// engine itself is unaffected.
    Failed,
}

/// The outcome of one job.
#[derive(Debug)]
pub struct JobResult {
    /// Engine-assigned submission id (FIFO order).
    pub job_id: u64,
    /// The runtime report. Present on completion; also present on a
    /// fault abort (partial measurements, `verified = false`).
    pub report: Option<RuntimeReport>,
    /// Per original node, the delivered `(source, payload)` pairs —
    /// present only on completion.
    pub deliveries: Option<Vec<Vec<(NodeId, Bytes)>>>,
    /// The failure description when [`JobStatus::Failed`].
    pub error: Option<String>,
    /// Whether the job's plan came from the cache.
    pub cache_hit: bool,
}

/// Shared state between a [`JobHandle`] and the engine's drivers.
#[derive(Debug)]
pub(crate) struct JobState {
    status: Mutex<(JobStatus, Option<Arc<JobResult>>)>,
    done: Condvar,
}

impl JobState {
    pub(crate) fn new() -> Self {
        Self {
            status: Mutex::new((JobStatus::Queued, None)),
            done: Condvar::new(),
        }
    }

    pub(crate) fn set_running(&self) {
        let mut slot = self.status.lock().unwrap_or_else(PoisonError::into_inner);
        slot.0 = JobStatus::Running;
    }

    pub(crate) fn finish(&self, status: JobStatus, result: JobResult) {
        let mut slot = self.status.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = (status, Some(Arc::new(result)));
        self.done.notify_all();
    }
}

/// A client's handle to a submitted job. Cheap to clone; dropping it
/// does not cancel the job.
#[derive(Clone, Debug)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) state: Arc<JobState>,
}

impl JobHandle {
    /// The engine-assigned submission id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job's current status without blocking.
    pub fn try_status(&self) -> JobStatus {
        self.state
            .status
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .0
    }

    /// Blocks until the job finishes and returns its result.
    pub fn wait(&self) -> Arc<JobResult> {
        let mut slot = self
            .state
            .status
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = &slot.1 {
                return Arc::clone(result);
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_specs_differ_and_are_deterministic() {
        let a = PayloadSpec::Pattern.payload(1, 2, 32);
        let b = PayloadSpec::Seeded { seed: 7 }.payload(1, 2, 32);
        let c = PayloadSpec::Seeded { seed: 8 }.payload(1, 2, 32);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(b, PayloadSpec::Seeded { seed: 7 }.payload(1, 2, 32));
    }

    #[test]
    fn handle_wait_returns_after_finish() {
        let state = Arc::new(JobState::new());
        let handle = JobHandle {
            id: 3,
            state: Arc::clone(&state),
        };
        assert_eq!(handle.try_status(), JobStatus::Queued);
        state.set_running();
        assert_eq!(handle.try_status(), JobStatus::Running);
        let waiter = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait())
        };
        state.finish(
            JobStatus::Failed,
            JobResult {
                job_id: 3,
                report: None,
                deliveries: None,
                error: Some("boom".to_string()),
                cache_hit: false,
            },
        );
        let result = waiter.join().unwrap();
        assert_eq!(result.job_id, 3);
        assert_eq!(result.error.as_deref(), Some("boom"));
        assert_eq!(handle.try_status(), JobStatus::Failed);
    }

    #[test]
    fn submit_error_messages_name_the_cause() {
        assert!(SubmitError::QueueFull { depth: 4 }
            .to_string()
            .contains("4"));
        let tenant_full = SubmitError::TenantQueueFull {
            tenant: "acme".to_string(),
            max_queued: 2,
        };
        assert!(tenant_full.to_string().contains("acme"));
        assert!(tenant_full.to_string().contains("2"));
        assert!(SubmitError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }
}
