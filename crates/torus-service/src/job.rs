//! Job handles: the client's view of a submitted exchange.

use std::sync::{Arc, Condvar, Mutex, PoisonError};

use bytes::Bytes;
use torus_runtime::RuntimeReport;
use torus_topology::NodeId;

/// What bytes a job's blocks carry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PayloadSpec {
    /// The runtime's standard per-pair pattern
    /// ([`torus_runtime::pattern_payload`]): every `(src, dst)` pair is
    /// a distinct deterministic stream, shared by all jobs.
    Pattern,
    /// [`torus_runtime::seeded_payload`] re-keyed by `seed`: jobs with
    /// different seeds exchange fully distinct byte streams, which makes
    /// cross-job buffer aliasing detectable bit-exactly.
    Seeded {
        /// The job's payload seed.
        seed: u64,
    },
}

impl PayloadSpec {
    /// The payload bytes for pair `(src, dst)` under this spec.
    pub fn payload(&self, src: NodeId, dst: NodeId, len: usize) -> Bytes {
        match self {
            PayloadSpec::Pattern => torus_runtime::pattern_payload(src, dst, len),
            PayloadSpec::Seeded { seed } => torus_runtime::seeded_payload(*seed, src, dst, len),
        }
    }

    /// The payload bytes for a collective's data identity `id` (a
    /// contributing node or a block key — see
    /// [`CollectivePlan::seed_id`](torus_runtime::CollectivePlan::seed_id)):
    /// the diagonal `(id, id)` stream of [`payload`](Self::payload), so
    /// collective and all-to-all jobs draw from the same deterministic
    /// generators.
    pub fn key_payload(&self, id: u32, len: usize) -> Bytes {
        self.payload(id, id, len)
    }
}

/// Why [`Engine::submit`](crate::Engine::submit) refused a job.
///
/// Overload rejections carry a `retry_after_ms` hint: the engine's best
/// estimate of when a resubmission is likely to be admitted. Clients
/// that honor it (see the daemon client's `submit_with_retry`) turn
/// saturation into slower admission instead of hard errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded admission queue is at its configured depth; resubmit
    /// after in-flight jobs drain.
    QueueFull {
        /// The queue depth at rejection time (== the configured bound).
        depth: usize,
        /// Suggested wait before resubmitting, in milliseconds.
        retry_after_ms: u64,
    },
    /// The submitting tenant alone is at its queued-jobs quota, even
    /// though the global queue may have room. Resubmit after this
    /// tenant's jobs drain.
    TenantQueueFull {
        /// The tenant that hit its quota.
        tenant: String,
        /// The tenant's configured cap at rejection time.
        max_queued: usize,
        /// Suggested wait before resubmitting, in milliseconds.
        retry_after_ms: u64,
    },
    /// The tenant's token-bucket rate limit is spent; resubmit after
    /// the bucket refills.
    RateLimited {
        /// The tenant that exceeded its rate.
        tenant: String,
        /// Milliseconds until one whole token will have accumulated.
        retry_after_ms: u64,
    },
    /// [`Engine::shutdown`](crate::Engine::shutdown) has begun; no new
    /// jobs are accepted.
    ShuttingDown,
}

impl SubmitError {
    /// The rejection's backoff hint, if it carries one (`ShuttingDown`
    /// does not — there is nothing to wait for).
    pub fn retry_after_ms(&self) -> Option<u64> {
        match self {
            SubmitError::QueueFull { retry_after_ms, .. }
            | SubmitError::TenantQueueFull { retry_after_ms, .. }
            | SubmitError::RateLimited { retry_after_ms, .. } => Some(*retry_after_ms),
            SubmitError::ShuttingDown => None,
        }
    }
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull {
                depth,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "job rejected: queue full at depth {depth} (retry after {retry_after_ms} ms)"
                )
            }
            SubmitError::TenantQueueFull {
                tenant,
                max_queued,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "job rejected: tenant {tenant:?} is at its queued-jobs quota ({max_queued}, \
                     retry after {retry_after_ms} ms)"
                )
            }
            SubmitError::RateLimited {
                tenant,
                retry_after_ms,
            } => {
                write!(
                    f,
                    "job rejected: tenant {tenant:?} is over its admission rate \
                     (retry after {retry_after_ms} ms)"
                )
            }
            SubmitError::ShuttingDown => write!(f, "job rejected: engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A job-lifecycle notification delivered to the engine's optional
/// event hook (see `EngineConfig::with_event_hook`).
///
/// Fired synchronously by the driver that owns the transition, after
/// the job's own state has been updated — a hook observing `Finished`
/// can already see the terminal status through the job's handle. Hooks
/// must be fast and must not call back into the engine.
#[derive(Debug)]
pub enum JobEvent<'a> {
    /// A driver claimed the job and is about to execute it.
    Started {
        /// Engine-assigned job id.
        job_id: u64,
        /// The owning tenant.
        tenant: &'a str,
    },
    /// The job reached a terminal state.
    Finished {
        /// Engine-assigned job id.
        job_id: u64,
        /// The owning tenant.
        tenant: &'a str,
        /// A terminal status: [`JobStatus::Completed`],
        /// [`JobStatus::Failed`], [`JobStatus::Cancelled`], or
        /// [`JobStatus::DeadlineExceeded`].
        status: JobStatus,
        /// The job's full result (report, deliveries, error).
        result: &'a JobResult,
    },
}

/// The engine's job-lifecycle observer: a shared closure invoked by
/// driver threads. Used by the daemon to journal `started`/`done`
/// records without a per-job watcher thread.
pub type EventHook = Arc<dyn Fn(JobEvent<'_>) + Send + Sync>;

/// Lifecycle of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, waiting for a driver.
    Queued,
    /// A driver is executing it on the shared pool.
    Running,
    /// Finished with a verified report.
    Completed,
    /// Finished with an error (setup failure, abort, or panic). The
    /// engine itself is unaffected.
    Failed,
    /// Stopped by an explicit [`Engine::cancel`](crate::Engine::cancel)
    /// — removed from the queue, or aborted cooperatively mid-run with
    /// a partial report.
    Cancelled,
    /// Reaped by the engine's watchdog (or an expired token) after its
    /// wall-clock deadline plus the configured grace passed.
    DeadlineExceeded,
}

impl JobStatus {
    /// Whether this status is terminal (the job will never transition
    /// again and its result is available).
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running)
    }
}

/// The outcome of one job.
#[derive(Debug)]
pub struct JobResult {
    /// Engine-assigned submission id (FIFO order).
    pub job_id: u64,
    /// The runtime report. Present on completion; also present on a
    /// fault abort (partial measurements, `verified = false`).
    pub report: Option<RuntimeReport>,
    /// Per original node, the delivered `(source, payload)` pairs —
    /// present only on completion.
    pub deliveries: Option<Vec<Vec<(NodeId, Bytes)>>>,
    /// The failure description when [`JobStatus::Failed`].
    pub error: Option<String>,
    /// Whether the job's plan came from the cache.
    pub cache_hit: bool,
}

/// Shared state between a [`JobHandle`] and the engine's drivers.
#[derive(Debug)]
pub(crate) struct JobState {
    status: Mutex<(JobStatus, Option<Arc<JobResult>>)>,
    done: Condvar,
}

impl JobState {
    pub(crate) fn new() -> Self {
        Self {
            status: Mutex::new((JobStatus::Queued, None)),
            done: Condvar::new(),
        }
    }

    pub(crate) fn set_running(&self) {
        let mut slot = self.status.lock().unwrap_or_else(PoisonError::into_inner);
        slot.0 = JobStatus::Running;
    }

    pub(crate) fn finish(&self, status: JobStatus, result: JobResult) -> Arc<JobResult> {
        let result = Arc::new(result);
        let mut slot = self.status.lock().unwrap_or_else(PoisonError::into_inner);
        *slot = (status, Some(Arc::clone(&result)));
        self.done.notify_all();
        result
    }
}

/// A client's handle to a submitted job. Cheap to clone; dropping it
/// does not cancel the job.
#[derive(Clone, Debug)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) state: Arc<JobState>,
}

impl JobHandle {
    /// The engine-assigned submission id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The job's current status without blocking.
    pub fn try_status(&self) -> JobStatus {
        self.state
            .status
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .0
    }

    /// Blocks until the job finishes and returns its result.
    pub fn wait(&self) -> Arc<JobResult> {
        let mut slot = self
            .state
            .status
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = &slot.1 {
                return Arc::clone(result);
            }
            slot = self
                .state
                .done
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_specs_differ_and_are_deterministic() {
        let a = PayloadSpec::Pattern.payload(1, 2, 32);
        let b = PayloadSpec::Seeded { seed: 7 }.payload(1, 2, 32);
        let c = PayloadSpec::Seeded { seed: 8 }.payload(1, 2, 32);
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(b, PayloadSpec::Seeded { seed: 7 }.payload(1, 2, 32));
    }

    #[test]
    fn handle_wait_returns_after_finish() {
        let state = Arc::new(JobState::new());
        let handle = JobHandle {
            id: 3,
            state: Arc::clone(&state),
        };
        assert_eq!(handle.try_status(), JobStatus::Queued);
        state.set_running();
        assert_eq!(handle.try_status(), JobStatus::Running);
        let waiter = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait())
        };
        state.finish(
            JobStatus::Failed,
            JobResult {
                job_id: 3,
                report: None,
                deliveries: None,
                error: Some("boom".to_string()),
                cache_hit: false,
            },
        );
        let result = waiter.join().unwrap();
        assert_eq!(result.job_id, 3);
        assert_eq!(result.error.as_deref(), Some("boom"));
        assert_eq!(handle.try_status(), JobStatus::Failed);
    }

    #[test]
    fn submit_error_messages_name_the_cause() {
        let queue_full = SubmitError::QueueFull {
            depth: 4,
            retry_after_ms: 25,
        };
        assert!(queue_full.to_string().contains("4"));
        assert!(queue_full.to_string().contains("25 ms"));
        assert_eq!(queue_full.retry_after_ms(), Some(25));
        let tenant_full = SubmitError::TenantQueueFull {
            tenant: "acme".to_string(),
            max_queued: 2,
            retry_after_ms: 10,
        };
        assert!(tenant_full.to_string().contains("acme"));
        assert!(tenant_full.to_string().contains("2"));
        assert_eq!(tenant_full.retry_after_ms(), Some(10));
        let limited = SubmitError::RateLimited {
            tenant: "acme".to_string(),
            retry_after_ms: 7,
        };
        assert!(limited.to_string().contains("rate"));
        assert_eq!(limited.retry_after_ms(), Some(7));
        assert!(SubmitError::ShuttingDown
            .to_string()
            .contains("shutting down"));
        assert_eq!(SubmitError::ShuttingDown.retry_after_ms(), None);
    }
}
