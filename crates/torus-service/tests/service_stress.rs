//! Service stress suite (feature `chaos`): a high job count pushed
//! through a deliberately shallow queue and small pool, with recoverable
//! fault plans and degraded jobs mixed in. Every admitted job must
//! finish, every clean job must verify bit-exactly, and the engine's
//! books must balance at shutdown.
//!
//! Serialized (`#[ignore]` + `--test-threads=1` in CI) because it
//! saturates the machine: `cargo test -p torus-service --features chaos
//! -- --ignored --test-threads=1`.

#![cfg(feature = "chaos")]

use std::time::Duration;

use torus_runtime::{
    seeded_payload, FaultPlan, OnFailure, RetryPolicy, RuntimeConfig, WorkerFaultKind,
};
use torus_service::{Engine, EngineConfig, JobStatus, PayloadSpec, SubmitError};
use torus_topology::TorusShape;

fn quick_retry() -> RetryPolicy {
    RetryPolicy::default()
        .with_deadline(Duration::from_millis(20))
        .with_backoff(Duration::from_micros(200))
}

/// 60 jobs against a queue of depth 4 and a pool of 3 threads: a
/// deterministic splitmix-style mix of clean, recoverable-fault,
/// degraded, and doomed-abort jobs. Resubmission retries on `QueueFull`
/// until every job is admitted, so the final books must account for all
/// 60 completions/failures plus every rejection.
#[ignore = "stress: saturates the queue and pool; run serialized via CI"]
#[test]
fn service_stress_every_admitted_job_finishes() {
    let engine = Engine::new(
        EngineConfig::default()
            .with_pool_size(3)
            .with_drivers(3)
            .with_queue_depth(4)
            .with_cache_capacity(2),
    );
    let shapes = [
        TorusShape::new_2d(4, 4).unwrap(),
        TorusShape::new_2d(2, 4).unwrap(),
        TorusShape::new_2d(4, 2).unwrap(),
    ];
    const JOBS: u64 = 60;
    let mut handles = Vec::new();
    let mut rejections = 0u64;
    let mut doomed = Vec::new();
    for i in 0..JOBS {
        let kind = i % 10;
        // Degraded jobs pin the 4x4: its post-quarantine repair is a
        // known-connected case, so the job must complete (degraded),
        // never fail.
        let shape = if kind == 6 {
            shapes[0].clone()
        } else {
            shapes[(i % 3) as usize].clone()
        };
        let cfg = RuntimeConfig::default()
            .with_workers(1)
            .with_block_bytes(48);
        let (cfg, expect_failure) = match kind {
            // Recoverable message faults: must still complete verified.
            3 => (
                cfg.with_faults(
                    FaultPlan::seeded(i)
                        .with_drop_rate(0.1)
                        .with_corrupt_rate(0.05),
                )
                .with_retry(quick_retry()),
                false,
            ),
            // Quarantine-and-continue: completes degraded.
            6 => (
                cfg.with_faults(FaultPlan::default().with_worker_fault(
                    1,
                    3,
                    WorkerFaultKind::Kill,
                ))
                .with_retry(quick_retry())
                .with_on_failure(OnFailure::Degrade),
                false,
            ),
            // Unrecoverable kill under Abort: fails alone.
            9 => (
                cfg.with_faults(FaultPlan::default().with_worker_fault(
                    1,
                    3,
                    WorkerFaultKind::Kill,
                ))
                .with_retry(quick_retry().with_max_retries(1))
                .with_on_failure(OnFailure::Abort),
                true,
            ),
            _ => (cfg, false),
        };
        // Admission-control backpressure: spin on QueueFull until the
        // drivers drain room for this job.
        let handle = loop {
            match engine.submit(shape.clone(), PayloadSpec::Seeded { seed: i }, cfg.clone()) {
                Ok(h) => break h,
                Err(SubmitError::QueueFull { depth, .. }) => {
                    assert_eq!(depth, 4);
                    rejections += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => panic!("unexpected rejection: {e}"),
            }
        };
        if expect_failure {
            doomed.push(handle.id());
        }
        handles.push((i, shape, handle));
    }

    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut degraded = 0u64;
    for (seed, shape, handle) in &handles {
        let result = handle.wait();
        match handle.try_status() {
            JobStatus::Completed => {
                completed += 1;
                let report = result.report.as_ref().unwrap();
                if let Some(d) = &report.degraded {
                    degraded += 1;
                    assert!(d.verified_degraded, "job {seed}: survivors must verify");
                } else {
                    assert!(report.verified, "job {seed} must verify");
                    let nn = shape.num_nodes();
                    let deliveries = result.deliveries.as_ref().unwrap();
                    for (dst, got) in deliveries.iter().enumerate() {
                        for (src, payload) in got {
                            assert_eq!(
                                payload,
                                &seeded_payload(*seed, *src, dst as u32, 48),
                                "job {seed} pair ({src}, {dst})"
                            );
                        }
                        assert_eq!(got.len() as u32, nn - 1);
                    }
                }
            }
            JobStatus::Failed => {
                failed += 1;
                assert!(
                    doomed.contains(&handle.id()),
                    "job {seed} failed unexpectedly: {:?}",
                    result.error
                );
            }
            other => panic!("job {seed} ended in {other:?}"),
        }
    }
    assert_eq!(completed + failed, JOBS);
    assert_eq!(failed, doomed.len() as u64, "exactly the doomed jobs fail");
    assert_eq!(degraded, JOBS / 10, "every kind-6 job degrades");

    let stats = engine.shutdown();
    assert_eq!(stats.jobs_accepted, JOBS);
    assert_eq!(stats.jobs_completed, completed);
    assert_eq!(stats.jobs_failed, failed);
    assert_eq!(stats.jobs_degraded, degraded);
    assert_eq!(stats.jobs_rejected, rejections);
    assert!(stats.queue_high_water <= 4);
    assert!(
        stats.cache_hits + stats.cache_misses >= JOBS,
        "every job consults the cache"
    );
}
