//! Job lifecycle hardening: explicit cancellation of queued and running
//! jobs, wall-clock deadlines enforced by the engine watchdog, and the
//! books invariant (`accepted == completed + failed + cancelled +
//! deadline_exceeded`) across every terminal path.

use std::time::{Duration, Instant};

use torus_runtime::{FaultPlan, RetryPolicy, RuntimeConfig, WorkerFaultKind};
use torus_service::{CancelOutcome, Engine, EngineConfig, JobHandle, JobStatus, PayloadSpec};
use torus_topology::TorusShape;

fn shape() -> TorusShape {
    TorusShape::new_2d(4, 4).unwrap()
}

fn quick_cfg() -> RuntimeConfig {
    RuntimeConfig::default()
        .with_workers(2)
        .with_block_bytes(64)
}

/// A run that pins a pool worker in a stall long enough that only a
/// cancel or the watchdog ends the job: the retry policy outlives the
/// stall, so the runtime itself never gives up first.
fn stalled_cfg(stall: Duration) -> RuntimeConfig {
    quick_cfg()
        .with_faults(FaultPlan::seeded(1).with_worker_fault(
            0,
            0,
            WorkerFaultKind::StallMicros(stall.as_micros() as u64),
        ))
        .with_retry(
            RetryPolicy::default()
                .with_deadline(Duration::from_secs(60))
                .with_max_retries(64),
        )
}

fn wait_until_running(handle: &JobHandle) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while handle.try_status() == JobStatus::Queued {
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn assert_books_balance(engine: &Engine) {
    let s = engine.stats();
    assert_eq!(
        s.jobs_accepted,
        s.jobs_completed + s.jobs_failed + s.jobs_cancelled + s.jobs_deadline_exceeded,
        "service books must balance: {s:?}"
    );
    for t in engine.tenant_stats() {
        assert_eq!(
            t.jobs_accepted,
            t.jobs_completed + t.jobs_failed + t.jobs_cancelled + t.jobs_deadline_exceeded,
            "tenant books must balance: {t:?}"
        );
    }
}

/// A queued job cancels synchronously: the engine finishes it on the
/// spot as `Cancelled` with a typed error, without a driver ever
/// touching it.
#[test]
fn cancel_queued_job_finishes_immediately() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2).with_drivers(1));
    // Occupy the single driver so the next submission stays queued.
    let blocker = engine
        .submit(
            shape(),
            PayloadSpec::Pattern,
            stalled_cfg(Duration::from_secs(2)),
        )
        .unwrap();
    wait_until_running(&blocker);
    let queued = engine
        .submit(shape(), PayloadSpec::Pattern, quick_cfg())
        .unwrap();
    assert_eq!(queued.try_status(), JobStatus::Queued);

    assert_eq!(engine.cancel(queued.id()), CancelOutcome::Cancelled);
    assert_eq!(queued.try_status(), JobStatus::Cancelled);
    let result = queued.wait();
    assert!(
        result.error.as_deref().unwrap_or("").contains("cancelled"),
        "cancelled job must carry a typed error, got {:?}",
        result.error
    );
    assert!(result.deliveries.is_none());

    // The blocker is unaffected; free the engine and check the books.
    assert_eq!(engine.cancel(blocker.id()), CancelOutcome::Cancelling);
    blocker.wait();
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_accepted, 2);
    assert_eq!(stats.jobs_cancelled, 2);
    assert_eq!(stats.jobs_completed, 0);
}

/// A running job stops at the next cancellation checkpoint — orders of
/// magnitude sooner than its injected stall would otherwise hold the
/// pool — and reports `Cancelled`, not `Failed`.
#[test]
fn cancel_running_job_aborts_promptly() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2).with_drivers(1));
    let job = engine
        .submit(
            shape(),
            PayloadSpec::Pattern,
            stalled_cfg(Duration::from_secs(30)),
        )
        .unwrap();
    wait_until_running(&job);

    let cancelled_at = Instant::now();
    assert_eq!(engine.cancel(job.id()), CancelOutcome::Cancelling);
    let result = job.wait();
    let to_terminal = cancelled_at.elapsed();
    assert_eq!(job.try_status(), JobStatus::Cancelled);
    assert!(
        to_terminal < Duration::from_secs(10),
        "cancel took {to_terminal:?} against a 30s stall"
    );
    assert!(result.error.is_some());

    // The pool reservation is released: a fresh job completes.
    let next = engine
        .submit(shape(), PayloadSpec::Pattern, quick_cfg())
        .unwrap();
    assert_eq!(next.wait().error, None);
    assert_books_balance(&engine);
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_cancelled, 1);
    assert_eq!(stats.jobs_completed, 1);
}

/// Cancelling ids the engine has never seen, or jobs already terminal,
/// is a safe no-op.
#[test]
fn cancel_unknown_or_terminal_is_a_noop() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2));
    assert_eq!(engine.cancel(12345), CancelOutcome::Unknown);
    let job = engine
        .submit(shape(), PayloadSpec::Pattern, quick_cfg())
        .unwrap();
    job.wait();
    assert_eq!(engine.cancel(job.id()), CancelOutcome::Unknown);
    assert_eq!(job.try_status(), JobStatus::Completed);
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.jobs_cancelled, 0);
}

/// The acceptance scenario: a job whose pinned worker stalls without
/// ever recovering, submitted with a wall-clock deadline, is reaped by
/// the watchdog within deadline + grace (plus scheduling slack),
/// reports the typed `DeadlineExceeded` status, frees its pool
/// reservation, and leaves the books balanced.
#[test]
fn watchdog_reaps_past_deadline_job() {
    let engine = Engine::new(
        EngineConfig::default()
            .with_pool_size(2)
            .with_drivers(1)
            .with_watchdog(Duration::from_millis(5), Duration::from_millis(20)),
    );
    let submitted_at = Instant::now();
    let job = engine
        .submit_with_deadline(
            "default",
            shape(),
            PayloadSpec::Pattern,
            stalled_cfg(Duration::from_secs(30)),
            Some(Duration::from_millis(150)),
        )
        .unwrap();
    let result = job.wait();
    let to_terminal = submitted_at.elapsed();
    assert_eq!(job.try_status(), JobStatus::DeadlineExceeded);
    assert!(
        result.error.as_deref().unwrap_or("").contains("deadline"),
        "deadline reap must carry a typed error, got {:?}",
        result.error
    );
    // Deadline 150ms + grace 20ms + watchdog tick + abort latency: the
    // 30s stall must not be what ended the job.
    assert!(
        to_terminal < Duration::from_secs(10),
        "watchdog took {to_terminal:?} against a 150ms deadline"
    );

    // Reservation freed: the engine still runs jobs to completion.
    let next = engine
        .submit(shape(), PayloadSpec::Pattern, quick_cfg())
        .unwrap();
    assert_eq!(next.wait().error, None);
    assert_books_balance(&engine);
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_deadline_exceeded, 1);
    assert_eq!(stats.watchdog_reaps, 1);
    assert_eq!(stats.jobs_completed, 1);
}

/// Jobs that name no deadline inherit the engine default, and the
/// server-side maximum clamps even explicit requests above it.
#[test]
fn default_and_max_deadline_bound_every_job() {
    let engine = Engine::new(
        EngineConfig::default()
            .with_pool_size(2)
            .with_drivers(2)
            .with_default_deadline(Duration::from_millis(100))
            .with_max_deadline(Duration::from_millis(200))
            .with_watchdog(Duration::from_millis(5), Duration::ZERO),
    );
    // No requested deadline: the default applies.
    let defaulted = engine
        .submit(
            shape(),
            PayloadSpec::Pattern,
            stalled_cfg(Duration::from_secs(30)),
        )
        .unwrap();
    // Requests far above the max: clamped to 200ms.
    let clamped = engine
        .submit_with_deadline(
            "default",
            shape(),
            PayloadSpec::Pattern,
            stalled_cfg(Duration::from_secs(30)),
            Some(Duration::from_secs(3600)),
        )
        .unwrap();
    let started = Instant::now();
    defaulted.wait();
    clamped.wait();
    assert_eq!(defaulted.try_status(), JobStatus::DeadlineExceeded);
    assert_eq!(clamped.try_status(), JobStatus::DeadlineExceeded);
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "both reaps must beat the 30s stalls by a wide margin"
    );
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_deadline_exceeded, 2);
    assert_eq!(stats.watchdog_reaps, 2);
}

/// A cancel storm across queued, running, and already-terminal jobs:
/// every job reaches exactly one terminal state and the books balance
/// at both the service and tenant level.
#[test]
fn cancel_storm_keeps_books_balanced() {
    let engine = Engine::new(
        EngineConfig::default()
            .with_pool_size(4)
            .with_drivers(2)
            .with_queue_depth(256),
    );
    let mut handles = Vec::new();
    for i in 0..24u64 {
        let tenant = format!("tenant-{}", i % 6);
        let cfg = if i % 3 == 0 {
            stalled_cfg(Duration::from_secs(20))
        } else {
            quick_cfg()
        };
        handles.push(
            engine
                .submit_as(&tenant, shape(), PayloadSpec::Pattern, cfg)
                .unwrap(),
        );
    }
    // Cancel everything, twice, racing the drivers. Whatever each
    // cancel observes (queued, running, already terminal) must resolve
    // to exactly one terminal state per job.
    for pass in 0..2 {
        for handle in &handles {
            let outcome = engine.cancel(handle.id());
            if pass == 1 {
                // Second pass: nothing is queued anymore, so a repeat
                // cancel is either still-cancelling or a no-op.
                assert_ne!(outcome, CancelOutcome::Cancelled);
            }
        }
    }
    for handle in &handles {
        let status = handle.wait();
        assert!(
            handle.try_status().is_terminal(),
            "job {} stuck in {:?}",
            handle.id(),
            handle.try_status()
        );
        drop(status);
    }
    assert_books_balance(&engine);
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_accepted, 24);
    assert_eq!(
        stats.jobs_completed + stats.jobs_failed + stats.jobs_cancelled,
        24,
        "no deadline was set, so terminals are completed/failed/cancelled only: {stats:?}"
    );
    assert!(stats.jobs_cancelled > 0, "the storm must land some cancels");
}
