//! Multi-tenant admission and accounting: typed quota rejections, fair
//! round-robin dispatch, per-tenant in-flight caps, latency percentiles,
//! and the concurrent-shutdown stats snapshot.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use torus_runtime::{FaultPlan, OnFailure, RetryPolicy, RuntimeConfig, WorkerFaultKind};
use torus_service::{
    Engine, EngineConfig, JobStatus, PayloadSpec, SubmitError, TenantQuota, DEFAULT_TENANT,
};
use torus_topology::TorusShape;

fn small_cfg() -> RuntimeConfig {
    RuntimeConfig::default()
        .with_workers(2)
        .with_block_bytes(64)
}

/// A config whose job holds its driver for at least `ms` before failing:
/// an unrecoverable worker kill under `Abort`, so the run spends the
/// whole receive deadline (plus one retry) before giving up.
fn blocker_cfg(ms: u64) -> RuntimeConfig {
    small_cfg()
        .with_faults(FaultPlan::default().with_worker_fault(1, 3, WorkerFaultKind::Kill))
        .with_retry(
            RetryPolicy::default()
                .with_deadline(Duration::from_millis(ms))
                .with_max_retries(1)
                .with_backoff(Duration::from_micros(500)),
        )
        .with_on_failure(OnFailure::Abort)
}

#[test]
fn tenant_queue_quota_rejects_typed_while_global_has_room() {
    let engine = Engine::new(
        EngineConfig::default()
            .with_pool_size(2)
            .with_drivers(1)
            .with_queue_depth(16),
    );
    engine.set_tenant_quota("acme", TenantQuota::default().with_max_queued(1));
    let shape = TorusShape::new_2d(4, 4).unwrap();

    // Pin the single driver for ~60 ms so queue contents are stable.
    let blocker = engine
        .submit(shape.clone(), PayloadSpec::Pattern, blocker_cfg(60))
        .unwrap();

    let first = engine
        .submit_as("acme", shape.clone(), PayloadSpec::Pattern, small_cfg())
        .unwrap();
    let err = engine
        .submit_as("acme", shape.clone(), PayloadSpec::Pattern, small_cfg())
        .unwrap_err();
    assert!(
        matches!(
            &err,
            SubmitError::TenantQueueFull {
                tenant,
                max_queued: 1,
                ..
            } if tenant == "acme"
        ),
        "expected acme's tenant-queue-full rejection, got {err:?}"
    );
    // Another tenant is unaffected by acme's quota.
    let other = engine
        .submit_as("zeta", shape, PayloadSpec::Pattern, small_cfg())
        .unwrap();

    assert_eq!(blocker.wait().job_id, blocker.id());
    first.wait();
    other.wait();
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_accepted, 3);
    assert_eq!(stats.jobs_rejected, 1);

    let tenants = engine.tenant_stats();
    let acme = tenants.iter().find(|t| t.tenant == "acme").unwrap();
    assert_eq!(acme.jobs_accepted, 1);
    assert_eq!(acme.jobs_rejected, 1);
    assert_eq!(acme.jobs_completed, 1);
    let zeta = tenants.iter().find(|t| t.tenant == "zeta").unwrap();
    assert_eq!(zeta.jobs_rejected, 0);
    let default = tenants.iter().find(|t| t.tenant == DEFAULT_TENANT).unwrap();
    assert_eq!(default.jobs_failed, 1, "the blocker job fails by design");
}

#[test]
fn dispatch_round_robins_across_tenants_not_fifo() {
    let engine = Engine::new(
        EngineConfig::default()
            .with_pool_size(2)
            .with_drivers(1)
            .with_queue_depth(16),
    );
    let shape = TorusShape::new_2d(4, 4).unwrap();

    // Pin the single driver, then queue two bursts: t1 submits both of
    // its jobs before t2 submits either. Global FIFO would run
    // a1 a2 b1 b2; round-robin must interleave a1 b1 a2 b2.
    let blocker = engine
        .submit(shape.clone(), PayloadSpec::Pattern, blocker_cfg(60))
        .unwrap();
    let order: Arc<Mutex<Vec<(char, u64)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut watchers = Vec::new();
    for (tenant, tag, seed) in [
        ("t1", 'a', 1u64),
        ("t1", 'a', 2),
        ("t2", 'b', 3),
        ("t2", 'b', 4),
    ] {
        let handle = engine
            .submit_as(
                tenant,
                shape.clone(),
                PayloadSpec::Seeded { seed },
                small_cfg(),
            )
            .unwrap();
        let order = Arc::clone(&order);
        watchers.push(std::thread::spawn(move || {
            let result = handle.wait();
            order.lock().unwrap().push((tag, result.job_id));
        }));
    }
    blocker.wait();
    for w in watchers {
        w.join().unwrap();
    }
    let tags: Vec<char> = order.lock().unwrap().iter().map(|(t, _)| *t).collect();
    assert_eq!(
        tags,
        vec!['a', 'b', 'a', 'b'],
        "single driver must alternate tenants, not drain t1 first"
    );
    engine.shutdown();
}

#[test]
fn in_flight_cap_serializes_a_tenants_jobs() {
    let engine = Engine::new(
        EngineConfig::default()
            .with_pool_size(4)
            .with_drivers(4)
            .with_queue_depth(16)
            .with_default_quota(TenantQuota::default().with_max_in_flight(1)),
    );
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|seed| {
            engine
                .submit(shape.clone(), PayloadSpec::Seeded { seed }, small_cfg())
                .unwrap()
        })
        .collect();
    // With four idle drivers and a cap of one, at most one job may be
    // Running at any sample point.
    loop {
        let statuses: Vec<_> = handles.iter().map(|h| h.try_status()).collect();
        let running = statuses
            .iter()
            .filter(|s| **s == JobStatus::Running)
            .count();
        assert!(running <= 1, "in-flight cap violated: {statuses:?}");
        if statuses.iter().all(|s| *s == JobStatus::Completed) {
            break;
        }
        std::thread::yield_now();
    }
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_completed, 4);
}

#[test]
fn latency_percentiles_populate_and_are_monotone() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2).with_drivers(2));
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let handles: Vec<_> = (0..12)
        .map(|seed| {
            engine
                .submit_as(
                    "lat",
                    shape.clone(),
                    PayloadSpec::Seeded { seed },
                    small_cfg(),
                )
                .unwrap()
        })
        .collect();
    for h in &handles {
        h.wait();
    }
    let stats = engine.shutdown();
    for (name, lat) in [
        ("queue_wait", stats.queue_wait),
        ("run_time", stats.run_time),
    ] {
        assert_eq!(lat.count, 12, "{name} must record every job");
        assert!(
            lat.p50 <= lat.p95 && lat.p95 <= lat.p99 && lat.p99 <= lat.max,
            "{name} percentiles must be monotone: {lat:?}"
        );
    }
    assert!(stats.run_time.max > 0, "an exchange takes measurable time");
    let tenants = engine.tenant_stats();
    let lat = tenants.iter().find(|t| t.tenant == "lat").unwrap();
    assert_eq!(lat.run_time.count, 12);
    assert!(lat.run_time.p50 <= lat.run_time.p99);
}

/// Regression: two threads racing `shutdown()` used to let the loser
/// snapshot stats before the winner's drivers had drained the queue,
/// returning undercounted totals. Both callers must now report the
/// same post-drain numbers.
#[test]
fn concurrent_shutdown_callers_see_identical_final_stats() {
    for round in 0..8u64 {
        let engine = Arc::new(Engine::new(
            EngineConfig::default()
                .with_pool_size(2)
                .with_drivers(2)
                .with_queue_depth(32),
        ));
        let shape = TorusShape::new_2d(4, 4).unwrap();
        for seed in 0..6 {
            engine
                .submit(
                    shape.clone(),
                    PayloadSpec::Seeded {
                        seed: round * 100 + seed,
                    },
                    small_cfg(),
                )
                .unwrap();
        }
        let racers: Vec<_> = (0..3)
            .map(|_| {
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || engine.shutdown())
            })
            .collect();
        let mut snapshots: Vec<_> = racers.into_iter().map(|t| t.join().unwrap()).collect();
        snapshots.push(engine.shutdown());
        for snap in &snapshots {
            assert_eq!(
                snap.jobs_completed, 6,
                "round {round}: a shutdown caller saw a pre-drain snapshot"
            );
            assert_eq!(snap, &snapshots[0], "round {round}: snapshots diverge");
        }
    }
}
