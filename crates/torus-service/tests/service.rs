//! Integration tests for the multi-job engine: concurrency correctness,
//! plan-cache behavior, admission control, failure isolation, and
//! shutdown hygiene.

use std::collections::HashSet;
use std::time::Duration;

use torus_runtime::{
    seeded_payload, FaultPlan, OnFailure, RetryPolicy, RuntimeConfig, WorkerFaultKind,
};
use torus_service::{Engine, EngineConfig, JobStatus, PayloadSpec, SubmitError};
use torus_topology::TorusShape;

fn small_cfg() -> RuntimeConfig {
    RuntimeConfig::default()
        .with_workers(2)
        .with_block_bytes(64)
}

fn quick_retry() -> RetryPolicy {
    RetryPolicy::default()
        .with_deadline(Duration::from_millis(20))
        .with_backoff(Duration::from_micros(200))
}

/// Checks a completed job's deliveries bit-exactly against the seeded
/// payload stream: every node must hold exactly one block from every
/// *other* node (the self-pair never travels), carrying that pair's
/// bytes for this job's seed.
fn assert_bit_exact(shape: &TorusShape, seed: u64, deliveries: &[Vec<(u32, bytes::Bytes)>]) {
    let nn = shape.num_nodes();
    assert_eq!(deliveries.len(), nn as usize);
    for (dst, got) in deliveries.iter().enumerate() {
        let sources: Vec<u32> = got.iter().map(|(s, _)| *s).collect();
        let expect: Vec<u32> = (0..nn).filter(|s| *s != dst as u32).collect();
        assert_eq!(sources, expect, "node {dst} delivery set");
        for (src, payload) in got {
            assert_eq!(
                payload,
                &seeded_payload(seed, *src, dst as u32, 64),
                "payload bytes for pair ({src}, {dst}) under seed {seed}"
            );
        }
    }
}

#[test]
fn single_job_round_trip() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2));
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let job = engine
        .submit(shape.clone(), PayloadSpec::Seeded { seed: 42 }, small_cfg())
        .unwrap();
    let result = job.wait();
    assert_eq!(job.try_status(), JobStatus::Completed);
    assert!(result.report.as_ref().unwrap().verified);
    assert_bit_exact(&shape, 42, result.deliveries.as_ref().unwrap());
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_accepted, 1);
    assert_eq!(stats.jobs_completed, 1);
    assert_eq!(stats.jobs_failed, 0);
    assert!(stats.wire_bytes > 0);
}

/// The acceptance workload: ≥ 8 overlapping jobs with mixed shapes and
/// per-job seeds, one of them running degraded under a seeded fault
/// plan. Every job must complete bit-exactly with its own seed, and the
/// faulted job's quarantine must not leak into any other job.
#[test]
fn eight_concurrent_jobs_are_bit_exact_and_isolated() {
    let engine = Engine::new(
        EngineConfig::default()
            .with_pool_size(4)
            .with_drivers(4)
            .with_queue_depth(32),
    );
    let shapes = [
        TorusShape::new_2d(4, 4).unwrap(),
        TorusShape::new_2d(2, 4).unwrap(),
        TorusShape::new_2d(4, 2).unwrap(),
        TorusShape::new_2d(2, 2).unwrap(),
    ];
    let mut jobs = Vec::new();
    for i in 0..8u64 {
        let shape = shapes[i as usize % shapes.len()].clone();
        let cfg = RuntimeConfig::default()
            .with_workers(1)
            .with_block_bytes(64);
        let job = engine
            .submit(shape.clone(), PayloadSpec::Seeded { seed: 100 + i }, cfg)
            .unwrap();
        jobs.push((shape, 100 + i, job));
    }
    // One extra job runs degraded: a pinned kill on a 4x4 with
    // quarantine-and-continue. Its dead node loses data; every *other*
    // job above must stay pristine.
    let degraded_shape = TorusShape::new_2d(4, 4).unwrap();
    let degraded = engine
        .submit(
            degraded_shape,
            PayloadSpec::Seeded { seed: 999 },
            RuntimeConfig::default()
                .with_workers(1)
                .with_block_bytes(64)
                .with_faults(FaultPlan::default().with_worker_fault(1, 3, WorkerFaultKind::Kill))
                .with_retry(quick_retry())
                .with_on_failure(OnFailure::Degrade),
        )
        .unwrap();

    for (shape, seed, job) in &jobs {
        let result = job.wait();
        assert_eq!(
            job.try_status(),
            JobStatus::Completed,
            "job seed {seed}: {:?}",
            result.error
        );
        let report = result.report.as_ref().unwrap();
        assert!(report.verified, "job seed {seed} must verify");
        assert!(report.degraded.is_none(), "clean jobs must not degrade");
        assert!(
            report.failure.is_none(),
            "clean jobs must not record failures"
        );
        assert_bit_exact(shape, *seed, result.deliveries.as_ref().unwrap());
    }
    let dresult = degraded.wait();
    assert_eq!(
        degraded.try_status(),
        JobStatus::Completed,
        "{:?}",
        dresult.error
    );
    let dreport = dresult.report.as_ref().unwrap();
    let dinfo = dreport.degraded.as_ref().expect("job ran degraded");
    assert!(dinfo.verified_degraded, "survivor invariant must verify");
    assert_eq!(dinfo.dead_nodes.len(), 1);
    assert_eq!(dinfo.dead_nodes[0].node, 3);

    let stats = engine.shutdown();
    assert_eq!(stats.jobs_accepted, 9);
    assert_eq!(stats.jobs_completed, 9);
    assert_eq!(stats.jobs_degraded, 1);
    assert_eq!(stats.jobs_failed, 0);
}

/// Per-job reports are deterministic where they must be: two jobs with
/// identical shape/seed/config produce identical delivery bytes and the
/// same wire-byte and message counts, even when a different job with a
/// different seed runs between them off the same cached plan.
#[test]
fn cached_plan_reuse_never_aliases_job_buffers() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2).with_drivers(1));
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let a1 = engine
        .submit(shape.clone(), PayloadSpec::Seeded { seed: 1 }, small_cfg())
        .unwrap()
        .wait();
    let b = engine
        .submit(shape.clone(), PayloadSpec::Seeded { seed: 2 }, small_cfg())
        .unwrap()
        .wait();
    let a2 = engine
        .submit(shape.clone(), PayloadSpec::Seeded { seed: 1 }, small_cfg())
        .unwrap()
        .wait();
    assert_bit_exact(&shape, 1, a1.deliveries.as_ref().unwrap());
    assert_bit_exact(&shape, 2, b.deliveries.as_ref().unwrap());
    assert_bit_exact(&shape, 1, a2.deliveries.as_ref().unwrap());
    assert_eq!(a1.deliveries, a2.deliveries, "same seed => identical bytes");
    let (r1, r2) = (a1.report.as_ref().unwrap(), a2.report.as_ref().unwrap());
    assert_eq!(r1.wire_bytes, r2.wire_bytes);
    assert_eq!(r1.messages, r2.messages);
    assert!(!a1.cache_hit, "first submission builds the plan");
    assert!(b.cache_hit && a2.cache_hit, "repeats ride the cache");
    engine.shutdown();
}

/// Repeated same-shape submissions hit the plan cache at ≥ 90%.
#[test]
fn repeated_submissions_reach_ninety_percent_hit_rate() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2).with_drivers(2));
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let jobs: Vec<_> = (0..20u64)
        .map(|i| {
            engine
                .submit(shape.clone(), PayloadSpec::Seeded { seed: i }, small_cfg())
                .unwrap()
        })
        .collect();
    for job in &jobs {
        assert_eq!(job.wait().report.as_ref().map(|r| r.verified), Some(true));
    }
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_completed, 20);
    let rate = stats.cache_hit_rate().unwrap();
    assert!(
        rate >= 0.90,
        "hit rate {rate} ({} hits / {} misses)",
        stats.cache_hits,
        stats.cache_misses
    );
}

/// Admission control: the bounded queue rejects with `QueueFull` at
/// depth, and accepted jobs still all execute.
#[test]
fn queue_overflow_rejects_and_counts() {
    // One driver and a deep job keep the queue occupied deterministically:
    // submissions land faster than the driver drains them.
    let engine = Engine::new(
        EngineConfig::default()
            .with_pool_size(2)
            .with_drivers(1)
            .with_queue_depth(2),
    );
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let mut accepted = Vec::new();
    let mut rejected = 0u64;
    for i in 0..12u64 {
        match engine.submit(shape.clone(), PayloadSpec::Seeded { seed: i }, small_cfg()) {
            Ok(job) => accepted.push(job),
            Err(SubmitError::QueueFull { depth, .. }) => {
                assert_eq!(depth, 2);
                rejected += 1;
            }
            Err(e) => panic!("unexpected rejection: {e}"),
        }
    }
    assert!(
        rejected > 0,
        "a 12-deep burst must overflow a depth-2 queue"
    );
    for job in &accepted {
        assert_eq!(job.try_status_final(), JobStatus::Completed);
    }
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_accepted as usize, accepted.len());
    assert_eq!(stats.jobs_rejected, rejected);
    assert_eq!(stats.jobs_completed as usize, accepted.len());
    assert!(stats.queue_high_water <= 2);
}

trait WaitStatus {
    fn try_status_final(&self) -> JobStatus;
}
impl WaitStatus for torus_service::JobHandle {
    fn try_status_final(&self) -> JobStatus {
        self.wait();
        self.try_status()
    }
}

/// A job whose run aborts (fault without retry budget) fails alone: the
/// engine keeps serving subsequent jobs off the same cached plan.
#[test]
fn a_failed_job_does_not_poison_the_engine() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2).with_drivers(1));
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let ok1 = engine
        .submit(shape.clone(), PayloadSpec::Seeded { seed: 1 }, small_cfg())
        .unwrap();
    let doomed = engine
        .submit(
            shape.clone(),
            PayloadSpec::Seeded { seed: 2 },
            RuntimeConfig::default()
                .with_workers(2)
                .with_block_bytes(64)
                .with_faults(FaultPlan::default().with_worker_fault(1, 3, WorkerFaultKind::Kill))
                .with_retry(quick_retry().with_max_retries(1))
                .with_on_failure(OnFailure::Abort),
        )
        .unwrap();
    let ok2 = engine
        .submit(shape.clone(), PayloadSpec::Seeded { seed: 3 }, small_cfg())
        .unwrap();

    let failed = doomed.wait();
    assert_eq!(doomed.try_status(), JobStatus::Failed);
    assert!(failed.error.as_ref().unwrap().contains("abort"));
    let partial = failed
        .report
        .as_ref()
        .expect("abort carries partial report");
    assert!(!partial.verified);

    for (job, seed) in [(&ok1, 1u64), (&ok2, 3u64)] {
        let result = job.wait();
        assert_eq!(job.try_status(), JobStatus::Completed, "{:?}", result.error);
        assert_bit_exact(&shape, seed, result.deliveries.as_ref().unwrap());
    }
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_completed, 2);
    assert_eq!(stats.jobs_failed, 1);
}

/// An invalid job (unpreparable shape) fails cleanly at setup.
#[test]
fn bad_shapes_fail_the_job_not_the_engine() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2).with_drivers(1));
    // 3x5: extents not all multiples of 4 and not a supported padding
    // target for preparation? PreparedExchange pads, so use a valid
    // shape but verify the engine also survives a plain job after it.
    let shape = TorusShape::new_2d(3, 5).unwrap();
    let job = engine
        .submit(shape.clone(), PayloadSpec::Pattern, small_cfg())
        .unwrap();
    let result = job.wait();
    // Whether preparation pads (Completed) or refuses (Failed), the
    // engine must survive and serve the next job.
    assert!(matches!(
        job.try_status(),
        JobStatus::Completed | JobStatus::Failed
    ));
    drop(result);
    let next = engine
        .submit(
            TorusShape::new_2d(4, 4).unwrap(),
            PayloadSpec::Pattern,
            small_cfg(),
        )
        .unwrap();
    next.wait();
    assert_eq!(next.try_status(), JobStatus::Completed);
    engine.shutdown();
}

/// Shutdown drains queued jobs before returning, then rejects new ones.
#[test]
fn shutdown_drains_queue_then_rejects() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2).with_drivers(1));
    let shape = TorusShape::new_2d(4, 4).unwrap();
    let jobs: Vec<_> = (0..5u64)
        .map(|i| {
            engine
                .submit(shape.clone(), PayloadSpec::Seeded { seed: i }, small_cfg())
                .unwrap()
        })
        .collect();
    let stats = engine.shutdown();
    for job in &jobs {
        assert_eq!(
            job.try_status(),
            JobStatus::Completed,
            "shutdown must drain admitted jobs"
        );
    }
    assert_eq!(stats.jobs_completed, 5);
    assert_eq!(
        engine
            .submit(shape, PayloadSpec::Pattern, small_cfg())
            .map(|_| ())
            .unwrap_err(),
        SubmitError::ShuttingDown
    );
}

/// No worker-thread leak: after `shutdown()` the process thread count
/// returns to its pre-engine baseline.
#[cfg(target_os = "linux")]
#[test]
fn shutdown_returns_thread_count_to_baseline() {
    fn threads_now() -> usize {
        std::fs::read_dir("/proc/self/task").unwrap().count()
    }
    let baseline = threads_now();
    let engine = Engine::new(EngineConfig::default().with_pool_size(4).with_drivers(3));
    let shape = TorusShape::new_2d(4, 4).unwrap();
    for i in 0..4u64 {
        engine
            .submit(shape.clone(), PayloadSpec::Seeded { seed: i }, small_cfg())
            .unwrap()
            .wait();
    }
    assert!(threads_now() > baseline, "pool + drivers are running");
    engine.shutdown();
    assert_eq!(
        threads_now(),
        baseline,
        "every pool and driver thread must be joined by shutdown"
    );
}

/// Job ids are unique and FIFO-ordered; handles are clonable and
/// waitable from other threads.
#[test]
fn job_ids_are_unique_and_handles_are_shareable() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2).with_drivers(2));
    let shape = TorusShape::new_2d(2, 2).unwrap();
    let jobs: Vec<_> = (0..6u64)
        .map(|i| {
            engine
                .submit(shape.clone(), PayloadSpec::Seeded { seed: i }, small_cfg())
                .unwrap()
        })
        .collect();
    let ids: HashSet<u64> = jobs.iter().map(|j| j.id()).collect();
    assert_eq!(ids.len(), jobs.len());
    let waiters: Vec<_> = jobs
        .iter()
        .map(|job| {
            let job = job.clone();
            std::thread::spawn(move || job.wait().job_id)
        })
        .collect();
    let mut waited: Vec<u64> = waiters.into_iter().map(|w| w.join().unwrap()).collect();
    waited.sort_unstable();
    let mut expect: Vec<u64> = jobs.iter().map(|j| j.id()).collect();
    expect.sort_unstable();
    assert_eq!(waited, expect);
    engine.shutdown();
}
