//! Collectives through the persistent engine: submission, plan-cache
//! sharing, per-op accounting, and failure isolation.

use std::time::Duration;

use torus_runtime::RuntimeConfig;
use torus_service::{
    CollectiveOp, Dtype, Engine, EngineConfig, JobOp, JobStatus, PayloadSpec, ReduceOp,
};
use torus_topology::TorusShape;

fn submit(engine: &Engine, op: JobOp, seed: u64) -> torus_service::JobHandle {
    engine
        .submit_op_with_deadline(
            "acme",
            TorusShape::new_2d(4, 4).unwrap(),
            op,
            PayloadSpec::Seeded { seed },
            RuntimeConfig::default().with_workers(2),
            Some(Duration::from_secs(30)),
        )
        .unwrap()
}

#[test]
fn every_collective_op_completes_through_the_engine() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(4));
    let ops = [
        JobOp::Collective(CollectiveOp::Broadcast { root: 3 }),
        JobOp::Collective(CollectiveOp::Scatter { root: 0 }),
        JobOp::Collective(CollectiveOp::Gather { root: 7 }),
        JobOp::Collective(CollectiveOp::Allgather),
        JobOp::Collective(CollectiveOp::Reduce {
            root: 1,
            op: ReduceOp::Sum,
            dtype: Dtype::U64,
        }),
        JobOp::Collective(CollectiveOp::Allreduce {
            op: ReduceOp::Sum,
            dtype: Dtype::F32,
        }),
        JobOp::Alltoall,
    ];
    let handles: Vec<_> = ops.iter().map(|op| submit(&engine, *op, 9)).collect();
    for (op, h) in ops.iter().zip(&handles) {
        let result = h.wait();
        assert_eq!(
            h.try_status(),
            JobStatus::Completed,
            "{op:?}: {:?}",
            result.error
        );
        let report = result.report.as_ref().unwrap();
        assert!(report.verified, "{op:?} must verify");
        assert!(result.deliveries.is_some());
    }
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_completed, 7);
    // One accepted and one completed in every op slot.
    for name in JobOp::NAMES {
        assert_eq!(stats.op_counts(name), Some((1, 1)), "op slot {name}");
    }
    assert_eq!(stats.op_counts("nonsense"), None);
}

#[test]
fn same_collective_twice_shares_the_cached_plan() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(4));
    let op = JobOp::Collective(CollectiveOp::Allreduce {
        op: ReduceOp::Sum,
        dtype: Dtype::U64,
    });
    let first = submit(&engine, op, 1).wait();
    let second = submit(&engine, op, 2).wait();
    assert!(!first.cache_hit, "cold key builds");
    assert!(second.cache_hit, "same (shape, bytes, workers, op) hits");
    // A different root is a different plan, not a hit.
    let other = submit(
        &engine,
        JobOp::Collective(CollectiveOp::Broadcast { root: 0 }),
        3,
    )
    .wait();
    assert!(!other.cache_hit);
    let stats = engine.shutdown();
    assert_eq!(stats.cache_hits, 1);
    assert_eq!(stats.cache_misses, 2);
}

#[test]
fn invalid_collective_fails_the_job_not_the_engine() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2));
    // Root 99 does not exist on a 16-node torus.
    let bad = submit(
        &engine,
        JobOp::Collective(CollectiveOp::Broadcast { root: 99 }),
        1,
    )
    .wait();
    assert!(bad.error.as_deref().unwrap().contains("root"));
    // The engine survives and runs the next job normally.
    let good = submit(&engine, JobOp::Collective(CollectiveOp::Allgather), 2).wait();
    assert!(good.report.as_ref().unwrap().verified);
    let stats = engine.shutdown();
    assert_eq!(stats.jobs_failed, 1);
    assert_eq!(stats.jobs_completed, 1);
}

#[test]
fn lane_mismatch_is_a_typed_job_failure() {
    let engine = Engine::new(EngineConfig::default().with_pool_size(2));
    let handle = engine
        .submit_op_with_deadline(
            "acme",
            TorusShape::new_2d(4, 4).unwrap(),
            JobOp::Collective(CollectiveOp::Reduce {
                root: 0,
                op: ReduceOp::Sum,
                dtype: Dtype::U64,
            }),
            PayloadSpec::Pattern,
            RuntimeConfig::default()
                .with_workers(2)
                .with_block_bytes(12),
            None,
        )
        .unwrap();
    let result = handle.wait();
    assert_eq!(handle.try_status(), JobStatus::Failed);
    assert!(result.error.as_deref().unwrap().contains("lane"));
    engine.shutdown();
}
