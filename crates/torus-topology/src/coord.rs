//! Fixed-capacity multidimensional coordinates.
//!
//! A [`Coord`] identifies a node position inside a torus of up to
//! [`MAX_DIMS`] dimensions. It is a small inline array (no heap allocation),
//! because coordinates are created in the innermost loops of schedule
//! generation and simulation.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Maximum number of torus dimensions supported by the library.
///
/// Eight dimensions is far beyond any published torus machine (the paper
/// evaluates 2D and 3D, and sketches the general n-D case); the bound keeps
/// [`Coord`] a cheap, `Copy`, stack-only value.
pub const MAX_DIMS: usize = 8;

/// A multidimensional coordinate with inline storage.
///
/// Coordinates are ordered lexicographically, compare by value, and hash by
/// value, so they can be used as map keys. Dimension count is fixed at
/// construction.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Coord {
    len: u8,
    xs: [u32; MAX_DIMS],
}

impl Coord {
    /// Creates a coordinate from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs.len() > MAX_DIMS` or `xs` is empty.
    #[inline]
    pub fn new(xs: &[u32]) -> Self {
        assert!(
            !xs.is_empty(),
            "coordinate must have at least one dimension"
        );
        assert!(
            xs.len() <= MAX_DIMS,
            "coordinate has {} dimensions, max is {MAX_DIMS}",
            xs.len()
        );
        let mut buf = [0u32; MAX_DIMS];
        buf[..xs.len()].copy_from_slice(xs);
        Self {
            len: xs.len() as u8,
            xs: buf,
        }
    }

    /// Creates the all-zero coordinate with `n` dimensions.
    #[inline]
    pub fn zero(n: usize) -> Self {
        assert!((1..=MAX_DIMS).contains(&n));
        Self {
            len: n as u8,
            xs: [0; MAX_DIMS],
        }
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.len as usize
    }

    /// The coordinate values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        &self.xs[..self.len as usize]
    }

    /// Returns a copy with dimension `dim` replaced by `value`.
    #[inline]
    pub fn with(&self, dim: usize, value: u32) -> Self {
        let mut c = *self;
        c[dim] = value;
        c
    }

    /// Component-wise `self[d] mod m` — used for node-group classification.
    #[inline]
    pub fn mod_each(&self, m: u32) -> Self {
        let mut c = *self;
        for d in 0..self.ndims() {
            c[d] %= m;
        }
        c
    }

    /// Component-wise integer division — used for submesh identification.
    #[inline]
    pub fn div_each(&self, m: u32) -> Self {
        let mut c = *self;
        for d in 0..self.ndims() {
            c[d] /= m;
        }
        c
    }

    /// Sum of all components (useful for `(r + c) mod 4` style direction
    /// selectors).
    #[inline]
    pub fn component_sum(&self) -> u64 {
        self.as_slice().iter().map(|&x| x as u64).sum()
    }
}

impl Index<usize> for Coord {
    type Output = u32;

    #[inline]
    fn index(&self, dim: usize) -> &u32 {
        debug_assert!(dim < self.ndims());
        &self.xs[dim]
    }
}

impl IndexMut<usize> for Coord {
    #[inline]
    fn index_mut(&mut self, dim: usize) -> &mut u32 {
        debug_assert!(dim < self.ndims());
        &mut self.xs[dim]
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{:?}", self.as_slice())
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_and_accessors() {
        let c = Coord::new(&[1, 2, 3]);
        assert_eq!(c.ndims(), 3);
        assert_eq!(c.as_slice(), &[1, 2, 3]);
        assert_eq!(c[0], 1);
        assert_eq!(c[2], 3);
    }

    #[test]
    fn zero_is_all_zero() {
        let c = Coord::zero(4);
        assert_eq!(c.as_slice(), &[0, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one dimension")]
    fn empty_panics() {
        Coord::new(&[]);
    }

    #[test]
    #[should_panic(expected = "max is")]
    fn too_many_dims_panics() {
        Coord::new(&[0; MAX_DIMS + 1]);
    }

    #[test]
    fn with_replaces_one_dim() {
        let c = Coord::new(&[5, 6]);
        let d = c.with(1, 9);
        assert_eq!(d.as_slice(), &[5, 9]);
        // original untouched
        assert_eq!(c.as_slice(), &[5, 6]);
    }

    #[test]
    fn mod_div_each() {
        let c = Coord::new(&[7, 10, 3]);
        assert_eq!(c.mod_each(4).as_slice(), &[3, 2, 3]);
        assert_eq!(c.div_each(4).as_slice(), &[1, 2, 0]);
    }

    #[test]
    fn component_sum() {
        assert_eq!(Coord::new(&[3, 4, 5]).component_sum(), 12);
    }

    #[test]
    fn equality_ignores_trailing_storage() {
        // Two coords built differently but with same logical value are equal.
        let a = Coord::new(&[1, 2]);
        let b = Coord::zero(2).with(0, 1).with(1, 2);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }

    #[test]
    fn display_and_debug() {
        let c = Coord::new(&[4, 8]);
        assert_eq!(format!("{c}"), "(4,8)");
        assert_eq!(format!("{c:?}"), "P[4, 8]");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let a = Coord::new(&[0, 9]);
        let b = Coord::new(&[1, 0]);
        assert!(a < b);
    }
}
