//! Channels and route generation.
//!
//! A wormhole-routed message occupies every unidirectional [`Channel`] on
//! its path for the duration of a communication step (paper Section 2), so
//! contention checking needs the exact channel list of every transmission.

use crate::coord::Coord;
use crate::direction::Direction;
use crate::ring::ring_sub;
use crate::shape::{NodeId, TorusShape};

/// A unidirectional physical link between two *adjacent* torus nodes.
///
/// Full-duplex links are modelled as two `Channel`s with swapped endpoints.
/// Equality/hash on the endpoint pair identifies the physical resource.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Channel {
    /// Upstream node id.
    pub from: NodeId,
    /// Downstream node id (a torus neighbor of `from`).
    pub to: NodeId,
}

impl Channel {
    /// Constructs a channel; the caller asserts adjacency.
    #[inline]
    pub fn new(from: NodeId, to: NodeId) -> Self {
        Self { from, to }
    }
}

/// The channel path of a message travelling `hops` hops from `from` along a
/// single direction `dir`, with wraparound.
///
/// Returns `hops` channels; the message's header traverses them in order.
pub fn ring_path(shape: &TorusShape, from: &Coord, dir: Direction, hops: u32) -> Vec<Channel> {
    debug_assert!(
        hops < shape.extent(dir.dim()),
        "a {hops}-hop ring path would lap a ring of size {}",
        shape.extent(dir.dim())
    );
    let mut path = Vec::with_capacity(hops as usize);
    let mut cur = *from;
    for _ in 0..hops {
        let next = shape.neighbor(&cur, dir);
        path.push(Channel::new(shape.index_of(&cur), shape.index_of(&next)));
        cur = next;
    }
    path
}

/// Minimal direction and hop count from `a` to `b` along dimension `dim`:
/// picks whichever ring direction is shorter, preferring `Plus` on ties.
/// Returns `None` if the coordinates already agree in that dimension.
pub fn minimal_dir(
    shape: &TorusShape,
    a: &Coord,
    b: &Coord,
    dim: usize,
) -> Option<(Direction, u32)> {
    let k = shape.extent(dim);
    let fwd = ring_sub(b[dim], a[dim], k);
    if fwd == 0 {
        return None;
    }
    let bwd = k - fwd;
    if fwd <= bwd {
        Some((Direction::plus(dim), fwd))
    } else {
        Some((Direction::minus(dim), bwd))
    }
}

/// Dimension-ordered (e-cube) route from `src` to `dst`: corrects dimension
/// 0 first, then 1, …, taking the minimal ring direction in each.
///
/// This is the deterministic routing used by wormhole torus routers such as
/// the Cray T3D, and the routing the simulator assumes for messages that
/// are not single-dimension shifts.
pub fn dor_path(shape: &TorusShape, src: &Coord, dst: &Coord) -> Vec<Channel> {
    let mut path = Vec::new();
    let mut cur = *src;
    for dim in 0..shape.ndims() {
        if let Some((dir, hops)) = minimal_dir(shape, &cur, dst, dim) {
            path.extend(ring_path(shape, &cur, dir, hops));
            cur = cur.with(dim, dst[dim]);
        }
    }
    debug_assert_eq!(cur, *dst);
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> TorusShape {
        TorusShape::new_2d(8, 8).unwrap()
    }

    #[test]
    fn ring_path_simple() {
        let s = shape();
        let p = ring_path(&s, &Coord::new(&[0, 0]), Direction::plus(1), 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0], Channel::new(0, 1));
        assert_eq!(p[1], Channel::new(1, 2));
        assert_eq!(p[2], Channel::new(2, 3));
    }

    #[test]
    fn ring_path_wraps() {
        let s = shape();
        let p = ring_path(&s, &Coord::new(&[0, 6]), Direction::plus(1), 3);
        let ids: Vec<(u32, u32)> = p.iter().map(|c| (c.from, c.to)).collect();
        assert_eq!(ids, vec![(6, 7), (7, 0), (0, 1)]);
    }

    #[test]
    fn ring_path_negative_direction() {
        let s = shape();
        let p = ring_path(&s, &Coord::new(&[1, 0]), Direction::minus(0), 2);
        // rows: node (1,0)=8 -> (0,0)=0 -> (7,0)=56
        let ids: Vec<(u32, u32)> = p.iter().map(|c| (c.from, c.to)).collect();
        assert_eq!(ids, vec![(8, 0), (0, 56)]);
    }

    #[test]
    fn minimal_dir_picks_shorter_side() {
        let s = shape();
        let a = Coord::new(&[0, 1]);
        let b = Coord::new(&[0, 7]);
        // +6 hops vs -2 hops: minus wins.
        let (dir, hops) = minimal_dir(&s, &a, &b, 1).unwrap();
        assert_eq!(dir, Direction::minus(1));
        assert_eq!(hops, 2);
    }

    #[test]
    fn minimal_dir_prefers_plus_on_tie() {
        let s = shape();
        let a = Coord::new(&[0, 0]);
        let b = Coord::new(&[0, 4]);
        let (dir, hops) = minimal_dir(&s, &a, &b, 1).unwrap();
        assert_eq!(dir, Direction::plus(1));
        assert_eq!(hops, 4);
    }

    #[test]
    fn minimal_dir_none_when_aligned() {
        let s = shape();
        assert!(minimal_dir(&s, &Coord::new(&[3, 5]), &Coord::new(&[3, 2]), 0).is_none());
    }

    #[test]
    fn dor_path_corrects_dims_in_order() {
        let s = shape();
        let p = dor_path(&s, &Coord::new(&[0, 0]), &Coord::new(&[2, 3]));
        assert_eq!(p.len(), 5);
        // First two channels move along dim 0 (rows), next three along dim 1.
        assert_eq!(p[0], Channel::new(0, 8));
        assert_eq!(p[1], Channel::new(8, 16));
        assert_eq!(p[2], Channel::new(16, 17));
        assert_eq!(p[4].to, s.index_of(&Coord::new(&[2, 3])));
    }

    #[test]
    fn dor_path_empty_for_self() {
        let s = shape();
        let c = Coord::new(&[5, 5]);
        assert!(dor_path(&s, &c, &c).is_empty());
    }

    #[test]
    fn dor_path_hop_count_is_sum_of_ring_distances() {
        let s = TorusShape::new(&[6, 10, 4]).unwrap();
        for (a, b) in [
            ([0u32, 0, 0], [3, 9, 2]),
            ([5, 5, 3], [0, 0, 0]),
            ([2, 7, 1], [2, 7, 1]),
        ] {
            let ca = Coord::new(&a);
            let cb = Coord::new(&b);
            let p = dor_path(&s, &ca, &cb);
            let want: u32 = (0..3)
                .map(|d| crate::ring::ring_distance(ca[d], cb[d], s.extent(d)))
                .sum();
            assert_eq!(p.len() as u32, want);
        }
    }

    #[test]
    fn path_is_contiguous() {
        let s = TorusShape::new(&[6, 10, 4]).unwrap();
        let p = dor_path(&s, &Coord::new(&[1, 2, 3]), &Coord::new(&[4, 9, 0]));
        for w in p.windows(2) {
            assert_eq!(w[0].to, w[1].from, "path must be link-contiguous");
        }
    }
}
