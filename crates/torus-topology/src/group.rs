//! Node groups and submesh decomposition (paper Sections 3 and 4.1).
//!
//! For a torus whose dimensions are all multiples of four:
//!
//! * Node `P(x_1, …, x_n)` belongs to **group** `(x_1 mod 4, …, x_n mod 4)`.
//!   There are `4^n` groups, each forming an `a_1/4 × … × a_n/4` subtorus
//!   whose "hops" are strides of four in the full torus.
//! * Dividing the torus into contiguous `4 × … × 4` **submeshes (SMs)**,
//!   each submesh contains exactly one node of every group. Node
//!   `P(x_1,…,x_n)` lies in submesh `(⌊x_1/4⌋, …, ⌊x_n/4⌋)`.
//!
//! The key routing fact used by the exchange algorithms: a block travelling
//! from source `s` to destination `d` is first delivered (within `s`'s
//! group, phases `1..n`) to the **group representative** — the unique node
//! of `s`'s group inside `d`'s submesh — and then moved to `d` inside the
//! submesh (phases `n+1`, `n+2`).

use crate::coord::Coord;
use crate::shape::TorusShape;

/// A node group identifier: the component-wise `mod 4` of member
/// coordinates. In the paper's 2D notation, group `ij` has `GroupId`
/// coordinate `(i, j)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct GroupId(pub Coord);

/// A `4 × … × 4` contiguous submesh identifier: the component-wise
/// `div 4` of member coordinates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct SubmeshId(pub Coord);

/// Group/submesh decomposition helpers for a concrete torus shape.
///
/// Requires every dimension to be a multiple of four (use virtual-node
/// padding otherwise, see `alltoall-core`).
#[derive(Clone, Debug)]
pub struct GroupInfo {
    shape: TorusShape,
    subtorus: TorusShape,
}

impl GroupInfo {
    /// Builds the decomposition.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of `shape` is not a multiple of four — the
    /// decomposition is undefined there.
    pub fn new(shape: &TorusShape) -> Self {
        assert!(
            shape.all_multiple_of(4),
            "group decomposition requires all dimensions to be multiples of 4, got {shape}"
        );
        let sub_dims: Vec<u32> = shape.dims().iter().map(|&k| k / 4).collect();
        let subtorus = TorusShape::new(&sub_dims).expect("quarter of valid shape is valid");
        Self {
            shape: shape.clone(),
            subtorus,
        }
    }

    /// The underlying torus shape.
    #[inline]
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// The shape of each group's subtorus (`a_1/4 × … × a_n/4`).
    ///
    /// This is also the shape of the grid of submeshes.
    #[inline]
    pub fn subtorus_shape(&self) -> &TorusShape {
        &self.subtorus
    }

    /// Number of groups, `4^n`.
    #[inline]
    pub fn num_groups(&self) -> u32 {
        4u32.pow(self.shape.ndims() as u32)
    }

    /// Number of submeshes, `(a_1 · … · a_n) / 4^n`.
    #[inline]
    pub fn num_submeshes(&self) -> u32 {
        self.subtorus.num_nodes()
    }

    /// The group of a node.
    #[inline]
    pub fn group_of(&self, c: &Coord) -> GroupId {
        GroupId(c.mod_each(4))
    }

    /// The submesh containing a node.
    #[inline]
    pub fn submesh_of(&self, c: &Coord) -> SubmeshId {
        SubmeshId(c.div_each(4))
    }

    /// Position of a node within its submesh (each component in `0..4`).
    /// This equals the group id coordinate.
    #[inline]
    pub fn position_in_submesh(&self, c: &Coord) -> Coord {
        c.mod_each(4)
    }

    /// The node of group `g` inside submesh `sm`:
    /// component-wise `4·sm + g`.
    #[inline]
    pub fn member(&self, g: GroupId, sm: SubmeshId) -> Coord {
        let mut out = Coord::zero(self.shape.ndims());
        for d in 0..self.shape.ndims() {
            out[d] = 4 * sm.0[d] + g.0[d];
        }
        debug_assert!(self.shape.contains(&out));
        out
    }

    /// The **group representative** `t(s, d)`: the node of `s`'s group in
    /// `d`'s submesh. Blocks `s → d` are routed `s → t(s,d) → d` by the
    /// exchange algorithms.
    #[inline]
    pub fn representative(&self, s: &Coord, d: &Coord) -> Coord {
        self.member(self.group_of(s), self.submesh_of(d))
    }

    /// Iterates over all member coordinates of group `g`, in subtorus
    /// id order.
    pub fn group_members(&self, g: GroupId) -> impl Iterator<Item = Coord> + '_ {
        self.subtorus
            .iter_coords()
            .map(move |sm| self.member(g, SubmeshId(sm)))
    }

    /// Iterates over the 4^n member coordinates of submesh `sm`.
    pub fn submesh_members(&self, sm: SubmeshId) -> impl Iterator<Item = Coord> + '_ {
        let n = self.shape.ndims();
        let gshape = TorusShape::new(&vec![4u32; n]).expect("4^n shape valid");
        (0..gshape.num_nodes()).map(move |id| self.member(GroupId(gshape.coord_of(id)), sm))
    }

    /// Position of a group member within its group's subtorus: the
    /// submesh coordinate. (The subtorus of a group is isomorphic to the
    /// grid of submeshes.)
    #[inline]
    pub fn subtorus_coord(&self, c: &Coord) -> Coord {
        c.div_each(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info_12x12() -> GroupInfo {
        GroupInfo::new(&TorusShape::new_2d(12, 12).unwrap())
    }

    #[test]
    #[should_panic(expected = "multiples of 4")]
    fn rejects_non_multiple_of_four() {
        GroupInfo::new(&TorusShape::new_2d(12, 10).unwrap());
    }

    #[test]
    fn counts() {
        let gi = info_12x12();
        assert_eq!(gi.num_groups(), 16);
        assert_eq!(gi.num_submeshes(), 9);
        assert_eq!(gi.subtorus_shape().dims(), &[3, 3]);
    }

    #[test]
    fn group_00_members_match_paper_figure_1a() {
        // Figure 1(a): group 00 of a 12x12 torus is the 3x3 subtorus
        // {P(0,0), P(0,4), P(0,8), P(4,0), P(4,4), P(4,8), P(8,0), P(8,4), P(8,8)}.
        let gi = info_12x12();
        let g = GroupId(Coord::new(&[0, 0]));
        let members: Vec<Coord> = gi.group_members(g).collect();
        let expected: Vec<Coord> = [
            [0, 0],
            [0, 4],
            [0, 8],
            [4, 0],
            [4, 4],
            [4, 8],
            [8, 0],
            [8, 4],
            [8, 8],
        ]
        .iter()
        .map(|p| Coord::new(p))
        .collect();
        assert_eq!(members, expected);
    }

    #[test]
    fn every_submesh_has_one_node_per_group() {
        let gi = info_12x12();
        for sm in gi.subtorus_shape().iter_coords() {
            let members: Vec<Coord> = gi.submesh_members(SubmeshId(sm)).collect();
            assert_eq!(members.len(), 16);
            let mut groups: Vec<GroupId> = members.iter().map(|m| gi.group_of(m)).collect();
            groups.sort();
            groups.dedup();
            assert_eq!(groups.len(), 16, "each group exactly once per submesh");
            for m in &members {
                assert_eq!(gi.submesh_of(m), SubmeshId(sm));
            }
        }
    }

    #[test]
    fn groups_partition_the_torus() {
        let gi = GroupInfo::new(&TorusShape::new(&[8, 12]).unwrap());
        let mut seen = std::collections::HashSet::new();
        let gshape = TorusShape::new(&[4, 4]).unwrap();
        for g in gshape.iter_coords() {
            for m in gi.group_members(GroupId(g)) {
                assert!(seen.insert(m), "node {m} in two groups");
                assert_eq!(gi.group_of(&m), GroupId(g));
            }
        }
        assert_eq!(seen.len(), 96);
    }

    #[test]
    fn representative_is_in_right_group_and_submesh() {
        let gi = info_12x12();
        let s = Coord::new(&[5, 2]);
        let d = Coord::new(&[10, 11]);
        let t = gi.representative(&s, &d);
        assert_eq!(gi.group_of(&t), gi.group_of(&s));
        assert_eq!(gi.submesh_of(&t), gi.submesh_of(&d));
        assert_eq!(t, Coord::new(&[9, 10]));
    }

    #[test]
    fn representative_of_same_submesh_is_self() {
        let gi = info_12x12();
        let s = Coord::new(&[5, 2]);
        // destination in the same submesh as s
        let d = Coord::new(&[7, 3]);
        assert_eq!(gi.representative(&s, &d), s);
    }

    #[test]
    fn member_inverts_group_submesh_split() {
        let gi = GroupInfo::new(&TorusShape::new(&[8, 8, 8]).unwrap());
        for c in gi.shape().iter_coords().take(512) {
            let g = gi.group_of(&c);
            let sm = gi.submesh_of(&c);
            assert_eq!(gi.member(g, sm), c);
        }
    }

    #[test]
    fn works_in_3d() {
        let gi = GroupInfo::new(&TorusShape::new_3d(12, 12, 12).unwrap());
        assert_eq!(gi.num_groups(), 64);
        assert_eq!(gi.num_submeshes(), 27);
        let g = GroupId(Coord::new(&[1, 2, 3]));
        let members: Vec<Coord> = gi.group_members(g).collect();
        assert_eq!(members.len(), 27);
        assert!(members
            .iter()
            .all(|m| m.mod_each(4) == Coord::new(&[1, 2, 3])));
    }
}
