//! Routing around failed nodes.
//!
//! The paper's schedules use fixed dimension-ordered paths on a healthy
//! torus. A degraded torus (some nodes quarantined) still routes between
//! any two live nodes as long as the survivor graph stays connected; these
//! helpers answer "how far apart are two live nodes when the path must
//! detour around the dead set" — the hop accounting the repaired
//! schedule's direct-exchange fallback steps use.

use std::collections::VecDeque;

use crate::direction::{Direction, Sign};
use crate::shape::{NodeId, TorusShape};

/// Shortest hop count from `from` to `to` through live nodes only:
/// breadth-first search over the torus adjacency, never entering a node
/// listed in `dead` (the endpoints themselves must be live).
///
/// Returns `None` when no live path exists (the dead set disconnects the
/// pair) or when either endpoint is dead. On an empty dead set this equals
/// the torus's minimal (Lee) distance.
pub fn detour_hops(shape: &TorusShape, from: NodeId, to: NodeId, dead: &[NodeId]) -> Option<u32> {
    if dead.contains(&from) || dead.contains(&to) {
        return None;
    }
    if from == to {
        return Some(0);
    }
    let n = shape.num_nodes() as usize;
    let mut dist: Vec<u32> = vec![u32::MAX; n];
    dist[from as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        let cu = shape.coord_of(u);
        let du = dist[u as usize];
        for dim in 0..shape.ndims() {
            for sign in [Sign::Plus, Sign::Minus] {
                let v = shape.index_of(&shape.neighbor(
                    &cu,
                    Direction {
                        dim: dim as u8,
                        sign,
                    },
                ));
                if dead.contains(&v) || dist[v as usize] != u32::MAX {
                    continue;
                }
                dist[v as usize] = du + 1;
                if v == to {
                    return Some(du + 1);
                }
                queue.push_back(v);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dead_set_gives_lee_distance() {
        let shape = TorusShape::new(&[4, 4]).unwrap();
        // (0,0) -> (1,1): 2 hops; (0,0) -> (2,2): 4 hops (2 + 2, wrap
        // indifferent on extent 4).
        assert_eq!(detour_hops(&shape, 0, 5, &[]), Some(2));
        assert_eq!(detour_hops(&shape, 0, 10, &[]), Some(4));
        assert_eq!(detour_hops(&shape, 7, 7, &[]), Some(0));
    }

    #[test]
    fn detours_around_dead_nodes() {
        // 1D-ish probe on a 4x4: from 0 to 2 along a row is 2 hops; kill
        // node 1 and the row detour via the neighboring row costs 4? No —
        // the ring wraps: 0 -> 3 -> 2 is still 2 hops. Kill 3 as well and
        // the path must leave the row.
        let shape = TorusShape::new(&[4, 4]).unwrap();
        assert_eq!(detour_hops(&shape, 0, 2, &[]), Some(2));
        assert_eq!(detour_hops(&shape, 0, 2, &[1]), Some(2));
        assert_eq!(detour_hops(&shape, 0, 2, &[1, 3]), Some(4));
    }

    #[test]
    fn dead_endpoints_and_disconnection_are_none() {
        let shape = TorusShape::new(&[4, 4]).unwrap();
        assert_eq!(detour_hops(&shape, 0, 2, &[2]), None);
        assert_eq!(detour_hops(&shape, 2, 0, &[2]), None);
        // Wall off node 0 entirely (its four neighbors on a 4x4 torus).
        assert_eq!(detour_hops(&shape, 0, 10, &[1, 3, 4, 12]), None);
    }
}
