//! Directions of travel along torus dimensions.
//!
//! Every torus link is full duplex (paper, Section 2), which we model as two
//! unidirectional channels. A [`Direction`] — a `(dimension, sign)` pair —
//! selects one of the `2n` channel classes leaving a node.

use std::fmt;

/// Sign of travel along a ring: `Plus` increases the coordinate (mod k),
/// `Minus` decreases it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Sign {
    /// Positive direction (`+r`, `+c`, `+X`, …).
    Plus,
    /// Negative direction (`-r`, `-c`, `-X`, …).
    Minus,
}

impl Sign {
    /// The opposite sign.
    #[inline]
    pub fn flip(self) -> Self {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }

    /// `+1` or `-1`, for ring arithmetic.
    #[inline]
    pub fn unit(self) -> i64 {
        match self {
            Sign::Plus => 1,
            Sign::Minus => -1,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sign::Plus => write!(f, "+"),
            Sign::Minus => write!(f, "-"),
        }
    }
}

/// A unidirectional travel direction: dimension index plus sign.
///
/// In the paper's 2D notation, dimension 0 is the row coordinate `r` and
/// dimension 1 the column coordinate `c`; in 3D, dimensions 0, 1, 2 are
/// `X`, `Y`, `Z`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Direction {
    /// Dimension index (0-based).
    pub dim: u8,
    /// Travel sign along that dimension.
    pub sign: Sign,
}

impl Direction {
    /// Convenience constructor.
    #[inline]
    pub fn new(dim: usize, sign: Sign) -> Self {
        debug_assert!(dim < crate::coord::MAX_DIMS);
        Self {
            dim: dim as u8,
            sign,
        }
    }

    /// Positive direction along `dim`.
    #[inline]
    pub fn plus(dim: usize) -> Self {
        Self::new(dim, Sign::Plus)
    }

    /// Negative direction along `dim`.
    #[inline]
    pub fn minus(dim: usize) -> Self {
        Self::new(dim, Sign::Minus)
    }

    /// The opposite direction (same dimension, flipped sign).
    #[inline]
    pub fn reverse(self) -> Self {
        Self {
            dim: self.dim,
            sign: self.sign.flip(),
        }
    }

    /// Dimension as `usize` for indexing.
    #[inline]
    pub fn dim(self) -> usize {
        self.dim as usize
    }

    /// Signed unit step (`+1`/`-1`) along this direction.
    #[inline]
    pub fn unit(self) -> i64 {
        self.sign.unit()
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const NAMES: [&str; 8] = ["X", "Y", "Z", "W", "V", "U", "T", "S"];
        write!(f, "{}{}", self.sign, NAMES[self.dim as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_and_unit() {
        assert_eq!(Sign::Plus.flip(), Sign::Minus);
        assert_eq!(Sign::Minus.flip(), Sign::Plus);
        assert_eq!(Sign::Plus.unit(), 1);
        assert_eq!(Sign::Minus.unit(), -1);
    }

    #[test]
    fn reverse_direction() {
        let d = Direction::plus(2);
        let r = d.reverse();
        assert_eq!(r.dim(), 2);
        assert_eq!(r.sign, Sign::Minus);
        assert_eq!(r.reverse(), d);
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", Direction::plus(0)), "+X");
        assert_eq!(format!("{}", Direction::minus(1)), "-Y");
        assert_eq!(format!("{}", Direction::plus(2)), "+Z");
    }

    #[test]
    fn ordering_groups_by_dim() {
        let mut v = [
            Direction::minus(1),
            Direction::plus(0),
            Direction::plus(1),
            Direction::minus(0),
        ];
        v.sort();
        assert_eq!(v[0].dim(), 0);
        assert_eq!(v[1].dim(), 0);
        assert_eq!(v[2].dim(), 1);
        assert_eq!(v[3].dim(), 1);
    }
}
