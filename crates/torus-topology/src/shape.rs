//! Torus shapes: dimension extents, node enumeration and linearization.

use std::fmt;

use crate::coord::{Coord, MAX_DIMS};
use crate::direction::Direction;
use crate::ring::ring_add;

/// Linear node identifier in `0 .. num_nodes`.
///
/// Nodes are numbered in row-major order: the **last** dimension varies
/// fastest (`P(r, c)` of an `R×C` torus has id `r*C + c`).
pub type NodeId = u32;

/// Errors from building a [`TorusShape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShapeError {
    /// No dimensions given.
    Empty,
    /// More than [`MAX_DIMS`] dimensions.
    TooManyDims(usize),
    /// A dimension has extent zero.
    ZeroExtent(usize),
    /// Total node count exceeds `u32` range.
    TooManyNodes(u128),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::Empty => write!(f, "torus must have at least one dimension"),
            ShapeError::TooManyDims(n) => {
                write!(f, "torus has {n} dimensions, max is {MAX_DIMS}")
            }
            ShapeError::ZeroExtent(d) => write!(f, "dimension {d} has extent 0"),
            ShapeError::TooManyNodes(n) => write!(f, "torus has {n} nodes, max is 2^32-1"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// An `a_1 × a_2 × … × a_n` torus.
///
/// The shape owns only the extents; it is cheap to copy around. All strides
/// are precomputed so `index_of`/`coord_of` are branch-free loops.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TorusShape {
    dims: [u32; MAX_DIMS],
    strides: [u32; MAX_DIMS],
    ndims: u8,
    num_nodes: u32,
}

impl TorusShape {
    /// Builds a torus shape from dimension extents.
    pub fn new(dims: &[u32]) -> Result<Self, ShapeError> {
        if dims.is_empty() {
            return Err(ShapeError::Empty);
        }
        if dims.len() > MAX_DIMS {
            return Err(ShapeError::TooManyDims(dims.len()));
        }
        let mut total: u128 = 1;
        for (d, &k) in dims.iter().enumerate() {
            if k == 0 {
                return Err(ShapeError::ZeroExtent(d));
            }
            total *= k as u128;
        }
        if total > u32::MAX as u128 {
            return Err(ShapeError::TooManyNodes(total));
        }
        let mut dbuf = [1u32; MAX_DIMS];
        dbuf[..dims.len()].copy_from_slice(dims);
        // Row-major: stride of the last dimension is 1.
        let mut strides = [1u32; MAX_DIMS];
        for d in (0..dims.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * dbuf[d + 1];
        }
        Ok(Self {
            dims: dbuf,
            strides,
            ndims: dims.len() as u8,
            num_nodes: total as u32,
        })
    }

    /// Builds a 2D `R × C` torus (paper Section 3 notation: `P(r, c)`).
    pub fn new_2d(r: u32, c: u32) -> Result<Self, ShapeError> {
        Self::new(&[r, c])
    }

    /// Builds a 3D `a1 × a2 × a3` torus (paper Section 4.1: `P(X, Y, Z)`).
    pub fn new_3d(a1: u32, a2: u32, a3: u32) -> Result<Self, ShapeError> {
        Self::new(&[a1, a2, a3])
    }

    /// Number of dimensions `n`.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.ndims as usize
    }

    /// Dimension extents.
    #[inline]
    pub fn dims(&self) -> &[u32] {
        &self.dims[..self.ndims as usize]
    }

    /// Extent of dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> u32 {
        debug_assert!(d < self.ndims());
        self.dims[d]
    }

    /// Total number of nodes `N = a_1 · a_2 · … · a_n`.
    #[inline]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Linearizes a coordinate (row-major, last dimension fastest).
    #[inline]
    pub fn index_of(&self, c: &Coord) -> NodeId {
        debug_assert_eq!(c.ndims(), self.ndims());
        let mut idx = 0u32;
        for d in 0..self.ndims() {
            debug_assert!(c[d] < self.dims[d], "coordinate {c} out of shape {self}");
            idx += c[d] * self.strides[d];
        }
        idx
    }

    /// Inverse of [`index_of`](Self::index_of).
    #[inline]
    pub fn coord_of(&self, id: NodeId) -> Coord {
        debug_assert!(id < self.num_nodes);
        let mut c = Coord::zero(self.ndims());
        let mut rem = id;
        for d in 0..self.ndims() {
            c[d] = rem / self.strides[d];
            rem %= self.strides[d];
        }
        c
    }

    /// Whether `c` lies inside the shape.
    #[inline]
    pub fn contains(&self, c: &Coord) -> bool {
        c.ndims() == self.ndims() && (0..self.ndims()).all(|d| c[d] < self.dims[d])
    }

    /// Iterates over all coordinates in id order.
    pub fn iter_coords(&self) -> impl Iterator<Item = Coord> + '_ {
        (0..self.num_nodes).map(|id| self.coord_of(id))
    }

    /// The neighbor of `c` one hop along `dir` (with wraparound).
    #[inline]
    pub fn neighbor(&self, c: &Coord, dir: Direction) -> Coord {
        self.shift(c, dir, 1)
    }

    /// The node `hops` hops from `c` along `dir` (with wraparound).
    #[inline]
    pub fn shift(&self, c: &Coord, dir: Direction, hops: u32) -> Coord {
        let d = dir.dim();
        debug_assert!(d < self.ndims());
        c.with(d, ring_add(c[d], dir.unit() * hops as i64, self.dims[d]))
    }

    /// True if every dimension extent is a multiple of `m`.
    pub fn all_multiple_of(&self, m: u32) -> bool {
        self.dims().iter().all(|&k| k % m == 0)
    }

    /// True if the extents are non-increasing (`a_1 ≥ a_2 ≥ … ≥ a_n`),
    /// the canonical orientation assumed by the paper's n-D algorithm.
    ///
    /// Note: the paper's 2D section uses the opposite convention (`R ≤ C`
    /// with phases keyed to `C`); the implementation canonicalizes to
    /// non-increasing extents and permutes back.
    pub fn is_sorted_desc(&self) -> bool {
        self.dims().windows(2).all(|w| w[0] >= w[1])
    }

    /// Returns a permutation `perm` such that applying it to the dimensions
    /// yields non-increasing extents, along with the permuted shape.
    /// `perm[i]` is the original dimension placed at position `i`.
    /// The sort is stable so equal extents keep their relative order.
    pub fn canonical_permutation(&self) -> (Vec<usize>, TorusShape) {
        let mut perm: Vec<usize> = (0..self.ndims()).collect();
        perm.sort_by(|&a, &b| self.dims[b].cmp(&self.dims[a]));
        let permuted: Vec<u32> = perm.iter().map(|&d| self.dims[d]).collect();
        let shape = TorusShape::new(&permuted).expect("permutation preserves validity");
        (perm, shape)
    }

    /// Applies a dimension permutation to a coordinate:
    /// `result[i] = c[perm[i]]`.
    pub fn permute_coord(c: &Coord, perm: &[usize]) -> Coord {
        let mut out = Coord::zero(c.ndims());
        for (i, &d) in perm.iter().enumerate() {
            out[i] = c[d];
        }
        out
    }

    /// Inverse of [`permute_coord`](Self::permute_coord).
    pub fn unpermute_coord(c: &Coord, perm: &[usize]) -> Coord {
        let mut out = Coord::zero(c.ndims());
        for (i, &d) in perm.iter().enumerate() {
            out[d] = c[i];
        }
        out
    }
}

impl fmt::Debug for TorusShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TorusShape({self})")
    }
}

impl fmt::Display for TorusShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, k) in self.dims().iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{k}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direction::Sign;

    #[test]
    fn build_and_count() {
        let s = TorusShape::new(&[12, 8]).unwrap();
        assert_eq!(s.ndims(), 2);
        assert_eq!(s.num_nodes(), 96);
        assert_eq!(s.dims(), &[12, 8]);
        assert_eq!(s.extent(1), 8);
    }

    #[test]
    fn build_errors() {
        assert_eq!(TorusShape::new(&[]), Err(ShapeError::Empty));
        assert_eq!(TorusShape::new(&[4, 0]), Err(ShapeError::ZeroExtent(1)));
        assert!(matches!(
            TorusShape::new(
                &[0; MAX_DIMS + 1][..]
                    .to_vec()
                    .iter()
                    .map(|_| 2)
                    .collect::<Vec<_>>()
            ),
            Err(ShapeError::TooManyDims(_))
        ));
        assert!(matches!(
            TorusShape::new(&[u32::MAX, u32::MAX]),
            Err(ShapeError::TooManyNodes(_))
        ));
    }

    #[test]
    fn row_major_linearization() {
        // P(r, c) -> r*C + c
        let s = TorusShape::new_2d(4, 6).unwrap();
        assert_eq!(s.index_of(&Coord::new(&[0, 0])), 0);
        assert_eq!(s.index_of(&Coord::new(&[0, 5])), 5);
        assert_eq!(s.index_of(&Coord::new(&[1, 0])), 6);
        assert_eq!(s.index_of(&Coord::new(&[3, 5])), 23);
    }

    #[test]
    fn index_coord_roundtrip() {
        let s = TorusShape::new(&[3, 4, 5]).unwrap();
        for id in 0..s.num_nodes() {
            let c = s.coord_of(id);
            assert!(s.contains(&c));
            assert_eq!(s.index_of(&c), id);
        }
    }

    #[test]
    fn iter_covers_all_exactly_once() {
        let s = TorusShape::new(&[4, 4]).unwrap();
        let all: Vec<Coord> = s.iter_coords().collect();
        assert_eq!(all.len(), 16);
        let mut sorted = all.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 16);
    }

    #[test]
    fn neighbor_wraps() {
        let s = TorusShape::new_2d(4, 8).unwrap();
        let c = Coord::new(&[3, 7]);
        assert_eq!(s.neighbor(&c, Direction::plus(0)), Coord::new(&[0, 7]));
        assert_eq!(s.neighbor(&c, Direction::plus(1)), Coord::new(&[3, 0]));
        assert_eq!(
            s.neighbor(&Coord::new(&[0, 0]), Direction::minus(0)),
            Coord::new(&[3, 0])
        );
    }

    #[test]
    fn shift_multi_hop() {
        let s = TorusShape::new_2d(12, 12).unwrap();
        let c = Coord::new(&[10, 3]);
        assert_eq!(
            s.shift(&c, Direction::new(0, Sign::Plus), 4),
            Coord::new(&[2, 3])
        );
        assert_eq!(
            s.shift(&c, Direction::new(1, Sign::Minus), 4),
            Coord::new(&[10, 11])
        );
    }

    #[test]
    fn multiple_of_and_sorted() {
        let s = TorusShape::new(&[12, 8, 4]).unwrap();
        assert!(s.all_multiple_of(4));
        assert!(!s.all_multiple_of(8));
        assert!(s.is_sorted_desc());
        let t = TorusShape::new(&[8, 12]).unwrap();
        assert!(!t.is_sorted_desc());
    }

    #[test]
    fn canonical_permutation_sorts_desc() {
        let s = TorusShape::new(&[8, 16, 12]).unwrap();
        let (perm, canon) = s.canonical_permutation();
        assert_eq!(canon.dims(), &[16, 12, 8]);
        assert_eq!(perm, vec![1, 2, 0]);
        let c = Coord::new(&[1, 2, 3]);
        let p = TorusShape::permute_coord(&c, &perm);
        assert_eq!(p.as_slice(), &[2, 3, 1]);
        assert_eq!(TorusShape::unpermute_coord(&p, &perm), c);
    }

    #[test]
    fn canonical_permutation_is_stable() {
        let s = TorusShape::new(&[8, 8, 8]).unwrap();
        let (perm, _) = s.canonical_permutation();
        assert_eq!(perm, vec![0, 1, 2]);
    }

    #[test]
    fn display() {
        let s = TorusShape::new(&[12, 12, 8]).unwrap();
        assert_eq!(format!("{s}"), "12x12x8");
    }
}
