//! Modular ("ring") arithmetic along a single torus dimension.
//!
//! A torus dimension of size `k` is a bidirectional ring of `k` nodes. The
//! exchange algorithms repeatedly shift positions by ±1, ±2 or ±4 with
//! wraparound, and need to know how many shifts separate two positions along
//! a chosen direction.

use crate::direction::Sign;

/// `(a + delta) mod k` where `delta` may be negative.
///
/// # Panics
///
/// Panics (in debug builds) if `a >= k`.
#[inline]
pub fn ring_add(a: u32, delta: i64, k: u32) -> u32 {
    debug_assert!(a < k, "position {a} out of ring of size {k}");
    let k = k as i64;
    (((a as i64 + delta) % k + k) % k) as u32
}

/// `(a - b) mod k`: the number of `+1` hops from `b` to `a`.
#[inline]
pub fn ring_sub(a: u32, b: u32, k: u32) -> u32 {
    debug_assert!(a < k && b < k);
    ((a as i64 - b as i64).rem_euclid(k as i64)) as u32
}

/// Number of hops from `from` to `to` travelling in direction `sign`
/// around a ring of size `k`. Always in `0..k`.
#[inline]
pub fn ring_hops(from: u32, to: u32, k: u32, sign: Sign) -> u32 {
    match sign {
        Sign::Plus => ring_sub(to, from, k),
        Sign::Minus => ring_sub(from, to, k),
    }
}

/// Minimal distance between two positions on a ring of size `k`
/// (shortest of the two directions).
#[inline]
pub fn ring_distance(a: u32, b: u32, k: u32) -> u32 {
    let d = ring_sub(a, b, k);
    d.min(k - d)
}

/// The members of the stride ring through `start`: positions
/// `start, start + stride, start + 2·stride, …` (mod `k`), in positive
/// traversal order. The scatter phases walk exactly these rings with
/// `stride = 4`.
///
/// # Panics
///
/// Panics (in debug builds) if `k` is not a multiple of `stride` or
/// `start >= k`.
pub fn stride_ring(start: u32, stride: u32, k: u32) -> Vec<u32> {
    debug_assert!(
        stride > 0 && k.is_multiple_of(stride),
        "ring {k} not divisible by stride {stride}"
    );
    debug_assert!(start < k);
    (0..k / stride)
        .map(|i| ring_add(start, (i * stride) as i64, k))
        .collect()
}

/// Ring contraction: the next *alive* member of the stride ring after
/// `from`, travelling in direction `sign`, skipping dead positions.
///
/// Returns `(position, strides_crossed)` where `strides_crossed >= 1` is
/// the number of `stride`-hops the contracted link spans (1 when the
/// immediate successor is alive — the uncontracted case). Returns `None`
/// when every other ring member is dead (the ring has contracted to the
/// single node `from`).
pub fn next_alive<F>(from: u32, stride: u32, k: u32, sign: Sign, alive: F) -> Option<(u32, u32)>
where
    F: Fn(u32) -> bool,
{
    debug_assert!(stride > 0 && k.is_multiple_of(stride));
    debug_assert!(from < k);
    let members = k / stride;
    for s in 1..members {
        let pos = ring_add(from, sign.unit() * (s * stride) as i64, k);
        if alive(pos) {
            return Some((pos, s));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps_positive() {
        assert_eq!(ring_add(10, 4, 12), 2);
        assert_eq!(ring_add(0, 12, 12), 0);
    }

    #[test]
    fn add_wraps_negative() {
        assert_eq!(ring_add(1, -4, 12), 9);
        assert_eq!(ring_add(0, -1, 5), 4);
        assert_eq!(ring_add(0, -25, 5), 0);
    }

    #[test]
    fn sub_is_directed_distance() {
        assert_eq!(ring_sub(2, 10, 12), 4);
        assert_eq!(ring_sub(10, 2, 12), 8);
        assert_eq!(ring_sub(5, 5, 9), 0);
    }

    #[test]
    fn hops_by_direction() {
        // from 0 to 8 on a ring of 12: +8 hops or -4 hops.
        assert_eq!(ring_hops(0, 8, 12, Sign::Plus), 8);
        assert_eq!(ring_hops(0, 8, 12, Sign::Minus), 4);
    }

    #[test]
    fn distance_is_min_of_directions() {
        assert_eq!(ring_distance(0, 8, 12), 4);
        assert_eq!(ring_distance(8, 0, 12), 4);
        assert_eq!(ring_distance(3, 3, 12), 0);
        assert_eq!(ring_distance(0, 6, 12), 6);
    }

    #[test]
    fn stride_ring_lists_members_in_order() {
        assert_eq!(stride_ring(1, 4, 12), vec![1, 5, 9]);
        assert_eq!(stride_ring(6, 4, 8), vec![6, 2]);
        assert_eq!(stride_ring(3, 4, 4), vec![3]);
    }

    #[test]
    fn next_alive_skips_dead_members() {
        // Ring of positions {1, 5, 9, 13} (k = 16, stride 4).
        let dead = [5u32, 9];
        let alive = |p: u32| !dead.contains(&p);
        // 1 -> 5 contracted past two dead members to 13 (3 strides).
        assert_eq!(next_alive(1, 4, 16, Sign::Plus, alive), Some((13, 3)));
        // 13 -> 1 is unaffected (1 stride).
        assert_eq!(next_alive(13, 4, 16, Sign::Plus, alive), Some((1, 1)));
        // Minus direction from 1 reaches 13 directly.
        assert_eq!(next_alive(1, 4, 16, Sign::Minus, alive), Some((13, 1)));
        // All peers dead: the ring contracted to a single node.
        assert_eq!(next_alive(1, 4, 16, Sign::Plus, |p| p == 1), None);
        // Trivial one-member ring has no successor at all.
        assert_eq!(next_alive(2, 4, 4, Sign::Plus, |_| true), None);
    }

    #[test]
    fn add_then_hops_roundtrip() {
        for k in [4u32, 8, 12, 20] {
            for a in 0..k {
                for h in 0..k {
                    let b = ring_add(a, h as i64, k);
                    assert_eq!(ring_hops(a, b, k, Sign::Plus), h);
                    let c = ring_add(a, -(h as i64), k);
                    assert_eq!(ring_hops(a, c, k, Sign::Minus), h);
                }
            }
        }
    }
}
