//! Modular ("ring") arithmetic along a single torus dimension.
//!
//! A torus dimension of size `k` is a bidirectional ring of `k` nodes. The
//! exchange algorithms repeatedly shift positions by ±1, ±2 or ±4 with
//! wraparound, and need to know how many shifts separate two positions along
//! a chosen direction.

use crate::direction::Sign;

/// `(a + delta) mod k` where `delta` may be negative.
///
/// # Panics
///
/// Panics (in debug builds) if `a >= k`.
#[inline]
pub fn ring_add(a: u32, delta: i64, k: u32) -> u32 {
    debug_assert!(a < k, "position {a} out of ring of size {k}");
    let k = k as i64;
    (((a as i64 + delta) % k + k) % k) as u32
}

/// `(a - b) mod k`: the number of `+1` hops from `b` to `a`.
#[inline]
pub fn ring_sub(a: u32, b: u32, k: u32) -> u32 {
    debug_assert!(a < k && b < k);
    ((a as i64 - b as i64).rem_euclid(k as i64)) as u32
}

/// Number of hops from `from` to `to` travelling in direction `sign`
/// around a ring of size `k`. Always in `0..k`.
#[inline]
pub fn ring_hops(from: u32, to: u32, k: u32, sign: Sign) -> u32 {
    match sign {
        Sign::Plus => ring_sub(to, from, k),
        Sign::Minus => ring_sub(from, to, k),
    }
}

/// Minimal distance between two positions on a ring of size `k`
/// (shortest of the two directions).
#[inline]
pub fn ring_distance(a: u32, b: u32, k: u32) -> u32 {
    let d = ring_sub(a, b, k);
    d.min(k - d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_wraps_positive() {
        assert_eq!(ring_add(10, 4, 12), 2);
        assert_eq!(ring_add(0, 12, 12), 0);
    }

    #[test]
    fn add_wraps_negative() {
        assert_eq!(ring_add(1, -4, 12), 9);
        assert_eq!(ring_add(0, -1, 5), 4);
        assert_eq!(ring_add(0, -25, 5), 0);
    }

    #[test]
    fn sub_is_directed_distance() {
        assert_eq!(ring_sub(2, 10, 12), 4);
        assert_eq!(ring_sub(10, 2, 12), 8);
        assert_eq!(ring_sub(5, 5, 9), 0);
    }

    #[test]
    fn hops_by_direction() {
        // from 0 to 8 on a ring of 12: +8 hops or -4 hops.
        assert_eq!(ring_hops(0, 8, 12, Sign::Plus), 8);
        assert_eq!(ring_hops(0, 8, 12, Sign::Minus), 4);
    }

    #[test]
    fn distance_is_min_of_directions() {
        assert_eq!(ring_distance(0, 8, 12), 4);
        assert_eq!(ring_distance(8, 0, 12), 4);
        assert_eq!(ring_distance(3, 3, 12), 0);
        assert_eq!(ring_distance(0, 6, 12), 6);
    }

    #[test]
    fn add_then_hops_roundtrip() {
        for k in [4u32, 8, 12, 20] {
            for a in 0..k {
                for h in 0..k {
                    let b = ring_add(a, h as i64, k);
                    assert_eq!(ring_hops(a, b, k, Sign::Plus), h);
                    let c = ring_add(a, -(h as i64), k);
                    assert_eq!(ring_hops(a, c, k, Sign::Minus), h);
                }
            }
        }
    }
}
