#![warn(missing_docs)]

//! Multidimensional torus topology substrate.
//!
//! This crate provides the structural foundation for the all-to-all
//! personalized exchange algorithms of Suh & Shin (ICPP 1998) and for the
//! wormhole torus network simulator:
//!
//! * [`Coord`] — fixed-capacity multidimensional coordinates,
//! * [`TorusShape`] — an `a_1 × a_2 × … × a_n` torus with mixed-radix
//!   linearization and neighbor/wrap arithmetic,
//! * [`Direction`]/[`Sign`] — unidirectional channel directions,
//! * [`Channel`] and path generation (ring paths, dimension-ordered routes),
//! * node groups, subtori and submesh decomposition (`group` module) exactly
//!   as defined in Sections 3 and 4.1 of the paper.
//!
//! Everything here is purely combinatorial: no simulation state, no I/O.
//!
//! # Example
//!
//! ```
//! use torus_topology::{TorusShape, Coord};
//!
//! let shape = TorusShape::new(&[12, 12]).unwrap();
//! assert_eq!(shape.num_nodes(), 144);
//! let c = Coord::new(&[3, 7]);
//! let id = shape.index_of(&c);
//! assert_eq!(shape.coord_of(id), c);
//! ```

pub mod coord;
pub mod direction;
pub mod group;
pub mod path;
pub mod ring;
pub mod route;
pub mod shape;

pub use coord::{Coord, MAX_DIMS};
pub use direction::{Direction, Sign};
pub use group::{GroupId, GroupInfo, SubmeshId};
pub use path::{dor_path, ring_path, Channel};
pub use ring::{next_alive, ring_add, ring_distance, ring_hops, ring_sub, stride_ring};
pub use route::detour_hops;
pub use shape::{NodeId, ShapeError, TorusShape};
