//! Property-based tests for the topology substrate.

use proptest::prelude::*;
use torus_topology::{
    dor_path, ring_add, ring_distance, ring_hops, ring_path, Coord, Direction, GroupInfo, Sign,
    TorusShape,
};

/// Strategy: a torus shape of 1..=4 dims, each extent in 1..=16.
fn arb_shape() -> impl Strategy<Value = TorusShape> {
    prop::collection::vec(1u32..=16, 1..=4)
        .prop_map(|dims| TorusShape::new(&dims).expect("valid dims"))
}

/// Strategy: a shape whose dims are multiples of 4 (4..=16), 2..=3 dims.
fn arb_shape_mult4() -> impl Strategy<Value = TorusShape> {
    prop::collection::vec((1u32..=4).prop_map(|k| 4 * k), 2..=3)
        .prop_map(|dims| TorusShape::new(&dims).expect("valid dims"))
}

fn arb_node(shape: &TorusShape) -> impl Strategy<Value = Coord> {
    let s = shape.clone();
    (0..shape.num_nodes()).prop_map(move |id| s.coord_of(id))
}

proptest! {
    #[test]
    fn index_coord_roundtrip(shape in arb_shape()) {
        for id in 0..shape.num_nodes().min(4096) {
            let c = shape.coord_of(id);
            prop_assert!(shape.contains(&c));
            prop_assert_eq!(shape.index_of(&c), id);
        }
    }

    #[test]
    fn ring_add_inverse((k, a, h) in (1u32..=64).prop_flat_map(|k| (Just(k), 0..k, 0..k))) {
        let b = ring_add(a, h as i64, k);
        prop_assert_eq!(ring_hops(a, b, k, Sign::Plus), h);
        prop_assert_eq!(ring_add(b, -(h as i64), k), a);
    }

    #[test]
    fn ring_distance_symmetric((k, a, b) in (1u32..=64).prop_flat_map(|k| (Just(k), 0..k, 0..k))) {
        prop_assert_eq!(ring_distance(a, b, k), ring_distance(b, a, k));
        prop_assert!(ring_distance(a, b, k) <= k / 2);
    }

    #[test]
    fn shift_roundtrip(shape in arb_shape(), id in 0u32..1024, dim_sel in 0usize..4, hops in 0u32..16) {
        let id = id % shape.num_nodes();
        let dim = dim_sel % shape.ndims();
        let hops = hops % shape.extent(dim);
        let c = shape.coord_of(id);
        let fwd = shape.shift(&c, Direction::plus(dim), hops);
        let back = shape.shift(&fwd, Direction::minus(dim), hops);
        prop_assert_eq!(back, c);
    }

    #[test]
    fn dor_path_contiguous_and_minimal(shape in arb_shape(), a in 0u32..4096, b in 0u32..4096) {
        let a = shape.coord_of(a % shape.num_nodes());
        let b = shape.coord_of(b % shape.num_nodes());
        let p = dor_path(&shape, &a, &b);
        // contiguity
        for w in p.windows(2) {
            prop_assert_eq!(w[0].to, w[1].from);
        }
        // endpoint correctness
        if !p.is_empty() {
            prop_assert_eq!(p[0].from, shape.index_of(&a));
            prop_assert_eq!(p[p.len()-1].to, shape.index_of(&b));
        }
        // minimality: length equals sum of per-dim ring distances
        let want: u32 = (0..shape.ndims())
            .map(|d| ring_distance(a[d], b[d], shape.extent(d)))
            .sum();
        prop_assert_eq!(p.len() as u32, want);
    }

    #[test]
    fn ring_path_lands_at_shift(shape in arb_shape(), id in 0u32..4096, dim_sel in 0usize..4, sign in prop::bool::ANY, hops in 0u32..16) {
        let c = shape.coord_of(id % shape.num_nodes());
        let dim = dim_sel % shape.ndims();
        let hops = hops % shape.extent(dim);
        let dir = Direction::new(dim, if sign { Sign::Plus } else { Sign::Minus });
        let p = ring_path(&shape, &c, dir, hops);
        prop_assert_eq!(p.len() as u32, hops);
        if hops > 0 {
            let end = shape.shift(&c, dir, hops);
            prop_assert_eq!(p[p.len()-1].to, shape.index_of(&end));
        }
    }

    #[test]
    fn representative_properties(shape in arb_shape_mult4(), s_id in 0u32..4096, d_id in 0u32..4096) {
        let gi = GroupInfo::new(&shape);
        let s = shape.coord_of(s_id % shape.num_nodes());
        let d = shape.coord_of(d_id % shape.num_nodes());
        let t = gi.representative(&s, &d);
        prop_assert_eq!(gi.group_of(&t), gi.group_of(&s));
        prop_assert_eq!(gi.submesh_of(&t), gi.submesh_of(&d));
        // idempotent: representative of (t, d) is t itself
        prop_assert_eq!(gi.representative(&t, &d), t);
    }

    #[test]
    fn groups_and_submeshes_partition(shape in arb_shape_mult4()) {
        let gi = GroupInfo::new(&shape);
        // every node is the member() of its (group, submesh) pair
        for c in shape.iter_coords().take(2048) {
            let g = gi.group_of(&c);
            let sm = gi.submesh_of(&c);
            prop_assert_eq!(gi.member(g, sm), c);
        }
    }

    #[test]
    fn canonical_permutation_roundtrip(shape in arb_shape(), id in 0u32..4096) {
        let (perm, canon) = shape.canonical_permutation();
        prop_assert!(canon.is_sorted_desc());
        let c = shape.coord_of(id % shape.num_nodes());
        let p = TorusShape::permute_coord(&c, &perm);
        prop_assert!(canon.contains(&p));
        prop_assert_eq!(TorusShape::unpermute_coord(&p, &perm), c);
    }
}

/// Strategy-free check: proptest strategies used above must themselves be
/// sound for the smallest shapes (regression guard for modulo-by-zero).
#[test]
fn smallest_shapes_work() {
    for dims in [&[1u32][..], &[1, 1], &[2, 1, 2]] {
        let s = TorusShape::new(dims).unwrap();
        for id in 0..s.num_nodes() {
            assert_eq!(s.index_of(&s.coord_of(id)), id);
        }
    }
}

proptest! {
    #[test]
    fn arb_node_strategy_within_shape(shape in arb_shape()) {
        // sanity for the helper itself
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let tree = arb_node(&shape).new_tree(&mut runner).unwrap();
        prop_assert!(shape.contains(&proptest::strategy::ValueTree::current(&tree)));
    }
}
