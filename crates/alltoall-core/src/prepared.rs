//! Prepared (buffer-cached) exchanges for repeated use.
//!
//! The paper highlights that fixed destinations make the algorithms
//! *"amenable to optimizations, e.g., caching of message buffers"*.
//! Iterative applications (FFT every timestep, repeated transposes) run
//! the same exchange on the same torus thousands of times; recomputing
//! group representatives and shift vectors for all `N²` blocks each
//! iteration is pure waste, because the schedule is workload-independent.
//!
//! [`PreparedExchange`] performs that work once: it caches the fully
//! seeded counting-mode buffer state (every block with its precomputed
//! shift vector) and the expected-delivery table. Each
//! [`run`](PreparedExchange::run) then starts from a memcpy of the cached
//! state instead of re-deriving it. The `prepared` Criterion bench
//! measures the saving.

use std::sync::{Arc, OnceLock};

use cost_model::CommParams;
use torus_topology::{NodeId, TorusShape};

use crate::block::{Block, Buffers};
use crate::exchange::Exchange;
use crate::exec::{ExchangeError, Executor};
use crate::observer::NullObserver;
use crate::report::ExchangeReport;
use crate::verify::verify_delivery;

/// A reusable, pre-seeded exchange plan for one torus shape.
///
/// ```
/// use alltoall_core::PreparedExchange;
/// use cost_model::CommParams;
/// use torus_topology::TorusShape;
///
/// let prepared = PreparedExchange::new(&TorusShape::new_2d(8, 8).unwrap()).unwrap();
/// for _timestep in 0..3 {
///     let report = prepared.run(&CommParams::cray_t3d_like()).unwrap();
///     assert!(report.verified && report.matches_formula());
/// }
/// ```
pub struct PreparedExchange {
    exchange: Exchange,
    /// Cached fully-seeded counting-mode buffers (canonical ids).
    seeded: Vec<Vec<Block<()>>>,
    /// Cached expected-delivery table for verification.
    expected: Vec<Vec<NodeId>>,
    threads: usize,
    /// Lazily materialized step plan, shared by reference-count so many
    /// concurrent runtimes (e.g. a service's job executors) reuse one
    /// plan without recomputation. See [`step_plan_arc`](Self::step_plan_arc).
    plan: OnceLock<Arc<crate::steps::StepPlan>>,
}

impl PreparedExchange {
    /// Prepares an exchange on `shape`: computes the canonical mapping,
    /// every block's shift vector, and the verification table, once.
    pub fn new(shape: &TorusShape) -> Result<Self, ExchangeError> {
        Self::with_threads(shape, 1)
    }

    /// Like [`new`](Self::new) with a worker-thread count for the runs.
    pub fn with_threads(shape: &TorusShape, threads: usize) -> Result<Self, ExchangeError> {
        let exchange = Exchange::new(shape)?;
        let canon = exchange.executed_shape().clone();
        // Seed once via a throwaway executor.
        let mut ex: Executor = Executor::new(&canon, CommParams::unit(), 1);
        let real_n = shape.num_nodes();
        let canon_ids: Vec<NodeId> = (0..real_n).map(|id| exchange.to_canonical(id)).collect();
        let mut pairs = Vec::with_capacity((real_n as usize).saturating_mul(real_n as usize - 1));
        for s in 0..real_n {
            for d in 0..real_n {
                if s != d {
                    pairs.push((canon_ids[s as usize], canon_ids[d as usize], ()));
                }
            }
        }
        ex.seed_pairs(pairs);
        let (buffers, _) = ex.into_parts();
        let seeded: Vec<Vec<Block<()>>> = buffers.as_slices().to_vec();

        let mut expected: Vec<Vec<NodeId>> = vec![Vec::new(); canon.num_nodes() as usize];
        for d in 0..real_n {
            let cd = canon_ids[d as usize];
            expected[cd as usize] = (0..real_n)
                .filter(|&s| s != d)
                .map(|s| canon_ids[s as usize])
                .collect();
        }
        Ok(Self {
            exchange,
            seeded,
            expected,
            threads: threads.max(1),
            plan: OnceLock::new(),
        })
    }

    /// Runs one counting-mode exchange from the cached buffer state.
    pub fn run(&self, params: &CommParams) -> Result<ExchangeReport, ExchangeError> {
        let canon = self.exchange.executed_shape();
        let mut ex: Executor = Executor::new(canon, *params, self.threads);
        *ex.buffers_mut() = Buffers::from_vecs(self.seeded.clone());
        ex.run(&mut NullObserver)?;
        let verified = verify_delivery(ex.buffers(), &self.expected).is_ok();
        let engine = ex.engine();
        Ok(ExchangeReport {
            shape: self.exchange.shape_ref().clone(),
            executed_shape: canon.clone(),
            padded: self.exchange.is_padded(),
            counts: engine.counts(),
            elapsed: engine.elapsed(),
            formula: cost_model::proposed_nd(canon.dims()),
            trace: engine.trace().clone(),
            verified,
            params: *params,
        })
    }

    /// The underlying exchange configuration.
    pub fn exchange(&self) -> &Exchange {
        &self.exchange
    }

    /// The cached fully-seeded counting-mode buffer state (canonical node
    /// ids, correct shift vectors). External runtimes use this as the
    /// authoritative "which blocks exist and where" starting point.
    pub fn seeded_blocks(&self) -> &[Vec<Block<()>>] {
        &self.seeded
    }

    /// The cached expected-delivery table (canonical ids):
    /// `expected_delivery()[node]` lists the sources whose block must end
    /// at `node`. Feed it to [`verify_delivery`].
    pub fn expected_delivery(&self) -> &[Vec<NodeId>] {
        &self.expected
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Materializes the step-by-step plan (destinations + selection rules)
    /// for the canonical shape — what an external executor such as
    /// `torus-runtime` iterates. See [`crate::steps::StepPlan`].
    pub fn step_plan(&self) -> crate::steps::StepPlan {
        crate::steps::StepPlan::new(self.exchange.executed_shape())
    }

    /// The step plan materialized once and cached, shared by
    /// reference-count. Repeated callers (a plan cache serving many
    /// concurrent jobs on the same shape) pay the `StepPlan::new` cost a
    /// single time per prepared exchange.
    pub fn step_plan_arc(&self) -> Arc<crate::steps::StepPlan> {
        Arc::clone(
            self.plan.get_or_init(|| {
                Arc::new(crate::steps::StepPlan::new(self.exchange.executed_shape()))
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepared_matches_unprepared() {
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let prepared = PreparedExchange::new(&shape).unwrap();
        let a = prepared.run(&CommParams::unit()).unwrap();
        let b = Exchange::new(&shape)
            .unwrap()
            .run_counting(&CommParams::unit())
            .unwrap();
        assert!(a.verified && b.verified);
        assert_eq!(a.counts, b.counts);
        assert!(a.matches_formula());
    }

    #[test]
    fn repeated_runs_are_independent() {
        let shape = TorusShape::new(&[8, 4]).unwrap();
        let prepared = PreparedExchange::new(&shape).unwrap();
        let first = prepared.run(&CommParams::unit()).unwrap();
        for _ in 0..3 {
            let again = prepared.run(&CommParams::unit()).unwrap();
            assert!(again.verified);
            assert_eq!(again.counts, first.counts);
        }
    }

    #[test]
    fn prepared_works_with_padding_and_threads() {
        let shape = TorusShape::new_2d(6, 6).unwrap();
        let prepared = PreparedExchange::with_threads(&shape, 4).unwrap();
        let r = prepared.run(&CommParams::unit()).unwrap();
        assert!(r.verified);
        assert!(r.padded);
    }

    #[test]
    fn step_plan_arc_is_cached_and_shared() {
        let shape = TorusShape::new_2d(4, 4).unwrap();
        let prepared = PreparedExchange::new(&shape).unwrap();
        let a = prepared.step_plan_arc();
        let b = prepared.step_plan_arc();
        assert!(Arc::ptr_eq(&a, &b), "one materialization, shared after");
        assert_eq!(a.total_steps(), prepared.step_plan().total_steps());
    }

    #[test]
    fn parameters_vary_per_run() {
        // The cached state is parameter-independent; time scales with the
        // parameters of each run.
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let prepared = PreparedExchange::new(&shape).unwrap();
        let cheap = prepared.run(&CommParams::unit()).unwrap();
        let dear = prepared.run(&CommParams::unit().with_t_s(100.0)).unwrap();
        assert_eq!(cheap.counts, dear.counts);
        assert!(dear.total_time() > cheap.total_time());
    }
}
