//! Virtual-node padding for tori whose extents are not multiples of four.
//!
//! The paper (Section 6): *"If the number of nodes in each dimension is
//! not a multiple of four, the proposed algorithms can be used by adding
//! virtual nodes, then having every node perform communication steps as
//! proposed."*
//!
//! We implement this as a **logical emulation**: each dimension is padded
//! up to the next multiple of four (minimum 4), virtual nodes participate
//! in the schedule with initially empty buffers, and real blocks may
//! transit virtual positions. Costs are accounted on the padded torus —
//! a conservative upper bound for a real deployment, where each physical
//! node would emulate its virtual neighbors. See DESIGN.md §3.

use torus_topology::{Coord, NodeId, TorusShape};

/// Rounds one extent up to the next multiple of four (minimum 4).
pub fn pad_extent(k: u32) -> u32 {
    debug_assert!(k >= 1);
    k.div_ceil(4).max(1) * 4
}

/// The padding relation between a real shape and its padded counterpart.
#[derive(Clone, Debug)]
pub struct Padding {
    real: TorusShape,
    padded: TorusShape,
}

impl Padding {
    /// Computes the padded shape for `real`. The dimension *order* is
    /// preserved (canonicalization happens separately, on the padded
    /// shape).
    pub fn new(real: &TorusShape) -> Self {
        let dims: Vec<u32> = real.dims().iter().map(|&k| pad_extent(k)).collect();
        let padded = TorusShape::new(&dims).expect("padded shape is valid");
        Self {
            real: real.clone(),
            padded,
        }
    }

    /// Whether any dimension actually grew.
    pub fn is_padded(&self) -> bool {
        self.real.dims() != self.padded.dims()
    }

    /// The real shape.
    pub fn real(&self) -> &TorusShape {
        &self.real
    }

    /// The padded shape.
    pub fn padded(&self) -> &TorusShape {
        &self.padded
    }

    /// Whether a padded-shape coordinate refers to a real node.
    pub fn is_real(&self, c: &Coord) -> bool {
        (0..self.real.ndims()).all(|d| c[d] < self.real.extent(d))
    }

    /// Maps a real node id to its id in the padded shape (coordinates are
    /// unchanged; only linearization differs).
    pub fn real_to_padded(&self, id: NodeId) -> NodeId {
        self.padded.index_of(&self.real.coord_of(id))
    }

    /// Maps a padded node id back to the real id, or `None` for a virtual
    /// node.
    pub fn padded_to_real(&self, id: NodeId) -> Option<NodeId> {
        let c = self.padded.coord_of(id);
        self.is_real(&c).then(|| self.real.index_of(&c))
    }

    /// Number of virtual nodes introduced.
    pub fn num_virtual(&self) -> u32 {
        self.padded.num_nodes() - self.real.num_nodes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_extent_rounds_up() {
        assert_eq!(pad_extent(1), 4);
        assert_eq!(pad_extent(4), 4);
        assert_eq!(pad_extent(5), 8);
        assert_eq!(pad_extent(8), 8);
        assert_eq!(pad_extent(10), 12);
        assert_eq!(pad_extent(12), 12);
    }

    #[test]
    fn no_padding_for_multiples_of_four() {
        let p = Padding::new(&TorusShape::new_2d(8, 12).unwrap());
        assert!(!p.is_padded());
        assert_eq!(p.num_virtual(), 0);
        assert_eq!(p.padded().dims(), &[8, 12]);
    }

    #[test]
    fn padding_6x10() {
        let p = Padding::new(&TorusShape::new_2d(6, 10).unwrap());
        assert!(p.is_padded());
        assert_eq!(p.padded().dims(), &[8, 12]);
        assert_eq!(p.num_virtual(), 96 - 60);
    }

    #[test]
    fn id_mapping_roundtrip() {
        let p = Padding::new(&TorusShape::new_2d(6, 10).unwrap());
        for id in 0..p.real().num_nodes() {
            let pid = p.real_to_padded(id);
            assert_eq!(p.padded_to_real(pid), Some(id));
        }
    }

    #[test]
    fn virtual_nodes_map_to_none() {
        let p = Padding::new(&TorusShape::new_2d(6, 10).unwrap());
        let virt = p.padded().index_of(&Coord::new(&[7, 0]));
        assert_eq!(p.padded_to_real(virt), None);
        assert!(!p.is_real(&Coord::new(&[0, 11])));
        assert!(p.is_real(&Coord::new(&[5, 9])));
    }

    #[test]
    fn real_and_virtual_partition() {
        let p = Padding::new(&TorusShape::new(&[5, 7]).unwrap());
        let real_count = (0..p.padded().num_nodes())
            .filter(|&id| p.padded_to_real(id).is_some())
            .count() as u32;
        assert_eq!(real_count, 35);
        assert_eq!(p.num_virtual(), p.padded().num_nodes() - 35);
    }
}
