//! The logical data-array model (Sections 2, 3.3 and 4.1).
//!
//! Each node's buffer is an n-dimensional array of blocks indexed by the
//! destination's coordinate *relative to the node*, measured along the
//! direction the node takes in each phase; axis `p` corresponds to phase
//! `p+1`. With that layout, step `s` of phase `p+1` transmits exactly the
//! slice with axis-`p` index in `[4s, a_p)` — e.g. node `P(0,0,0)` of a
//! `12×12×12` torus sends `B[4s..11, *, *]` in step `s` of phase 1
//! (Figure 3).
//!
//! The paper's physical assumption (Section 2): arrays are stored
//! column-major and *"if physically non-contiguous blocks are transmitted
//! from this array, a message-rearrangement step must take place prior to
//! transmission"*. A slice `{axis p ≥ 4s, others full}` is contiguous iff
//! axis `p` is the slowest-varying axis, so each phase needs its own axis
//! ordering — one rearrangement per phase boundary, `n+1` in total. That
//! constant-per-phase behaviour (vs. per-*step* rearrangement in Tseng et
//! al. \[13\]) is the paper's data-rearrangement advantage; this module
//! makes it checkable.

use torus_topology::{Coord, TorusShape};

use crate::dirsched::DirectionSchedule;

/// The logical send-buffer array of one node, with an explicit axis order
/// tracking which axis is currently slowest (column-major: axes earlier in
/// `order` vary faster).
#[derive(Clone, Debug)]
pub struct DataArray {
    /// Extent of axis `p` = torus extent of the node's phase-`p+1`
    /// dimension.
    extents: Vec<u32>,
    /// Current memory layout: `order[i]` is the axis at varying-speed rank
    /// `i` (rank 0 = fastest). Initially phase-1's axis is slowest.
    order: Vec<usize>,
    /// Number of rearrangement passes performed so far.
    rearrangements: u32,
}

impl DataArray {
    /// Builds the initial array for `node` on a canonical shape: axis `p`
    /// spans the node's phase-`p+1` scatter dimension, and the layout
    /// makes phase 1 contiguous.
    pub fn new(shape: &TorusShape, node: &Coord) -> Self {
        let sched = DirectionSchedule::new(shape);
        let dirs = sched.scatter_dirs(node);
        let extents: Vec<u32> = dirs.iter().map(|d| shape.extent(d.dim())).collect();
        let n = extents.len();
        // rank 0..n-2 = axes 1..n-1 (fast), rank n-1 = axis 0 (slow).
        let mut order: Vec<usize> = (1..n).collect();
        order.push(0);
        Self {
            extents,
            order,
            rearrangements: 0,
        }
    }

    /// Number of phases-axes.
    pub fn ndims(&self) -> usize {
        self.extents.len()
    }

    /// Blocks sent in step `s` (1-based) of within-group phase `p`
    /// (0-based): the slice `axis p in [4s, extent_p)`, full range
    /// elsewhere. Returns 0 once the node's phase dimension is exhausted
    /// (the node idles while longer dimensions continue).
    pub fn sent_count(&self, p: usize, s: u32) -> u64 {
        let ext = self.extents[p] as u64;
        let lo = 4 * s as u64;
        if lo >= ext {
            return 0;
        }
        let others: u64 = self
            .extents
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != p)
            .map(|(_, &e)| e as u64)
            .product();
        (ext - lo) * others
    }

    /// The paper's slice notation for step `s` of phase `p`, e.g.
    /// `B[8..11, *, *]` (Figure 3 uses exactly this form).
    pub fn sent_notation(&self, p: usize, s: u32) -> String {
        let mut parts = Vec::with_capacity(self.ndims());
        for (i, &e) in self.extents.iter().enumerate() {
            if i == p {
                parts.push(format!("{}..{}", 4 * s, e.saturating_sub(1)));
            } else {
                parts.push("*".to_string());
            }
        }
        format!("B[{}]", parts.join(", "))
    }

    /// Whether the phase-`p` send slices are contiguous under the current
    /// memory layout (axis `p` must be the slowest-varying axis).
    pub fn phase_is_contiguous(&self, p: usize) -> bool {
        *self.order.last().expect("non-empty") == p
    }

    /// Rearranges the array so phase `p`'s slices become contiguous
    /// (no-op if they already are). Each rearrangement is one pass over
    /// the whole buffer — the unit the paper charges `(a_1…a_n)·m·ρ` for.
    pub fn rearrange_for_phase(&mut self, p: usize) {
        if self.phase_is_contiguous(p) {
            return;
        }
        self.order.retain(|&a| a != p);
        self.order.push(p);
        self.rearrangements += 1;
    }

    /// Rearrangement passes performed so far.
    pub fn rearrangements(&self) -> u32 {
        self.rearrangements
    }

    /// Simulates the layout demands of a full run of the proposed
    /// algorithm and returns the number of rearrangements needed:
    /// phases `2..=n` each need one (phase 1 is contiguous by
    /// construction), plus one before each of the two submesh phases —
    /// `n + 1` in total, *independent of the network size*.
    pub fn rearrangements_for_full_run(mut self) -> u32 {
        let n = self.ndims();
        for p in 0..n {
            self.rearrange_for_phase(p);
            debug_assert!(self.phase_is_contiguous(p));
        }
        // Submesh phases regroup blocks by destination submesh halves /
        // quarters — one pass each regardless of axis order.
        self.rearrangements + 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arr_12x12_node00() -> DataArray {
        let shape = TorusShape::new_2d(12, 12).unwrap();
        DataArray::new(&shape, &Coord::new(&[0, 0]))
    }

    #[test]
    fn initial_phase_1_is_contiguous() {
        let a = arr_12x12_node00();
        assert!(a.phase_is_contiguous(0));
        assert!(!a.phase_is_contiguous(1));
    }

    #[test]
    fn sent_counts_match_section_3_4() {
        // Step p of phase 1 on a 12x12 torus: R(C - 4p) blocks.
        let a = arr_12x12_node00();
        assert_eq!(a.sent_count(0, 1), 12 * (12 - 4));
        assert_eq!(a.sent_count(0, 2), 12 * (12 - 8));
        assert_eq!(a.sent_count(0, 3), 0);
    }

    #[test]
    fn sent_notation_matches_figure_3() {
        let shape = TorusShape::new_3d(12, 12, 12).unwrap();
        let a = DataArray::new(&shape, &Coord::new(&[0, 0, 0]));
        // P(0,0,0): phase 1 sends B[4s..11, *, *]
        assert_eq!(a.sent_notation(0, 1), "B[4..11, *, *]");
        assert_eq!(a.sent_notation(0, 2), "B[8..11, *, *]");
        assert_eq!(a.sent_notation(1, 1), "B[*, 4..11, *]");
        assert_eq!(a.sent_notation(2, 2), "B[*, *, 8..11]");
    }

    #[test]
    fn rearrangement_count_is_n_plus_1() {
        for dims in [&[12u32, 12][..], &[12, 12, 12], &[8, 8, 8, 8]] {
            let shape = TorusShape::new(dims).unwrap();
            let a = DataArray::new(&shape, &Coord::zero(dims.len()));
            assert_eq!(
                a.rearrangements_for_full_run(),
                dims.len() as u32 + 1,
                "dims {dims:?}"
            );
        }
    }

    #[test]
    fn rearrange_is_idempotent() {
        let mut a = arr_12x12_node00();
        a.rearrange_for_phase(1);
        assert_eq!(a.rearrangements(), 1);
        a.rearrange_for_phase(1);
        assert_eq!(a.rearrangements(), 1);
        assert!(a.phase_is_contiguous(1));
        assert!(!a.phase_is_contiguous(0));
    }

    #[test]
    fn rectangular_extents_follow_phase_dims() {
        // Node (0,0) of a 16x8 torus (canonical): γ=0, phase 1 along dim 0
        // (extent 16), phase 2 along dim 1 (extent 8).
        let shape = TorusShape::new(&[16, 8]).unwrap();
        let a = DataArray::new(&shape, &Coord::new(&[0, 0]));
        assert_eq!(a.sent_count(0, 1), (16 - 4) * 8);
        assert_eq!(a.sent_count(1, 1), (8 - 4) * 16);
        // γ=1 node scatters along dim 1 (extent 8) in phase 1.
        let b = DataArray::new(&shape, &Coord::new(&[1, 0]));
        assert_eq!(b.sent_count(0, 1), (8 - 4) * 16);
        assert_eq!(b.sent_count(0, 2), 0, "short dimension exhausted");
    }
}

/// The submesh-phase buffer layout of Section 3.3.
///
/// Before phase `n+1`, each node arranges its blocks by destination
/// quadrant in the order **B0, B1, B3, B2** — own `2×…×2` submesh, step-1
/// partner's, the diagonal one, step-2 partner's. With that single
/// rearrangement, *both* steps of the phase send physically contiguous
/// regions:
///
/// * step 1 sends `[B1, B3]` (slots 1–2, contiguous) and receives the
///   partner's `[B0', B2']` into the vacated middle;
/// * the buffer is then `[B0, B0', B2', B2]`, so step 2's send set
///   `[B2', B2]` (slots 2–3) is again contiguous.
///
/// The identical argument covers phase `n+2` with nodes N0, N1, N3, N2.
/// This is why the whole algorithm needs only `n + 1` rearrangement
/// passes. [`simulate_submesh_phase`] plays the two steps on slot labels
/// and checks contiguity of every send set.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quadrant {
    /// Blocks for the node's own quarter (`B0`).
    Own,
    /// Blocks for the step-1 partner's quarter (`B1`).
    Step1,
    /// Blocks for the diagonal quarter (`B3`).
    Diagonal,
    /// Blocks for the step-2 partner's quarter (`B2`).
    Step2,
}

/// Simulates the two distance-2 (or distance-1) steps on the Section 3.3
/// layout. Returns the send-slot ranges of both steps; panics if either
/// send set would be non-contiguous (which would force an extra
/// rearrangement the paper does not charge).
pub fn simulate_submesh_phase() -> [(usize, usize); 2] {
    use Quadrant::*;
    // The §3.3 order: B0, B1, B3, B2.
    let mut buf = [Own, Step1, Diagonal, Step2];

    // Step 1: send everything destined across the step-1 axis — B1 and
    // B3 — and receive the partner's B0' and B2' (which are Own and
    // Step2 relative to *this* node's quadrant map).
    let send1: Vec<usize> = buf
        .iter()
        .enumerate()
        .filter(|(_, q)| matches!(q, Step1 | Diagonal))
        .map(|(i, _)| i)
        .collect();
    assert!(
        send1.windows(2).all(|w| w[1] == w[0] + 1),
        "step-1 send set must be contiguous"
    );
    for &i in &send1 {
        // The partner's incoming blocks land in the vacated slots; from
        // this node's perspective they are Own/Step2 destined.
        buf[i] = if buf[i] == Step1 { Own } else { Step2 };
    }

    // Step 2: send everything across the step-2 axis — the B2-quadrant
    // blocks (original and received).
    let send2: Vec<usize> = buf
        .iter()
        .enumerate()
        .filter(|(_, q)| matches!(q, Step2))
        .map(|(i, _)| i)
        .collect();
    assert!(
        send2.windows(2).all(|w| w[1] == w[0] + 1),
        "step-2 send set must be contiguous"
    );

    [
        (send1[0], *send1.last().expect("non-empty")),
        (send2[0], *send2.last().expect("non-empty")),
    ]
}

#[cfg(test)]
mod submesh_tests {
    use super::*;

    #[test]
    fn section_3_3_ordering_keeps_both_steps_contiguous() {
        let [s1, s2] = simulate_submesh_phase();
        // step 1 sends slots 1..=2 (B1, B3); step 2 sends slots 2..=3.
        assert_eq!(s1, (1, 2));
        assert_eq!(s2, (2, 3));
    }

    #[test]
    fn naive_ordering_would_not_be_contiguous() {
        // Counterfactual: with the "natural" order B0, B1, B2, B3 the
        // step-1 send set {B1, B3} is slots {1, 3} — non-contiguous, so a
        // per-step rearrangement (the [13] behaviour) would be required.
        use Quadrant::*;
        let buf = [Own, Step1, Step2, Diagonal];
        let send1: Vec<usize> = buf
            .iter()
            .enumerate()
            .filter(|(_, q)| matches!(q, Step1 | Diagonal))
            .map(|(i, _)| i)
            .collect();
        assert!(send1.windows(2).any(|w| w[1] != w[0] + 1));
    }
}
