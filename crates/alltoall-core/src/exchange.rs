//! High-level API: run the proposed algorithm on any torus shape.
//!
//! [`Exchange`] handles the two gaps between a user's shape and the
//! algorithm's canonical form:
//!
//! * **orientation** — the paper assumes `a_1 ≥ a_2 ≥ … ≥ a_n`; arbitrary
//!   dimension orders are permuted internally and results mapped back;
//! * **granularity** — extents that are not multiples of four are padded
//!   with virtual nodes (Section 6; see [`crate::virtualnodes`]).

use cost_model::{CommParams, CompletionTime};
use torus_topology::{NodeId, TorusShape};

use crate::exec::{ExchangeError, Executor};
use crate::observer::{NullObserver, Observer};
use crate::report::ExchangeReport;
use crate::verify::verify_delivery;
use crate::virtualnodes::Padding;

/// A configured all-to-all personalized exchange on one torus.
#[derive(Clone, Debug)]
pub struct Exchange {
    orig: TorusShape,
    padding: Padding,
    /// Canonicalizing permutation of the padded shape's dimensions.
    perm: Vec<usize>,
    canon: TorusShape,
    threads: usize,
}

impl Exchange {
    /// Prepares an exchange for `shape`.
    ///
    /// Any extents are accepted (padding applies); at least two dimensions
    /// are required — for a ring, model it as an `k × 4`-style 2D torus or
    /// use a baseline algorithm.
    pub fn new(shape: &TorusShape) -> Result<Self, ExchangeError> {
        if shape.ndims() < 2 {
            return Err(ExchangeError::BadShape(format!(
                "the algorithms are defined for n >= 2 dimensions, got {shape}"
            )));
        }
        let padding = Padding::new(shape);
        let (perm, canon) = padding.padded().canonical_permutation();
        Ok(Self {
            orig: shape.clone(),
            padding,
            perm,
            canon,
            threads: 1,
        })
    }

    /// Sets the number of worker threads for buffer processing.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The canonical shape that will actually be executed.
    pub fn executed_shape(&self) -> &TorusShape {
        &self.canon
    }

    /// The original (user-facing) shape.
    pub fn shape_ref(&self) -> &TorusShape {
        &self.orig
    }

    /// Whether virtual-node padding is in effect.
    pub fn is_padded(&self) -> bool {
        self.padding.is_padded()
    }

    /// Maps an original node id to its id in the canonical executed shape.
    pub fn to_canonical(&self, id: NodeId) -> NodeId {
        let padded_coord = self.padding.real().coord_of(id);
        let canon_coord = TorusShape::permute_coord(&padded_coord, &self.perm);
        self.canon.index_of(&canon_coord)
    }

    /// Maps a canonical node id back to the original id (`None` for
    /// virtual nodes).
    pub fn from_canonical(&self, id: NodeId) -> Option<NodeId> {
        let canon_coord = self.canon.coord_of(id);
        let padded_coord = TorusShape::unpermute_coord(&canon_coord, &self.perm);
        self.padding
            .is_real(&padded_coord)
            .then(|| self.orig.index_of(&padded_coord))
    }

    /// Runs a counting-mode exchange (no payloads) and verifies delivery.
    pub fn run_counting(&self, params: &CommParams) -> Result<ExchangeReport, ExchangeError> {
        self.run_observed(params, &mut NullObserver)
    }

    /// Runs a counting-mode exchange with an [`Observer`] receiving
    /// per-step buffer snapshots (canonical node ids).
    pub fn run_observed<O: Observer<()>>(
        &self,
        params: &CommParams,
        observer: &mut O,
    ) -> Result<ExchangeReport, ExchangeError> {
        let (report, _) = self.run_impl(params, observer, |_, _| ())?;
        Ok(report)
    }

    /// Runs a data-carrying exchange: `payload(src, dst)` (original ids)
    /// produces each block's payload. Returns the report plus, for every
    /// original node, the delivered `(source, payload)` pairs sorted by
    /// source.
    #[allow(clippy::type_complexity)]
    pub fn run_with_payloads<P, F>(
        &self,
        params: &CommParams,
        payload: F,
    ) -> Result<(ExchangeReport, Vec<Vec<(NodeId, P)>>), ExchangeError>
    where
        P: Clone + Send,
        F: FnMut(NodeId, NodeId) -> P,
    {
        self.run_impl(params, &mut NullObserver, payload)
    }

    #[allow(clippy::type_complexity)]
    fn run_impl<P, F, O>(
        &self,
        params: &CommParams,
        observer: &mut O,
        mut payload: F,
    ) -> Result<(ExchangeReport, Vec<Vec<(NodeId, P)>>), ExchangeError>
    where
        P: Clone + Send,
        F: FnMut(NodeId, NodeId) -> P,
        O: Observer<P>,
    {
        let mut ex: Executor<P> = Executor::new(&self.canon, *params, self.threads);

        // Seed blocks for every real (src, dst) pair.
        let real_n = self.orig.num_nodes();
        let canon_ids: Vec<NodeId> = (0..real_n).map(|id| self.to_canonical(id)).collect();
        {
            let mut pairs =
                Vec::with_capacity((real_n as usize).saturating_mul(real_n as usize - 1));
            for s in 0..real_n {
                for d in 0..real_n {
                    if s != d {
                        pairs.push((canon_ids[s as usize], canon_ids[d as usize], payload(s, d)));
                    }
                }
            }
            ex.seed_pairs(pairs);
        }

        ex.run(observer)?;

        // Expected delivery per canonical node.
        let mut expected: Vec<Vec<NodeId>> = vec![Vec::new(); self.canon.num_nodes() as usize];
        for d in 0..real_n {
            let cd = canon_ids[d as usize];
            expected[cd as usize] = (0..real_n)
                .filter(|&s| s != d)
                .map(|s| canon_ids[s as usize])
                .collect();
        }
        let verified = verify_delivery(ex.buffers(), &expected).is_ok();

        // Collect payloads back in original ids.
        let mut deliveries: Vec<Vec<(NodeId, P)>> = vec![Vec::new(); real_n as usize];
        {
            let bufs = ex.buffers();
            for d in 0..real_n {
                let cd = canon_ids[d as usize];
                let mut got: Vec<(NodeId, P)> = bufs
                    .node(cd)
                    .iter()
                    .map(|b| {
                        let orig_src = self
                            .from_canonical(b.src)
                            .expect("delivered blocks originate from real nodes");
                        (orig_src, b.payload.clone())
                    })
                    .collect();
                got.sort_by_key(|(s, _)| *s);
                deliveries[d as usize] = got;
            }
        }

        let engine = ex.engine();
        let report = ExchangeReport {
            shape: self.orig.clone(),
            executed_shape: self.canon.clone(),
            padded: self.is_padded(),
            counts: engine.counts(),
            elapsed: engine.elapsed(),
            formula: cost_model::proposed_nd(self.canon.dims()),
            trace: engine.trace().clone(),
            verified,
            params: *params,
        };
        if !verified {
            // Surface the precise reason.
            verify_delivery(ex.buffers(), &expected)?;
        }
        Ok((report, deliveries))
    }

    /// Predicted completion time from the Table 1 closed form for this
    /// exchange's executed shape — no simulation.
    pub fn predicted_time(&self, params: &CommParams) -> CompletionTime {
        CompletionTime::from_counts(&cost_model::proposed_nd(self.canon.dims()), params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiple_of_four_runs_exactly() {
        let e = Exchange::new(&TorusShape::new_2d(8, 8).unwrap()).unwrap();
        assert!(!e.is_padded());
        let r = e.run_counting(&CommParams::unit()).unwrap();
        assert!(r.verified);
        assert!(
            r.matches_formula(),
            "measured {:?} vs formula {:?}",
            r.counts,
            r.formula
        );
    }

    #[test]
    fn unsorted_dims_are_canonicalized() {
        let e = Exchange::new(&TorusShape::new_2d(12, 8).unwrap()).unwrap();
        assert_eq!(e.executed_shape().dims(), &[12, 8]);
        let e2 = Exchange::new(&TorusShape::new_2d(8, 12).unwrap()).unwrap();
        assert_eq!(e2.executed_shape().dims(), &[12, 8]);
        let r = e2.run_counting(&CommParams::unit()).unwrap();
        assert!(r.verified);
        assert_eq!(r.counts.startup_steps, 12 / 2 + 2);
    }

    #[test]
    fn padded_6x6_verifies() {
        let e = Exchange::new(&TorusShape::new_2d(6, 6).unwrap()).unwrap();
        assert!(e.is_padded());
        assert_eq!(e.executed_shape().dims(), &[8, 8]);
        let r = e.run_counting(&CommParams::unit()).unwrap();
        assert!(r.verified);
        assert!(r.matches_formula());
    }

    #[test]
    fn id_mapping_roundtrip() {
        let e = Exchange::new(&TorusShape::new(&[6, 10, 5]).unwrap()).unwrap();
        for id in 0..e.orig.num_nodes() {
            let c = e.to_canonical(id);
            assert_eq!(e.from_canonical(c), Some(id));
        }
    }

    #[test]
    fn payload_exchange_small() {
        let e = Exchange::new(&TorusShape::new_2d(4, 4).unwrap()).unwrap();
        let (r, deliveries) = e
            .run_with_payloads(&CommParams::unit(), |s, d| (s as u64) << 32 | d as u64)
            .unwrap();
        assert!(r.verified);
        for (d, got) in deliveries.iter().enumerate() {
            assert_eq!(got.len(), 15);
            for (s, p) in got {
                assert_eq!(*p, (*s as u64) << 32 | d as u64);
            }
            // sorted by source
            let srcs: Vec<NodeId> = got.iter().map(|(s, _)| *s).collect();
            let mut sorted = srcs.clone();
            sorted.sort_unstable();
            assert_eq!(srcs, sorted);
        }
    }

    #[test]
    fn rejects_1d() {
        assert!(matches!(
            Exchange::new(&TorusShape::new(&[16]).unwrap()),
            Err(ExchangeError::BadShape(_))
        ));
    }

    #[test]
    fn predicted_matches_unit_formula() {
        let e = Exchange::new(&TorusShape::new_2d(8, 8).unwrap()).unwrap();
        let t = e.predicted_time(&CommParams::unit());
        let f = cost_model::proposed_2d(8, 8);
        assert_eq!(t.startup, f.startup_steps as f64);
        assert_eq!(t.propagation, f.prop_hops as f64);
    }
}
