//! Step-by-step schedule iteration for external runtimes.
//!
//! [`crate::exec::Executor`] interleaves schedule generation with cost
//! accounting on the simulator; a *real* runtime (e.g. `torus-runtime`'s
//! thread-per-node executor) instead wants the schedule as plain data it
//! can iterate: for every step, who sends to whom, and which blocks a
//! node must fold into its combined message.
//!
//! [`StepPlan`] provides exactly that. It wraps the contention-validated
//! [`StaticSchedule`](crate::schedule::StaticSchedule) (destinations per
//! node per step) and adds the paper's per-step **block-selection rules**
//! ([`selects`](StepPlan::selects)) so an external executor reproduces the
//! `n + 2`-phase algorithm without re-deriving any of the direction
//! machinery. [`execute_serial`](StepPlan::execute_serial) is the
//! reference interpreter: it replays the plan on [`Buffers`] sequentially
//! and is what the equivalence tests (and the `torus-runtime` proptest
//! suite) compare threaded executions against.

use torus_topology::{Coord, NodeId, TorusShape};

use crate::block::{Block, Buffers};
use crate::observer::PhaseKind;
use crate::schedule::{StaticSchedule, StaticSend};

/// What kind of step this is — determines the block-selection rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// Step of within-group scatter phase `phase + 1` (0-based index).
    Scatter {
        /// 0-based scatter-phase index (also the shift-counter slot).
        phase: usize,
    },
    /// Step `step + 1` of the distance-2 submesh phase (`n + 1`).
    Distance2 {
        /// 0-based step index within the phase.
        step: usize,
    },
    /// Distance-1 exchange along canonical dimension `dim` (phase `n + 2`).
    Distance1 {
        /// Canonical dimension exchanged along.
        dim: usize,
    },
}

/// One step of the plan: per-node destinations plus the selection rule.
#[derive(Clone, Debug)]
pub struct PlannedStep {
    /// The step's kind (selection rule + shift bookkeeping).
    pub kind: StepKind,
    /// Hop count of every message in this step (4, 2, or 1).
    pub hops: u32,
    /// Indexed by node id: the node's send this step, `None` if it idles.
    pub sends: Vec<Option<StaticSend>>,
}

/// One phase of the plan.
#[derive(Clone, Debug)]
pub struct PlannedPhase {
    /// Phase label, e.g. `"phase 1"` (matches the executor's trace names).
    pub name: String,
    /// The phase kind reported to [`Observer`](crate::observer::Observer)s.
    pub kind: PhaseKind,
    /// Steps in execution order.
    pub steps: Vec<PlannedStep>,
    /// Whether the paper's inter-phase data rearrangement follows this
    /// phase (true for every phase except the last).
    pub rearrange_after: bool,
}

/// The full `n + 2`-phase plan for one canonical torus shape, with the
/// per-step block-selection rules needed to execute it on real buffers.
///
/// ```
/// use alltoall_core::StepPlan;
/// use torus_topology::TorusShape;
///
/// let shape = TorusShape::new_2d(8, 8).unwrap();
/// let plan = StepPlan::new(&shape);
/// assert_eq!(plan.phases().len(), 4); // n + 2
///
/// // The reference interpreter performs a full exchange.
/// let mut bufs = plan.seed_counting();
/// plan.execute_serial(&mut bufs);
/// alltoall_core::verify_full_exchange(&shape, &bufs).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct StepPlan {
    shape: TorusShape,
    phases: Vec<PlannedPhase>,
    coords: Vec<Coord>,
}

impl StepPlan {
    /// Builds the plan for a **canonical** shape (extents non-increasing,
    /// all multiples of four, `n >= 2` — see
    /// [`DirectionSchedule::new`](crate::dirsched::DirectionSchedule::new),
    /// which panics otherwise).
    pub fn new(shape: &TorusShape) -> Self {
        let sched = StaticSchedule::generate(shape);
        let n = shape.ndims();
        let nn = shape.num_nodes() as usize;
        let coords: Vec<Coord> = shape.iter_coords().collect();

        let mut phases = Vec::with_capacity(n + 2);
        for (pi, phase) in sched.phases.iter().enumerate() {
            let kind = if pi < n {
                PhaseKind::Scatter { index: pi }
            } else if pi == n {
                PhaseKind::Distance2
            } else {
                PhaseKind::Distance1
            };
            let steps = phase
                .steps
                .iter()
                .enumerate()
                .map(|(si, st)| {
                    let (kind, hops) = if pi < n {
                        (StepKind::Scatter { phase: pi }, 4)
                    } else if pi == n {
                        (StepKind::Distance2 { step: si }, 2)
                    } else {
                        (StepKind::Distance1 { dim: si }, 1)
                    };
                    let mut sends: Vec<Option<StaticSend>> = vec![None; nn];
                    for s in &st.sends {
                        sends[s.src as usize] = Some(*s);
                    }
                    PlannedStep { kind, hops, sends }
                })
                .collect();
            phases.push(PlannedPhase {
                name: phase.name.clone(),
                kind,
                steps,
                // The paper performs n + 1 rearrangements for n + 2
                // phases: one after every phase but the last.
                rearrange_after: pi <= n,
            });
        }
        Self {
            shape: shape.clone(),
            phases,
            coords,
        }
    }

    /// The canonical shape the plan executes on.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// The phases in execution order.
    pub fn phases(&self) -> &[PlannedPhase] {
        &self.phases
    }

    /// Total number of communication steps across all phases.
    pub fn total_steps(&self) -> usize {
        self.phases.iter().map(|p| p.steps.len()).sum()
    }

    /// The paper's block-selection rule: must `node` fold `block` into its
    /// combined message for `step`?
    ///
    /// * scatter phase `p`: blocks still owing 4-stride shifts along the
    ///   phase's dimension (`shifts[p] > 0`);
    /// * distance-2: blocks whose destination lies in the other half of
    ///   the `4 × … × 4` submesh along the node's step dimension;
    /// * distance-1: blocks whose destination has the other parity along
    ///   the step's dimension.
    pub fn selects<P>(&self, step: &PlannedStep, node: NodeId, block: &Block<P>) -> bool {
        match step.kind {
            StepKind::Scatter { phase } => block.shifts[phase] > 0,
            StepKind::Distance2 { .. } => match &step.sends[node as usize] {
                Some(send) => {
                    let delta = send.dim as usize;
                    let u = self.coords[node as usize][delta] % 4;
                    let d = self.coords[block.dst as usize][delta] % 4;
                    u / 2 != d / 2
                }
                None => false,
            },
            StepKind::Distance1 { dim } => {
                self.coords[node as usize][dim] % 2 != self.coords[block.dst as usize][dim] % 2
            }
        }
    }

    /// The shift-counter slot a sender must decrement on each forwarded
    /// block (`Some(p)` in scatter phase `p`; the block is about to travel
    /// one 4-hop stride).
    pub fn shift_decrement(step: &PlannedStep) -> Option<usize> {
        match step.kind {
            StepKind::Scatter { phase } => Some(phase),
            _ => None,
        }
    }

    /// Seeds counting-mode buffers for a full exchange on the plan's shape
    /// (every ordered pair, correct shift vectors) — convenience for tests
    /// and doc examples.
    pub fn seed_counting(&self) -> Buffers<()> {
        let mut ex: crate::exec::Executor =
            crate::exec::Executor::new(&self.shape, cost_model::CommParams::unit(), 1);
        ex.seed_full(|_, _| ());
        let (bufs, _) = ex.into_parts();
        bufs
    }

    /// Reference interpreter: replays the whole plan on `bufs`
    /// sequentially (select → decrement → deliver, phase by phase).
    ///
    /// This moves exactly the blocks a conforming runtime must move; the
    /// equivalence suites compare threaded byte-moving executions against
    /// it. Rearrangements are no-ops here (they permute local memory, not
    /// block ownership).
    pub fn execute_serial<P: Clone>(&self, bufs: &mut Buffers<P>) {
        for phase in &self.phases {
            for step in &phase.steps {
                let mut deliveries: Vec<(NodeId, Vec<Block<P>>)> = Vec::new();
                for node in 0..self.shape.num_nodes() {
                    let Some(send) = step.sends[node as usize] else {
                        continue;
                    };
                    let mut sent = bufs.drain_matching(node, |b| self.selects(step, node, b));
                    if let Some(p) = Self::shift_decrement(step) {
                        for b in &mut sent {
                            debug_assert!(b.shifts[p] > 0);
                            b.shifts[p] -= 1;
                        }
                    }
                    if !sent.is_empty() {
                        deliveries.push((send.dst, sent));
                    }
                }
                for (dst, blocks) in deliveries {
                    bufs.deliver(dst, blocks);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_full_exchange;

    #[test]
    fn plan_structure_matches_paper() {
        let shape = TorusShape::new_2d(12, 12).unwrap();
        let plan = StepPlan::new(&shape);
        assert_eq!(plan.phases().len(), 4);
        assert_eq!(plan.total_steps(), 2 * (12 / 4 + 1) as usize);
        assert_eq!(plan.phases()[0].steps.len(), 2); // a1/4 - 1
        assert_eq!(plan.phases()[2].steps.len(), 2); // distance-2: n steps
        assert_eq!(plan.phases()[3].steps.len(), 2); // distance-1: n steps
        assert!(plan.phases()[0].rearrange_after);
        assert!(plan.phases()[2].rearrange_after);
        assert!(!plan.phases()[3].rearrange_after);
        assert_eq!(plan.phases()[0].kind, PhaseKind::Scatter { index: 0 });
        assert_eq!(plan.phases()[2].kind, PhaseKind::Distance2);
        assert_eq!(plan.phases()[3].kind, PhaseKind::Distance1);
    }

    #[test]
    fn serial_replay_completes_full_exchange() {
        for dims in [&[8u32, 8][..], &[12, 8], &[8, 8, 8], &[4, 4, 4, 4]] {
            let shape = TorusShape::new(dims).unwrap();
            let plan = StepPlan::new(&shape);
            let mut bufs = plan.seed_counting();
            plan.execute_serial(&mut bufs);
            verify_full_exchange(&shape, &bufs).unwrap_or_else(|e| panic!("{dims:?}: {e}"));
        }
    }

    #[test]
    fn replay_matches_executor_step_for_step() {
        // The plan's selection rules must pick exactly the blocks the
        // dynamic executor moves: after replay, per-node multisets agree.
        let shape = TorusShape::new(&[12, 8]).unwrap();
        let plan = StepPlan::new(&shape);
        let mut bufs = plan.seed_counting();
        plan.execute_serial(&mut bufs);

        let mut ex: crate::exec::Executor =
            crate::exec::Executor::new(&shape, cost_model::CommParams::unit(), 1);
        ex.seed_full(|_, _| ());
        ex.run(&mut crate::observer::NullObserver).unwrap();

        for node in 0..shape.num_nodes() {
            let mut a: Vec<(NodeId, NodeId)> =
                bufs.node(node).iter().map(|b| (b.src, b.dst)).collect();
            let mut b: Vec<(NodeId, NodeId)> = ex
                .buffers()
                .node(node)
                .iter()
                .map(|b| (b.src, b.dst))
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "node {node}");
        }
    }

    #[test]
    fn idle_senders_hold_no_selected_blocks() {
        // Whenever the static plan marks a node idle, the dynamic
        // selection rule must agree that it has nothing to forward —
        // otherwise blocks would strand.
        let shape = TorusShape::new(&[12, 8]).unwrap();
        let plan = StepPlan::new(&shape);
        let mut bufs = plan.seed_counting();
        for phase in plan.phases() {
            for step in &phase.steps {
                let mut deliveries: Vec<(NodeId, Vec<Block<()>>)> = Vec::new();
                for node in 0..shape.num_nodes() {
                    let selected = bufs.drain_matching(node, |b| plan.selects(step, node, b));
                    match step.sends[node as usize] {
                        Some(send) => {
                            let mut sent = selected;
                            if let Some(p) = StepPlan::shift_decrement(step) {
                                for b in &mut sent {
                                    b.shifts[p] -= 1;
                                }
                            }
                            deliveries.push((send.dst, sent));
                        }
                        None => assert!(
                            selected.is_empty(),
                            "idle node {node} had {} selected blocks in {:?}",
                            selected.len(),
                            step.kind
                        ),
                    }
                }
                for (dst, blocks) in deliveries {
                    bufs.deliver(dst, blocks);
                }
            }
        }
        verify_full_exchange(&shape, &bufs).unwrap();
    }
}
