#![warn(missing_docs)]

//! All-to-all personalized exchange (complete exchange) algorithms for
//! multidimensional torus networks — the core contribution of
//! Suh & Shin, *Efficient All-to-All Personalized Exchange in
//! Multidimensional Torus Networks*, ICPP 1998.
//!
//! In an `N`-node system, each node `P_i` starts with `N` distinct blocks
//! `B[i, 1..N]` and must end with `B[1..N, i]` — one block from every node.
//! The algorithms here perform this with **message combining** in `n + 2`
//! phases on an `a_1 × … × a_n` torus whose dimensions are multiples of
//! four (arbitrary sizes are handled by virtual-node padding):
//!
//! * phases `1..n`: ring scatters *within node groups* (the `4^n` groups of
//!   nodes whose coordinates agree mod 4), one dimension per phase, with
//!   directions assigned per group so that no two messages ever share a
//!   channel;
//! * phase `n+1`: distance-2 exchanges within each `4 × … × 4` submesh;
//! * phase `n+2`: distance-1 exchanges within each `2 × … × 2` submesh.
//!
//! The implementation is organized so the paper's claims are *checked*, not
//! assumed: schedules are executed on the contention-verifying simulator
//! from `torus-sim`, and the executor's cost counts are compared against
//! the closed forms of `cost-model` in the test suites.
//!
//! Entry point: [`exchange::Exchange`].
//!
//! # Quick start
//!
//! ```
//! use alltoall_core::exchange::Exchange;
//! use cost_model::CommParams;
//! use torus_topology::TorusShape;
//!
//! let shape = TorusShape::new_2d(8, 8).unwrap();
//! let report = Exchange::new(&shape)
//!     .unwrap()
//!     .run_counting(&CommParams::cray_t3d_like())
//!     .unwrap();
//! assert!(report.verified);
//! assert_eq!(report.counts.startup_steps, 8 / 2 + 2);
//! ```

pub mod alltoallv;
pub mod block;
pub mod dataarray;
pub mod dirsched;
pub mod exchange;
pub mod exec;
pub mod observer;
pub mod prepared;
pub mod repair;
pub mod report;
pub mod schedule;
pub mod steps;
pub mod verify;
pub mod virtualnodes;

pub use alltoallv::AlltoallvReport;
pub use block::Block;
pub use dirsched::DirectionSchedule;
pub use exchange::Exchange;
pub use exec::{ExchangeError, Executor};
pub use observer::{NullObserver, Observer, PhaseKind};
pub use prepared::PreparedExchange;
pub use repair::{
    DroppedBlock, RepairError, RepairedPhase, RepairedSchedule, RepairedSend, RepairedStep,
};
pub use report::ExchangeReport;
pub use schedule::StaticSchedule;
pub use steps::{PlannedPhase, PlannedStep, StepKind, StepPlan};
pub use verify::{verify_delivery, verify_delivery_degraded, verify_full_exchange};
