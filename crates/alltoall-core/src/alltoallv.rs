//! Variable-count personalized exchange (`MPI_Alltoallv` analog).
//!
//! The paper's algorithm moves exactly one block per (source, destination)
//! pair. Real applications are rarely that uniform: graph redistribution,
//! particle migration and sparse transposes send *zero or many* blocks per
//! pair. Because the executor's block bookkeeping is per-block (not
//! per-pair), the same `n + 2`-phase schedule handles arbitrary
//! multiplicities unchanged — blocks for the same pair simply ride the
//! same pipeline together, and the message-combining property keeps the
//! startup count at `n(a₁/4 + 1)` *regardless of the count matrix*.
//! That constant-startup behaviour under irregularity is exactly what
//! direct algorithms lose (their round count depends on the sparsity
//! pattern).

use cost_model::{CommParams, CostCounts};
use torus_topology::NodeId;

use crate::exchange::Exchange;
use crate::exec::{ExchangeError, Executor};
use crate::observer::NullObserver;

/// Result of a variable-count exchange.
#[derive(Clone, Debug)]
pub struct AlltoallvReport {
    /// Measured critical-path counts.
    pub counts: CostCounts,
    /// Completion time under the run's parameters.
    pub elapsed: cost_model::CompletionTime,
    /// `received[d][s]` = number of blocks node `d` received from `s`.
    pub received: Vec<Vec<u64>>,
    /// Whether every count was delivered exactly.
    pub verified: bool,
}

impl Exchange {
    /// Runs a personalized exchange where node `s` sends
    /// `send_counts[s][d]` blocks to node `d` (original node ids; the
    /// diagonal is ignored — self data never enters the network).
    ///
    /// The returned report's `received` matrix must equal the transpose of
    /// `send_counts` for `verified` to hold.
    ///
    /// ```
    /// use alltoall_core::Exchange;
    /// use cost_model::CommParams;
    /// use torus_topology::TorusShape;
    ///
    /// let shape = TorusShape::new_2d(4, 4).unwrap();
    /// // Node 0 sends 5 blocks to node 7; nothing else moves.
    /// let mut counts = vec![vec![0u64; 16]; 16];
    /// counts[0][7] = 5;
    /// let r = Exchange::new(&shape)
    ///     .unwrap()
    ///     .run_alltoallv(&CommParams::unit(), &counts)
    ///     .unwrap();
    /// assert!(r.verified);
    /// assert_eq!(r.received[7][0], 5);
    /// ```
    pub fn run_alltoallv(
        &self,
        params: &CommParams,
        send_counts: &[Vec<u64>],
    ) -> Result<AlltoallvReport, ExchangeError> {
        let n = self.shape_ref().num_nodes();
        if send_counts.len() != n as usize || send_counts.iter().any(|row| row.len() != n as usize)
        {
            return Err(ExchangeError::BadShape(format!(
                "send_counts must be {n}x{n}"
            )));
        }
        let canon = self.executed_shape().clone();
        let mut ex: Executor = Executor::new(&canon, *params, 1);
        let canon_ids: Vec<NodeId> = (0..n).map(|id| self.to_canonical(id)).collect();
        {
            let mut pairs = Vec::new();
            for s in 0..n as usize {
                for d in 0..n as usize {
                    if s == d {
                        continue;
                    }
                    for _ in 0..send_counts[s][d] {
                        pairs.push((canon_ids[s], canon_ids[d], ()));
                    }
                }
            }
            ex.seed_pairs(pairs);
        }
        ex.run(&mut NullObserver)?;

        // Tally deliveries back in original ids.
        let mut received = vec![vec![0u64; n as usize]; n as usize];
        let mut misdelivered = false;
        for d in 0..n {
            let cd = canon_ids[d as usize];
            for b in ex.buffers().node(cd) {
                if b.dst != cd {
                    misdelivered = true;
                    continue;
                }
                let s = self
                    .from_canonical(b.src)
                    .expect("blocks originate from real nodes");
                received[d as usize][s as usize] += 1;
            }
        }
        // Virtual/foreign nodes must hold nothing.
        for c in 0..canon.num_nodes() {
            if !canon_ids.contains(&c) && !ex.buffers().node(c).is_empty() {
                misdelivered = true;
            }
        }
        let verified = !misdelivered
            && (0..n as usize)
                .all(|d| (0..n as usize).all(|s| s == d || received[d][s] == send_counts[s][d]));
        let engine = ex.engine();
        Ok(AlltoallvReport {
            counts: engine.counts(),
            elapsed: engine.elapsed(),
            received,
            verified,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use torus_topology::TorusShape;

    fn uniform(n: usize, c: u64) -> Vec<Vec<u64>> {
        (0..n)
            .map(|s| (0..n).map(|d| if s == d { 0 } else { c }).collect())
            .collect()
    }

    #[test]
    fn uniform_counts_match_plain_exchange() {
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let e = Exchange::new(&shape).unwrap();
        let r = e
            .run_alltoallv(&CommParams::unit(), &uniform(64, 1))
            .unwrap();
        assert!(r.verified);
        let plain = e.run_counting(&CommParams::unit()).unwrap();
        assert_eq!(r.counts, plain.counts);
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // s/d index both axes of the matrix
    fn sparse_counts_deliver_exactly() {
        let shape = TorusShape::new_2d(4, 4).unwrap();
        let n = 16usize;
        // Pseudo-random sparse matrix: many zero pairs, some multi-block.
        let counts: Vec<Vec<u64>> = (0..n)
            .map(|s| {
                (0..n)
                    .map(|d| {
                        if s == d {
                            0
                        } else {
                            ((s * 7 + d * 13) % 5) as u64 // 0..=4 blocks
                        }
                    })
                    .collect()
            })
            .collect();
        let e = Exchange::new(&shape).unwrap();
        let r = e.run_alltoallv(&CommParams::unit(), &counts).unwrap();
        assert!(r.verified);
        for d in 0..n {
            for s in 0..n {
                if s != d {
                    assert_eq!(r.received[d][s], counts[s][d], "pair {s}->{d}");
                }
            }
        }
    }

    #[test]
    fn startup_count_is_sparsity_independent() {
        // The headline property: combining keeps the step count fixed no
        // matter how irregular the counts.
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let e = Exchange::new(&shape).unwrap();
        let dense = e
            .run_alltoallv(&CommParams::unit(), &uniform(64, 3))
            .unwrap();
        let mut sparse = uniform(64, 0);
        sparse[0][63] = 10;
        sparse[17][2] = 1;
        let sparse_r = e.run_alltoallv(&CommParams::unit(), &sparse).unwrap();
        assert!(dense.verified && sparse_r.verified);
        assert_eq!(dense.counts.startup_steps, sparse_r.counts.startup_steps);
        assert!(sparse_r.counts.trans_blocks < dense.counts.trans_blocks);
    }

    #[test]
    fn empty_exchange_still_verifies() {
        let shape = TorusShape::new_2d(4, 4).unwrap();
        let e = Exchange::new(&shape).unwrap();
        let r = e
            .run_alltoallv(&CommParams::unit(), &uniform(16, 0))
            .unwrap();
        assert!(r.verified);
        assert_eq!(r.counts.trans_blocks, 0);
    }

    #[test]
    fn works_with_padding() {
        let shape = TorusShape::new_2d(6, 6).unwrap();
        let n = 36usize;
        let counts: Vec<Vec<u64>> = (0..n)
            .map(|s| (0..n).map(|d| ((s + d) % 3) as u64).collect())
            .collect();
        let e = Exchange::new(&shape).unwrap();
        assert!(e.is_padded());
        let r = e.run_alltoallv(&CommParams::unit(), &counts).unwrap();
        assert!(r.verified);
    }

    #[test]
    fn wrong_matrix_size_rejected() {
        let shape = TorusShape::new_2d(4, 4).unwrap();
        let e = Exchange::new(&shape).unwrap();
        assert!(matches!(
            e.run_alltoallv(&CommParams::unit(), &uniform(9, 1)),
            Err(ExchangeError::BadShape(_))
        ));
    }
}
