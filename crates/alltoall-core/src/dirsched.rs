//! Direction schedules — the paper's communication patterns.
//!
//! Every node selects, for each of the `n` within-group phases, one of the
//! `2n` directions; the selection depends only on the node's coordinates
//! mod 4, so all nodes of a scatter pipeline (same group, spaced 4 apart)
//! share a schedule and their 4-hop messages tile each ring without channel
//! overlap.
//!
//! The concrete patterns (Sections 3.2 and 4.1):
//!
//! **2D** (`γ = (r + c) mod 4`, `c` the larger dimension):
//!
//! | γ | phase 1 | phase 2 |
//! |---|---------|---------|
//! | 0 | `+c`    | `+r`    |
//! | 1 | `+r`    | `+c`    |
//! | 2 | `−c`    | `−r`    |
//! | 3 | `−r`    | `−c`    |
//!
//! **3D**: nodes in even-numbered X-Y planes (`Z mod 4 ∈ {0, 2}`) run
//! pattern A, B, then ±Z; nodes in odd planes run ±Z, then B, then A.
//!
//! **nD** (Section 4.2): nodes in even-numbered units along dimension `n`
//! follow the `(n−1)`-dimensional patterns in the first `n−1` phases and
//! scatter along dimension `n` in phase `n`; the others scatter along
//! dimension `n` in phase 1 and follow the `(n−1)`-dimensional patterns —
//! in reverse phase order, matching the explicit 3D rules — afterwards.
//!
//! The same recursive structure, keyed on position parity instead of
//! residue mod 4, orders the per-node dimension sequence of the
//! distance-2 submesh phase (`n+1`); the distance-1 phase (`n+2`) visits
//! dimensions in fixed descending-extent order for all nodes, as in the
//! paper's 2D phase 4 / 3D phase 5.
//!
//! All of this assumes the **canonical orientation**: dimensions sorted by
//! non-increasing extent (`a_1 ≥ … ≥ a_n`). [`crate::exchange`] permutes
//! arbitrary shapes into this orientation and back.

use torus_topology::{ring_hops, Coord, Direction, GroupInfo, Sign, TorusShape, MAX_DIMS};

/// Precomputed direction scheduling for one canonical torus shape.
#[derive(Clone, Debug)]
pub struct DirectionSchedule {
    shape: TorusShape,
}

impl DirectionSchedule {
    /// Builds the schedule helper.
    ///
    /// # Panics
    ///
    /// Panics if the shape is not canonical (non-increasing extents, all
    /// multiples of four) or has fewer than 2 dimensions — the paper's
    /// patterns are defined from 2D up.
    pub fn new(shape: &TorusShape) -> Self {
        assert!(
            shape.ndims() >= 2,
            "direction schedules need >= 2 dimensions (got {shape})"
        );
        assert!(
            shape.is_sorted_desc(),
            "shape {shape} must be canonical (non-increasing extents)"
        );
        assert!(
            shape.all_multiple_of(4),
            "shape {shape} must have all extents multiples of 4"
        );
        assert!(
            shape.extent(0) <= 1024,
            "extents above 1024 would overflow the u8 shift counters (got {shape})"
        );
        Self {
            shape: shape.clone(),
        }
    }

    /// Number of steps in each within-group phase: `a_1/4 − 1`.
    pub fn steps_per_scatter_phase(&self) -> u32 {
        self.shape.extent(0) / 4 - 1
    }

    /// The directions a node scatters along in phases `1..=n`
    /// (`result[p]` is the direction of phase `p+1`).
    ///
    /// Depends only on the node's coordinates mod 4, so it is constant
    /// along every scatter pipeline.
    pub fn scatter_dirs(&self, node: &Coord) -> Vec<Direction> {
        scatter_dirs_rec(node, self.shape.ndims())
    }

    /// Dimension visit order for the distance-2 submesh phase (`n+1`):
    /// `result[j]` is the dimension the node exchanges along in step `j+1`.
    pub fn submesh_dim_order(&self, node: &Coord) -> Vec<usize> {
        submesh_order_rec(node, self.shape.ndims())
    }

    /// Sign of the distance-2 exchange along `dim` for a node: positions
    /// 0, 1 within the `4×…×4` submesh pair up with 2, 3 (`+2` / `−2`).
    pub fn distance2_sign(node: &Coord, dim: usize) -> Sign {
        if node[dim] % 4 < 2 {
            Sign::Plus
        } else {
            Sign::Minus
        }
    }

    /// Sign of the distance-1 exchange along `dim` for a node.
    pub fn distance1_sign(node: &Coord, dim: usize) -> Sign {
        if node[dim].is_multiple_of(2) {
            Sign::Plus
        } else {
            Sign::Minus
        }
    }

    /// The shift vector of block `(s → d)`: `result[p]` is the number of
    /// 4-stride hops the block needs in phase `p+1` to progress from `s`
    /// to the group representative `t(s, d)` along the phase's dimension
    /// and direction.
    pub fn shift_vector(&self, gi: &GroupInfo, s: &Coord, d: &Coord) -> [u8; MAX_DIMS] {
        let t = gi.representative(s, d);
        let dirs = self.scatter_dirs(s);
        let mut shifts = [0u8; MAX_DIMS];
        for (p, dir) in dirs.iter().enumerate() {
            let dim = dir.dim();
            let hops = ring_hops(s[dim], t[dim], self.shape.extent(dim), dir.sign);
            debug_assert_eq!(hops % 4, 0, "representative differs by multiples of 4");
            let k = hops / 4;
            debug_assert!(k <= u8::MAX as u32);
            shifts[p] = k as u8;
        }
        shifts
    }

    /// The canonical shape.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }
}

/// Phase directions over the first `m` canonical dimensions (recursive
/// structure of Section 4.2, grounded at the 2D patterns of Section 3.2).
fn scatter_dirs_rec(node: &Coord, m: usize) -> Vec<Direction> {
    debug_assert!(m >= 2);
    if m == 2 {
        let gamma = (node[0] + node[1]) % 4;
        // Pattern A (phase 1) then pattern B (phase 2); dim 0 is larger.
        let a = match gamma {
            0 => Direction::plus(0),
            1 => Direction::plus(1),
            2 => Direction::minus(0),
            _ => Direction::minus(1),
        };
        let b = match gamma {
            0 => Direction::plus(1),
            1 => Direction::plus(0),
            2 => Direction::minus(1),
            _ => Direction::minus(0),
        };
        return vec![a, b];
    }
    let last = m - 1;
    let u = node[last] % 4;
    let along_last = |sign| Direction::new(last, sign);
    match u {
        0 | 2 => {
            // Even unit: inner patterns first, then dimension m.
            let mut dirs = scatter_dirs_rec(node, m - 1);
            dirs.push(along_last(if u == 0 { Sign::Plus } else { Sign::Minus }));
            dirs
        }
        _ => {
            // Odd unit: dimension m first, then inner patterns in reverse
            // phase order (3D: [C, B, A], matching Section 4.1).
            let mut inner = scatter_dirs_rec(node, m - 1);
            inner.reverse();
            let mut dirs = vec![along_last(if u == 1 { Sign::Plus } else { Sign::Minus })];
            dirs.extend(inner);
            dirs
        }
    }
}

/// Dimension order for the distance-2 submesh phase over the first `m`
/// dimensions — same recursion as the phase schedule, keyed on parity.
fn submesh_order_rec(node: &Coord, m: usize) -> Vec<usize> {
    debug_assert!(m >= 2);
    if m == 2 {
        return if (node[0] + node[1]).is_multiple_of(2) {
            vec![0, 1]
        } else {
            vec![1, 0]
        };
    }
    let last = m - 1;
    if node[last].is_multiple_of(2) {
        let mut order = submesh_order_rec(node, m - 1);
        order.push(last);
        order
    } else {
        let mut inner = submesh_order_rec(node, m - 1);
        inner.reverse();
        let mut order = vec![last];
        order.extend(inner);
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sched_2d() -> DirectionSchedule {
        DirectionSchedule::new(&TorusShape::new_2d(12, 12).unwrap())
    }

    fn sched_3d() -> DirectionSchedule {
        DirectionSchedule::new(&TorusShape::new_3d(12, 12, 12).unwrap())
    }

    #[test]
    fn two_d_matches_section_3_2() {
        // In canonical order dim0 = c (larger), dim1 = r. The paper's table
        // (γ = (r+c) mod 4): phase 1 = [+c, +r, −c, −r], phase 2 = [+r, +c, −r, −c].
        let s = sched_2d();
        let cases = [
            // (coord with sum γ, phase1, phase2)
            (Coord::new(&[0, 0]), Direction::plus(0), Direction::plus(1)),
            (Coord::new(&[1, 0]), Direction::plus(1), Direction::plus(0)),
            (
                Coord::new(&[1, 1]),
                Direction::minus(0),
                Direction::minus(1),
            ),
            (
                Coord::new(&[2, 1]),
                Direction::minus(1),
                Direction::minus(0),
            ),
        ];
        for (c, p1, p2) in cases {
            let dirs = s.scatter_dirs(&c);
            assert_eq!(dirs.len(), 2);
            assert_eq!(dirs[0], p1, "phase 1 of {c}");
            assert_eq!(dirs[1], p2, "phase 2 of {c}");
        }
    }

    #[test]
    fn three_d_matches_section_4_1() {
        // Even Z-unit (Z mod 4 ∈ {0,2}): [A, B, ±Z]; odd: [±Z, B, A].
        let s = sched_3d();
        // γ = (X+Y) mod 4 = 0, Z mod 4 = 0 -> phase1 +X, phase2 +Y, phase3 +Z
        let dirs = s.scatter_dirs(&Coord::new(&[0, 0, 0]));
        assert_eq!(
            dirs,
            vec![Direction::plus(0), Direction::plus(1), Direction::plus(2)]
        );
        // γ = 1, Z mod 4 = 2 -> phase1 +Y, phase2 +X, phase3 −Z
        let dirs = s.scatter_dirs(&Coord::new(&[0, 1, 2]));
        assert_eq!(
            dirs,
            vec![Direction::plus(1), Direction::plus(0), Direction::minus(2)]
        );
        // Z mod 4 = 1 -> phase1 +Z, then B, then A. γ = (X+Y) mod 4 = 2:
        // B(2) = −Y, A(2) = −X.
        let dirs = s.scatter_dirs(&Coord::new(&[1, 1, 1]));
        assert_eq!(
            dirs,
            vec![Direction::plus(2), Direction::minus(1), Direction::minus(0)]
        );
        // Z mod 4 = 3 -> phase1 −Z. γ = 3: B(3) = −X, A(3) = −Y.
        let dirs = s.scatter_dirs(&Coord::new(&[1, 2, 3]));
        assert_eq!(
            dirs,
            vec![
                Direction::minus(2),
                Direction::minus(0),
                Direction::minus(1)
            ]
        );
    }

    #[test]
    fn every_node_covers_every_dimension_once() {
        for shape in [
            TorusShape::new(&[12, 8]).unwrap(),
            TorusShape::new(&[12, 12, 8]).unwrap(),
            TorusShape::new(&[8, 8, 4, 4]).unwrap(),
        ] {
            let s = DirectionSchedule::new(&shape);
            for c in shape.iter_coords() {
                let dirs = s.scatter_dirs(&c);
                assert_eq!(dirs.len(), shape.ndims());
                let mut dims: Vec<usize> = dirs.iter().map(|d| d.dim()).collect();
                dims.sort_unstable();
                assert_eq!(dims, (0..shape.ndims()).collect::<Vec<_>>(), "node {c}");
            }
        }
    }

    #[test]
    fn schedule_constant_along_pipelines() {
        // All members of a group share the schedule (required for the
        // pipeline argument).
        let shape = TorusShape::new(&[12, 8, 8]).unwrap();
        let s = DirectionSchedule::new(&shape);
        let gi = GroupInfo::new(&shape);
        for g_raw in TorusShape::new(&[4, 4, 4]).unwrap().iter_coords() {
            let g = torus_topology::GroupId(g_raw);
            let mut members = gi.group_members(g);
            let first = s.scatter_dirs(&members.next().unwrap());
            for m in members {
                assert_eq!(s.scatter_dirs(&m), first, "member {m} of group {g_raw}");
            }
        }
    }

    #[test]
    fn per_phase_line_tiling_invariant() {
        // In each phase, along any line of a dimension, the nodes sending
        // in the + direction of that dimension form exactly one mod-4
        // residue class (ditto −): this is what makes 4-hop paths tile.
        for shape in [
            TorusShape::new(&[12, 12]).unwrap(),
            TorusShape::new(&[8, 8, 8]).unwrap(),
            TorusShape::new(&[8, 8, 8, 8]).unwrap(),
        ] {
            let s = DirectionSchedule::new(&shape);
            let n = shape.ndims();
            for phase in 0..n {
                // key: (line identifier = coord with dim δ zeroed, δ, sign)
                let mut residues: HashMap<(Vec<u32>, usize, Sign), Vec<u32>> = HashMap::new();
                for c in shape.iter_coords() {
                    let dir = s.scatter_dirs(&c)[phase];
                    let delta = dir.dim();
                    let mut key: Vec<u32> = c.as_slice().to_vec();
                    key[delta] = 0;
                    residues
                        .entry((key, delta, dir.sign))
                        .or_default()
                        .push(c[delta] % 4);
                }
                for ((line, delta, sign), rs) in residues {
                    let mut uniq = rs.clone();
                    uniq.sort_unstable();
                    uniq.dedup();
                    assert_eq!(
                        uniq.len(),
                        1,
                        "phase {phase}: line {line:?} dim {delta} sign {sign:?} \
                         has senders from residues {uniq:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn submesh_order_matches_3d_phase_4() {
        let s = sched_3d();
        // Z even, (X+Y) even: [X, Y, Z]
        assert_eq!(s.submesh_dim_order(&Coord::new(&[0, 0, 0])), vec![0, 1, 2]);
        // Z even, (X+Y) odd: [Y, X, Z]
        assert_eq!(s.submesh_dim_order(&Coord::new(&[0, 1, 0])), vec![1, 0, 2]);
        // Z odd, (X+Y) even: [Z, Y, X]
        assert_eq!(s.submesh_dim_order(&Coord::new(&[0, 0, 1])), vec![2, 1, 0]);
        // Z odd, (X+Y) odd: [Z, X, Y]
        assert_eq!(s.submesh_dim_order(&Coord::new(&[1, 0, 3])), vec![2, 0, 1]);
    }

    #[test]
    fn submesh_order_is_permutation() {
        let shape = TorusShape::new(&[8, 8, 4, 4]).unwrap();
        let s = DirectionSchedule::new(&shape);
        for c in shape.iter_coords() {
            let mut order = s.submesh_dim_order(&c);
            order.sort_unstable();
            assert_eq!(order, vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn exchange_signs_pair_up() {
        // distance-2: 0 <-> 2 and 1 <-> 3 within the submesh.
        let c0 = Coord::new(&[0, 0]);
        let c2 = Coord::new(&[2, 0]);
        assert_eq!(DirectionSchedule::distance2_sign(&c0, 0), Sign::Plus);
        assert_eq!(DirectionSchedule::distance2_sign(&c2, 0), Sign::Minus);
        // distance-1: 0 <-> 1.
        assert_eq!(DirectionSchedule::distance1_sign(&c0, 0), Sign::Plus);
        assert_eq!(
            DirectionSchedule::distance1_sign(&Coord::new(&[1, 0]), 0),
            Sign::Minus
        );
    }

    #[test]
    fn shift_vector_basic() {
        let shape = TorusShape::new_2d(12, 12).unwrap();
        let s = DirectionSchedule::new(&shape);
        let gi = GroupInfo::new(&shape);
        // Node (0,0): γ=0, phase1 +dim0, phase2 +dim1.
        // Destination (8, 4): representative t = (8, 4). Phase 1 moves dim0
        // by 8 hops = 2 shifts; phase 2 moves dim1 by 4 hops = 1 shift.
        let k = s.shift_vector(&gi, &Coord::new(&[0, 0]), &Coord::new(&[8, 4]));
        assert_eq!(k[0], 2);
        assert_eq!(k[1], 1);
        // Destination in own submesh: zero shifts.
        let k = s.shift_vector(&gi, &Coord::new(&[0, 0]), &Coord::new(&[3, 3]));
        assert_eq!(&k[..2], &[0, 0]);
    }

    #[test]
    fn shift_vector_respects_negative_directions() {
        let shape = TorusShape::new_2d(12, 12).unwrap();
        let s = DirectionSchedule::new(&shape);
        let gi = GroupInfo::new(&shape);
        // Node (1,1): γ=2 -> phase1 −dim0, phase2 −dim1.
        // Destination (5, 9): t = (5, 9). dim0: from 1 to 5 going minus:
        // 1 -> 9 -> 5 is 8 hops = 2 shifts. dim1: 1 -> 9 minus = 4 hops = 1.
        let k = s.shift_vector(&gi, &Coord::new(&[1, 1]), &Coord::new(&[5, 9]));
        assert_eq!(k[0], 2);
        assert_eq!(k[1], 1);
    }

    #[test]
    fn steps_per_phase() {
        assert_eq!(sched_2d().steps_per_scatter_phase(), 2);
        let s = DirectionSchedule::new(&TorusShape::new(&[16, 8]).unwrap());
        assert_eq!(s.steps_per_scatter_phase(), 3);
    }

    #[test]
    #[should_panic(expected = "canonical")]
    fn rejects_unsorted() {
        DirectionSchedule::new(&TorusShape::new(&[8, 12]).unwrap());
    }

    #[test]
    #[should_panic(expected = ">= 2 dimensions")]
    fn rejects_1d() {
        DirectionSchedule::new(&TorusShape::new(&[8]).unwrap());
    }

    #[test]
    #[should_panic(expected = "overflow the u8 shift counters")]
    fn rejects_oversized_extents() {
        DirectionSchedule::new(&TorusShape::new(&[1028, 4]).unwrap());
    }

    #[test]
    fn max_supported_extent_is_accepted() {
        // 1024/4 - 1 = 255 shifts fits u8 exactly.
        let s = DirectionSchedule::new(&TorusShape::new(&[1024, 4]).unwrap());
        assert_eq!(s.steps_per_scatter_phase(), 255);
    }
}
