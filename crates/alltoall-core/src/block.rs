//! Message blocks and per-node buffers.
//!
//! A block `B[s, d]` is the unit of the personalized exchange: source `s`
//! has one for every destination `d`. During the within-group phases a
//! block carries its precomputed *shift vector*: how many 4-stride hops it
//! still needs along the dimension of each phase to reach its group
//! representative (see [`dirsched`](crate::dirsched)).
//!
//! Blocks are generic in their payload `P`:
//! * `P = ()` — counting mode, 16 bytes per block, used for cost
//!   measurement at scale;
//! * `P = bytes::Bytes` — data-carrying mode, used by the examples to move
//!   real application data and check byte-level correctness.

use torus_topology::{Coord, NodeId, MAX_DIMS};

/// One message block in flight.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block<P = ()> {
    /// Originating node.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Remaining 4-stride shifts per within-group phase (`shifts[p]` for
    /// phase `p+1`); all zero once the block reaches its group
    /// representative.
    pub shifts: [u8; MAX_DIMS],
    /// Application payload.
    pub payload: P,
}

impl<P> Block<P> {
    /// Creates a block with a payload.
    pub fn with_payload(src: NodeId, dst: NodeId, payload: P) -> Self {
        Self {
            src,
            dst,
            shifts: [0; MAX_DIMS],
            payload,
        }
    }

    /// Whether all within-group shifts are exhausted (the block is inside
    /// its destination's submesh).
    pub fn settled(&self) -> bool {
        self.shifts.iter().all(|&k| k == 0)
    }
}

impl Block<()> {
    /// Creates a counting-mode block.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        Self::with_payload(src, dst, ())
    }
}

/// Per-node buffers: `buffers[node]` is the multiset of blocks currently
/// held by `node`. The total across all nodes is invariant (`N²`) during a
/// run — transmissions move blocks, never create or drop them.
#[derive(Clone, Debug)]
pub struct Buffers<P = ()> {
    bufs: Vec<Vec<Block<P>>>,
}

impl<P: Clone> Buffers<P> {
    /// Creates empty buffers for `n` nodes.
    pub fn empty(n: usize) -> Self {
        Self {
            bufs: vec![Vec::new(); n],
        }
    }

    /// Wraps pre-filled buffers.
    pub fn from_vecs(bufs: Vec<Vec<Block<P>>>) -> Self {
        Self { bufs }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.bufs.len()
    }

    /// Blocks currently held by `node`.
    pub fn node(&self, node: NodeId) -> &[Block<P>] {
        &self.bufs[node as usize]
    }

    /// Mutable access to one node's buffer.
    pub fn node_mut(&mut self, node: NodeId) -> &mut Vec<Block<P>> {
        &mut self.bufs[node as usize]
    }

    /// Total number of blocks across all nodes.
    pub fn total_blocks(&self) -> u64 {
        self.bufs.iter().map(|b| b.len() as u64).sum()
    }

    /// Splits one node's buffer by a predicate: matching blocks are removed
    /// and returned, the rest stay (order-preserving).
    pub fn drain_matching<F>(&mut self, node: NodeId, pred: F) -> Vec<Block<P>>
    where
        F: Fn(&Block<P>) -> bool,
    {
        let buf = &mut self.bufs[node as usize];
        let mut sent = Vec::new();
        let mut kept = Vec::with_capacity(buf.len());
        for b in buf.drain(..) {
            if pred(&b) {
                sent.push(b);
            } else {
                kept.push(b);
            }
        }
        *buf = kept;
        sent
    }

    /// Appends received blocks to a node's buffer.
    pub fn deliver(&mut self, node: NodeId, blocks: Vec<Block<P>>) {
        self.bufs[node as usize].extend(blocks);
    }

    /// Raw access for parallel processing.
    pub fn as_mut_slices(&mut self) -> &mut [Vec<Block<P>>] {
        &mut self.bufs
    }

    /// Raw shared access.
    pub fn as_slices(&self) -> &[Vec<Block<P>>] {
        &self.bufs
    }
}

/// Computes a coordinate-keyed destination description used in figure
/// regeneration: which `4×…×4` submesh a block is heading to.
pub fn destination_submesh(shape: &torus_topology::TorusShape, b: &Block<impl Clone>) -> Coord {
    shape.coord_of(b.dst).div_each(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_construction() {
        let b = Block::new(3, 7);
        assert_eq!(b.src, 3);
        assert_eq!(b.dst, 7);
        assert!(b.settled());
        let mut b2 = b.clone();
        b2.shifts[1] = 2;
        assert!(!b2.settled());
    }

    #[test]
    fn payload_block() {
        let b = Block::with_payload(1, 2, vec![9u8, 9]);
        assert_eq!(b.payload, vec![9, 9]);
    }

    #[test]
    fn buffers_drain_and_deliver() {
        let mut bufs: Buffers = Buffers::empty(4);
        bufs.deliver(
            0,
            vec![Block::new(0, 1), Block::new(0, 2), Block::new(0, 3)],
        );
        assert_eq!(bufs.total_blocks(), 3);
        let sent = bufs.drain_matching(0, |b| b.dst >= 2);
        assert_eq!(sent.len(), 2);
        assert_eq!(bufs.node(0).len(), 1);
        assert_eq!(bufs.node(0)[0].dst, 1);
        bufs.deliver(2, sent);
        assert_eq!(bufs.node(2).len(), 2);
        assert_eq!(bufs.total_blocks(), 3);
    }

    #[test]
    fn drain_preserves_order() {
        let mut bufs: Buffers = Buffers::empty(1);
        bufs.deliver(0, (0..10).map(|d| Block::new(0, d)).collect());
        let sent = bufs.drain_matching(0, |b| b.dst % 2 == 0);
        let sent_dsts: Vec<u32> = sent.iter().map(|b| b.dst).collect();
        assert_eq!(sent_dsts, vec![0, 2, 4, 6, 8]);
        let kept_dsts: Vec<u32> = bufs.node(0).iter().map(|b| b.dst).collect();
        assert_eq!(kept_dsts, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn destination_submesh_of_block() {
        let shape = torus_topology::TorusShape::new_2d(12, 12).unwrap();
        let dst = shape.index_of(&Coord::new(&[9, 6]));
        let b = Block::new(0, dst);
        assert_eq!(destination_submesh(&shape, &b), Coord::new(&[2, 1]));
    }
}
