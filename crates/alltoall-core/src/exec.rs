//! The schedule executor: runs the `n + 2` phases on the simulator.
//!
//! The executor owns per-node buffers and an [`Engine`]; every step it
//! computes, for each node, which blocks move (from the paper's selection
//! rules), submits the resulting transmissions to the engine — which
//! *rejects* the step if it is not contention-free — and then applies the
//! movement. Cost accounting therefore reflects exactly what a real
//! machine obeying the Section 2 model would do.

use cost_model::CommParams;
use crossbeam::thread as cb_thread;
use torus_sim::{Engine, SimError, Transmission};
use torus_topology::{Coord, Direction, GroupInfo, NodeId, TorusShape};

use crate::block::{Block, Buffers};
use crate::dirsched::DirectionSchedule;
use crate::observer::{Observer, PhaseKind};

/// Errors from executing an exchange.
#[derive(Debug, Clone, PartialEq)]
pub enum ExchangeError {
    /// The simulator rejected a step — the schedule violated the model.
    /// (For the paper's algorithms this indicates an implementation bug;
    /// the failure-injection tests construct it deliberately.)
    Sim(SimError),
    /// Post-run verification failed: a node ended without exactly one
    /// block from every source.
    VerificationFailed(String),
    /// The requested shape cannot be handled.
    BadShape(String),
}

impl std::fmt::Display for ExchangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExchangeError::Sim(e) => write!(f, "simulation rejected a step: {e}"),
            ExchangeError::VerificationFailed(s) => write!(f, "verification failed: {s}"),
            ExchangeError::BadShape(s) => write!(f, "bad shape: {s}"),
        }
    }
}

impl std::error::Error for ExchangeError {}

impl From<SimError> for ExchangeError {
    fn from(e: SimError) -> Self {
        ExchangeError::Sim(e)
    }
}

/// Executes the proposed algorithm on a canonical torus shape.
///
/// Generic over block payloads `P`: `()` for counting runs, any
/// `Clone + Send` type (e.g. `bytes::Bytes`) for data-carrying runs.
pub struct Executor<P = ()> {
    shape: TorusShape,
    sched: DirectionSchedule,
    gi: GroupInfo,
    engine: Engine,
    buffers: Buffers<P>,
    threads: usize,
    /// Cached per-node phase directions, indexed by node id.
    dirs: Vec<Vec<Direction>>,
    /// Cached per-node dimension order for the distance-2 phase.
    sm_order: Vec<Vec<usize>>,
    /// Cached node coordinates.
    coords: Vec<Coord>,
}

impl<P: Clone + Send> Executor<P> {
    /// Creates an executor for a **canonical** shape (extents
    /// non-increasing, all multiples of four, `n ≥ 2`). Buffers start
    /// empty; seed them with [`seed_full`](Self::seed_full) or
    /// [`seed_pairs`](Self::seed_pairs).
    pub fn new(shape: &TorusShape, params: CommParams, threads: usize) -> Self {
        let sched = DirectionSchedule::new(shape);
        let gi = GroupInfo::new(shape);
        let n = shape.num_nodes() as usize;
        let coords: Vec<Coord> = shape.iter_coords().collect();
        let dirs: Vec<Vec<Direction>> = coords.iter().map(|c| sched.scatter_dirs(c)).collect();
        let sm_order: Vec<Vec<usize>> = coords.iter().map(|c| sched.submesh_dim_order(c)).collect();
        Self {
            engine: Engine::new(shape, params),
            buffers: Buffers::empty(n),
            shape: shape.clone(),
            sched,
            gi,
            threads: threads.max(1),
            dirs,
            sm_order,
            coords,
        }
    }

    /// Seeds every node with one block for every node (including itself;
    /// the self-block never moves and is excluded from buffers — the paper
    /// likewise never transmits `B[i, i]`). `payload(src, dst)` produces
    /// block payloads.
    pub fn seed_full<F>(&mut self, mut payload: F)
    where
        F: FnMut(NodeId, NodeId) -> P,
    {
        let n = self.shape.num_nodes();
        for s in 0..n {
            let mut blocks = Vec::with_capacity(n as usize - 1);
            for d in 0..n {
                if d == s {
                    continue;
                }
                blocks.push(self.make_block(s, d, payload(s, d)));
            }
            self.buffers.deliver(s, blocks);
        }
    }

    /// Seeds an explicit set of `(src, dst, payload)` triples — used by
    /// virtual-node padding, where only real pairs exist.
    pub fn seed_pairs<I>(&mut self, pairs: I)
    where
        I: IntoIterator<Item = (NodeId, NodeId, P)>,
    {
        for (s, d, p) in pairs {
            if s == d {
                continue;
            }
            let b = self.make_block(s, d, p);
            self.buffers.node_mut(s).push(b);
        }
    }

    fn make_block(&self, s: NodeId, d: NodeId, payload: P) -> Block<P> {
        let sc = self.coords[s as usize];
        let dc = self.coords[d as usize];
        let mut b = Block::with_payload(s, d, payload);
        b.shifts = self.sched.shift_vector(&self.gi, &sc, &dc);
        b
    }

    /// Runs all `n + 2` phases. Returns the simulator error if any step is
    /// rejected. Does **not** verify delivery — see
    /// [`verify`](crate::verify).
    pub fn run<O: Observer<P>>(&mut self, observer: &mut O) -> Result<(), ExchangeError> {
        observer.on_start(&self.buffers);
        let n = self.shape.ndims();
        let steps = self.sched.steps_per_scatter_phase();
        // Rearrangement passes touch the node's whole N-entry data array —
        // including the resident self-block B[i,i] — per Section 3.3.
        let blocks_per_node = self.shape.num_nodes() as u64;

        // Phases 1..n: within-group ring scatters.
        for p in 0..n {
            let kind = PhaseKind::Scatter { index: p };
            self.engine.begin_phase(&format!("phase {}", p + 1));
            for step in 1..=steps {
                self.scatter_step(p)?;
                observer.on_step(kind, step as usize, &self.buffers);
            }
            // Rearrangement between phases (paper: n+1 rearrangements for
            // n+2 phases — one after every phase but the last).
            self.engine.rearrange(blocks_per_node);
            observer.on_rearrange(kind, &self.buffers);
        }

        // Phase n+1: distance-2 exchanges within 4×…×4 submeshes.
        self.engine.begin_phase(&format!("phase {}", n + 1));
        for j in 0..n {
            self.distance2_step(j)?;
            observer.on_step(PhaseKind::Distance2, j + 1, &self.buffers);
        }
        self.engine.rearrange(blocks_per_node);
        observer.on_rearrange(PhaseKind::Distance2, &self.buffers);

        // Phase n+2: distance-1 exchanges within 2×…×2 submeshes.
        self.engine.begin_phase(&format!("phase {}", n + 2));
        for j in 0..n {
            self.distance1_step(j)?;
            observer.on_step(PhaseKind::Distance1, j + 1, &self.buffers);
        }
        Ok(())
    }

    /// One step of within-group phase `p` (0-based): every node forwards
    /// all blocks that still need shifts along the phase's dimension to
    /// the fixed next node 4 hops away.
    fn scatter_step(&mut self, p: usize) -> Result<(), ExchangeError> {
        let sent = partition_parallel(
            self.buffers.as_mut_slices(),
            self.threads,
            |_node, b| b.shifts[p] > 0,
            Some(p),
        );
        let mut txs = Vec::new();
        let mut deliveries: Vec<(NodeId, Vec<Block<P>>)> = Vec::new();
        for (u, blocks) in sent.into_iter().enumerate() {
            if blocks.is_empty() {
                continue; // idle node (shorter dimension already finished)
            }
            let dir = self.dirs[u][p];
            let from = self.coords[u];
            let tx = Transmission::along_ring(&self.shape, &from, dir, 4, blocks.len() as u64);
            deliveries.push((tx.dst, blocks));
            txs.push(tx);
        }
        self.engine.execute_step(&txs)?;
        for (dst, blocks) in deliveries {
            self.buffers.deliver(dst, blocks);
        }
        Ok(())
    }

    /// Step `j` of the distance-2 phase: each node exchanges, with its
    /// partner two hops away along its `j`-th submesh dimension, the
    /// blocks whose destination lies in the partner's half of the submesh.
    fn distance2_step(&mut self, j: usize) -> Result<(), ExchangeError> {
        let coords = &self.coords;
        let orders = &self.sm_order;
        let sent = partition_parallel(
            self.buffers.as_mut_slices(),
            self.threads,
            |node: usize, b: &Block<P>| {
                let delta = orders[node][j];
                let u = coords[node][delta] % 4;
                let d = coords[b.dst as usize][delta] % 4;
                u / 2 != d / 2
            },
            None,
        );
        let mut txs = Vec::new();
        let mut deliveries = Vec::new();
        for (u, blocks) in sent.into_iter().enumerate() {
            if blocks.is_empty() {
                continue;
            }
            let delta = self.sm_order[u][j];
            let from = self.coords[u];
            let sign = DirectionSchedule::distance2_sign(&from, delta);
            let tx = Transmission::along_ring(
                &self.shape,
                &from,
                Direction::new(delta, sign),
                2,
                blocks.len() as u64,
            );
            deliveries.push((tx.dst, blocks));
            txs.push(tx);
        }
        self.engine.execute_step(&txs)?;
        for (dst, blocks) in deliveries {
            self.buffers.deliver(dst, blocks);
        }
        Ok(())
    }

    /// Step `j` of the distance-1 phase: neighbor exchange along canonical
    /// dimension `j` within each `2×…×2` submesh.
    fn distance1_step(&mut self, j: usize) -> Result<(), ExchangeError> {
        let coords = &self.coords;
        let sent = partition_parallel(
            self.buffers.as_mut_slices(),
            self.threads,
            |node: usize, b: &Block<P>| coords[node][j] % 2 != coords[b.dst as usize][j] % 2,
            None,
        );
        let mut txs = Vec::new();
        let mut deliveries = Vec::new();
        for (u, blocks) in sent.into_iter().enumerate() {
            if blocks.is_empty() {
                continue;
            }
            let from = self.coords[u];
            let sign = DirectionSchedule::distance1_sign(&from, j);
            let tx = Transmission::along_ring(
                &self.shape,
                &from,
                Direction::new(j, sign),
                1,
                blocks.len() as u64,
            );
            deliveries.push((tx.dst, blocks));
            txs.push(tx);
        }
        self.engine.execute_step(&txs)?;
        for (dst, blocks) in deliveries {
            self.buffers.deliver(dst, blocks);
        }
        Ok(())
    }

    /// The engine (for cost counts, elapsed time, and trace).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The per-node buffers (final state after [`run`](Self::run)).
    pub fn buffers(&self) -> &Buffers<P> {
        &self.buffers
    }

    /// Mutable buffer access — used to install a cached pre-seeded state
    /// (see [`crate::prepared`]). The caller is responsible for seeding a
    /// consistent state (correct shift vectors for this shape).
    pub fn buffers_mut(&mut self) -> &mut Buffers<P> {
        &mut self.buffers
    }

    /// Consumes the executor, returning buffers and engine.
    pub fn into_parts(self) -> (Buffers<P>, Engine) {
        (self.buffers, self.engine)
    }

    /// The canonical shape being executed.
    pub fn shape(&self) -> &TorusShape {
        &self.shape
    }

    /// The group decomposition in use.
    pub fn group_info(&self) -> &GroupInfo {
        &self.gi
    }
}

/// Removes, from every node's buffer in parallel, the blocks selected by
/// `sel(node, block)` and returns them per node (index-aligned with
/// `bufs`). If `decrement_shift` is `Some(p)`, each removed block's
/// phase-`p` shift counter is decremented — it is about to travel one
/// 4-hop stride.
fn partition_parallel<P, F>(
    bufs: &mut [Vec<Block<P>>],
    threads: usize,
    sel: F,
    decrement_shift: Option<usize>,
) -> Vec<Vec<Block<P>>>
where
    P: Clone + Send,
    F: Fn(usize, &Block<P>) -> bool + Sync,
{
    let n = bufs.len();
    let mut out: Vec<Vec<Block<P>>> = (0..n).map(|_| Vec::new()).collect();
    let process = |base: usize, bchunk: &mut [Vec<Block<P>>], ochunk: &mut [Vec<Block<P>>]| {
        for (i, (buf, o)) in bchunk.iter_mut().zip(ochunk.iter_mut()).enumerate() {
            let node = base + i;
            let mut kept = Vec::with_capacity(buf.len());
            for mut b in buf.drain(..) {
                if sel(node, &b) {
                    if let Some(p) = decrement_shift {
                        debug_assert!(b.shifts[p] > 0);
                        b.shifts[p] -= 1;
                    }
                    o.push(b);
                } else {
                    kept.push(b);
                }
            }
            *buf = kept;
        }
    };
    const PAR_THRESHOLD: usize = 64;
    if threads <= 1 || n < PAR_THRESHOLD {
        process(0, bufs, &mut out);
    } else {
        let chunk = n.div_ceil(threads);
        cb_thread::scope(|s| {
            for (ti, (bchunk, ochunk)) in bufs
                .chunks_mut(chunk)
                .zip(out.chunks_mut(chunk))
                .enumerate()
            {
                let process = &process;
                s.spawn(move |_| process(ti * chunk, bchunk, ochunk));
            }
        })
        .expect("partition worker panicked");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::NullObserver;
    use crate::verify::verify_full_exchange;

    fn run_counting(dims: &[u32]) -> Executor {
        let shape = TorusShape::new(dims).unwrap();
        let mut ex: Executor = Executor::new(&shape, CommParams::unit(), 1);
        ex.seed_full(|_, _| ());
        ex.run(&mut NullObserver)
            .expect("schedule must be contention-free");
        ex
    }

    #[test]
    fn exchange_8x8_completes_and_verifies() {
        let ex = run_counting(&[8, 8]);
        verify_full_exchange(ex.shape(), ex.buffers()).unwrap();
    }

    #[test]
    fn exchange_12x12_counts_match_table1() {
        let ex = run_counting(&[12, 12]);
        verify_full_exchange(ex.shape(), ex.buffers()).unwrap();
        let counts = ex.engine().counts();
        let formula = cost_model::proposed_2d(12, 12);
        assert_eq!(counts.startup_steps, formula.startup_steps);
        assert_eq!(counts.rearr_steps, formula.rearr_steps);
        assert_eq!(counts.prop_hops, formula.prop_hops);
        // The self-block (never transmitted) sits in the never-sent region
        // of every phase, so the measured critical volume equals the
        // closed form exactly.
        assert_eq!(counts.trans_blocks, formula.trans_blocks);
    }

    #[test]
    fn exchange_rectangular_8x12() {
        // R != C: phases keyed to the larger dim, shorter-dim nodes idle.
        let ex = run_counting(&[12, 8]);
        verify_full_exchange(ex.shape(), ex.buffers()).unwrap();
        assert_eq!(ex.engine().counts().startup_steps, (12 / 2 + 2) as u64);
    }

    #[test]
    fn exchange_3d_8cubed() {
        let ex = run_counting(&[8, 8, 8]);
        verify_full_exchange(ex.shape(), ex.buffers()).unwrap();
        let counts = ex.engine().counts();
        let formula = cost_model::proposed_nd(&[8, 8, 8]);
        assert_eq!(counts.startup_steps, formula.startup_steps);
        assert_eq!(counts.prop_hops, formula.prop_hops);
        assert_eq!(counts.rearr_steps, formula.rearr_steps);
    }

    #[test]
    fn exchange_4d_4x4x4x4() {
        // a1 = 4: scatter phases have zero steps; the submesh phases do
        // all the work (the formula still holds: n(a1/4+1) = 2n steps).
        let ex = run_counting(&[4, 4, 4, 4]);
        verify_full_exchange(ex.shape(), ex.buffers()).unwrap();
        assert_eq!(ex.engine().counts().startup_steps, 8);
    }

    #[test]
    fn payload_blocks_arrive_intact() {
        let shape = TorusShape::new(&[8, 8]).unwrap();
        let mut ex: Executor<Vec<u8>> = Executor::new(&shape, CommParams::unit(), 1);
        ex.seed_full(|s, d| vec![(s % 251) as u8, (d % 251) as u8]);
        ex.run(&mut NullObserver).unwrap();
        for node in 0..shape.num_nodes() {
            for b in ex.buffers().node(node) {
                assert_eq!(b.dst, node);
                assert_eq!(b.payload, vec![(b.src % 251) as u8, (node % 251) as u8]);
            }
        }
    }

    #[test]
    fn parallel_threads_give_identical_results() {
        let shape = TorusShape::new(&[12, 12]).unwrap();
        let mk = |threads| {
            let mut ex: Executor = Executor::new(&shape, CommParams::unit(), threads);
            ex.seed_full(|_, _| ());
            ex.run(&mut NullObserver).unwrap();
            ex.engine().counts()
        };
        assert_eq!(mk(1), mk(4));
    }

    #[test]
    fn block_conservation_every_step() {
        struct Conserve {
            expect: u64,
        }
        impl Observer<()> for Conserve {
            fn on_step(&mut self, _: PhaseKind, _: usize, bufs: &Buffers<()>) {
                assert_eq!(bufs.total_blocks(), self.expect);
            }
        }
        let shape = TorusShape::new(&[8, 8]).unwrap();
        let mut ex: Executor = Executor::new(&shape, CommParams::unit(), 1);
        ex.seed_full(|_, _| ());
        let total = ex.buffers().total_blocks();
        ex.run(&mut Conserve { expect: total }).unwrap();
    }
}
