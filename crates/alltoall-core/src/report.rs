//! Exchange run reports.

use cost_model::{CommParams, CompletionTime, CostCounts};
use torus_sim::Trace;
use torus_topology::TorusShape;

/// The outcome of one complete-exchange run.
#[derive(Clone, Debug)]
pub struct ExchangeReport {
    /// The torus shape the user asked for.
    pub shape: TorusShape,
    /// The canonical (sorted, padded) shape actually executed; equals a
    /// permutation of `shape` when no padding was needed.
    pub executed_shape: TorusShape,
    /// Whether virtual-node padding was applied.
    pub padded: bool,
    /// Measured critical-path cost counts.
    pub counts: CostCounts,
    /// Completion time under the run's parameters.
    pub elapsed: CompletionTime,
    /// Closed-form counts (Table 1) for the executed shape.
    pub formula: CostCounts,
    /// Per-phase, per-step trace.
    pub trace: Trace,
    /// Whether post-run delivery verification passed.
    pub verified: bool,
    /// The parameters used.
    pub params: CommParams,
}

impl ExchangeReport {
    /// Measured total completion time (µs).
    pub fn total_time(&self) -> f64 {
        self.elapsed.total()
    }

    /// Whether the measured step/rearrangement/hop counts equal the
    /// closed forms of Table 1 exactly (transmission blocks may fall below
    /// the closed form only on padded runs, where virtual sources hold no
    /// blocks).
    pub fn matches_formula(&self) -> bool {
        let exact = self.counts.startup_steps == self.formula.startup_steps
            && self.counts.rearr_steps == self.formula.rearr_steps
            && self.counts.rearr_blocks == self.formula.rearr_blocks
            && self.counts.prop_hops == self.formula.prop_hops;
        if self.padded {
            exact && self.counts.trans_blocks <= self.formula.trans_blocks
        } else {
            exact && self.counts.trans_blocks == self.formula.trans_blocks
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} steps, {} blocks (critical), {} hops, {} rearrangements, {:.1} µs{}",
            self.shape,
            self.counts.startup_steps,
            self.counts.trans_blocks,
            self.counts.prop_hops,
            self.counts.rearr_steps,
            self.total_time(),
            if self.verified { "" } else { " [UNVERIFIED]" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> ExchangeReport {
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let counts = CostCounts {
            startup_steps: 6,
            trans_blocks: 192,
            rearr_steps: 3,
            rearr_blocks: 192,
            prop_hops: 14,
        };
        ExchangeReport {
            shape: shape.clone(),
            executed_shape: shape.clone(),
            padded: false,
            counts,
            elapsed: CompletionTime::from_counts(&counts, &CommParams::unit()),
            formula: cost_model::proposed_2d(8, 8),
            trace: Trace::default(),
            verified: true,
            params: CommParams::unit(),
        }
    }

    #[test]
    fn summary_contains_key_numbers() {
        let r = dummy();
        let s = r.summary();
        assert!(s.contains("8x8"));
        assert!(s.contains("6 steps"));
        assert!(!s.contains("UNVERIFIED"));
    }

    #[test]
    fn unverified_is_flagged() {
        let mut r = dummy();
        r.verified = false;
        assert!(r.summary().contains("UNVERIFIED"));
    }

    #[test]
    fn matches_formula_checks_all_dimensions() {
        let mut r = dummy();
        r.counts = r.formula;
        assert!(r.matches_formula());
        r.counts.prop_hops += 1;
        assert!(!r.matches_formula());
    }

    #[test]
    fn padded_runs_allow_fewer_blocks() {
        let mut r = dummy();
        r.counts = r.formula;
        r.counts.trans_blocks -= 10;
        assert!(!r.matches_formula());
        r.padded = true;
        assert!(r.matches_formula());
    }
}
