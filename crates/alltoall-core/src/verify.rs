//! Post-run verification of exchange correctness.
//!
//! After all-to-all personalized exchange, node `i` must hold exactly the
//! blocks `B[j, i]` for every `j ≠ i` — one block from every other node,
//! all destined to `i`. These checks are run by every test and by the
//! public API after each exchange.

use torus_topology::{NodeId, TorusShape};

use crate::block::Buffers;
use crate::exec::ExchangeError;

/// Verifies a *full* exchange: every node ends with one block from every
/// other node of the torus.
pub fn verify_full_exchange<P: Clone>(
    shape: &TorusShape,
    buffers: &Buffers<P>,
) -> Result<(), ExchangeError> {
    let n = shape.num_nodes();
    let expected: Vec<Vec<NodeId>> = (0..n)
        .map(|d| (0..n).filter(|&s| s != d).collect())
        .collect();
    verify_delivery(buffers, &expected)
}

/// Verifies delivery against an explicit expectation: `expected[node]`
/// lists the sources whose block must have arrived at `node` (in any
/// order). Nodes not covered by the expectation must hold nothing.
pub fn verify_delivery<P: Clone>(
    buffers: &Buffers<P>,
    expected: &[Vec<NodeId>],
) -> Result<(), ExchangeError> {
    if buffers.num_nodes() < expected.len() {
        return Err(ExchangeError::VerificationFailed(format!(
            "{} nodes in buffers, {} expected",
            buffers.num_nodes(),
            expected.len()
        )));
    }
    for node in 0..buffers.num_nodes() as NodeId {
        let held = buffers.node(node);
        for b in held {
            if b.dst != node {
                return Err(ExchangeError::VerificationFailed(format!(
                    "node {node} holds a block destined for {} (from {})",
                    b.dst, b.src
                )));
            }
        }
        let want = expected
            .get(node as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[]);
        let mut got: Vec<NodeId> = held.iter().map(|b| b.src).collect();
        got.sort_unstable();
        let mut want_sorted = want.to_vec();
        want_sorted.sort_unstable();
        if got != want_sorted {
            // Produce a compact diagnosis.
            let missing: Vec<NodeId> = want_sorted
                .iter()
                .filter(|s| !got.contains(s))
                .copied()
                .take(5)
                .collect();
            let extra: Vec<NodeId> = got
                .iter()
                .filter(|s| !want_sorted.contains(s))
                .copied()
                .take(5)
                .collect();
            return Err(ExchangeError::VerificationFailed(format!(
                "node {node}: got {} blocks, want {}; missing sources {missing:?}, \
                 unexpected sources {extra:?}",
                got.len(),
                want_sorted.len()
            )));
        }
    }
    Ok(())
}

/// Degraded-mode variant of [`verify_delivery`]: checks that every
/// *survivor* holds exactly the blocks from its expected **live** sources
/// and that quarantined nodes hold nothing. Survivor→survivor delivery
/// stays bit-exact under degradation; blocks with a dead endpoint are the
/// only permitted casualties.
pub fn verify_delivery_degraded<P: Clone>(
    buffers: &Buffers<P>,
    expected: &[Vec<NodeId>],
    dead: &[NodeId],
) -> Result<(), ExchangeError> {
    for &d in dead {
        if (d as usize) < buffers.num_nodes() && !buffers.node(d).is_empty() {
            return Err(ExchangeError::VerificationFailed(format!(
                "quarantined node {d} still holds {} blocks",
                buffers.node(d).len()
            )));
        }
    }
    let degraded: Vec<Vec<NodeId>> = expected
        .iter()
        .enumerate()
        .map(|(node, sources)| {
            if dead.contains(&(node as NodeId)) {
                Vec::new()
            } else {
                sources
                    .iter()
                    .filter(|s| !dead.contains(s))
                    .copied()
                    .collect()
            }
        })
        .collect();
    verify_delivery(buffers, &degraded)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    fn complete_buffers(n: u32) -> Buffers {
        let mut bufs = Buffers::empty(n as usize);
        for d in 0..n {
            for s in 0..n {
                if s != d {
                    bufs.node_mut(d).push(Block::new(s, d));
                }
            }
        }
        bufs
    }

    #[test]
    fn accepts_complete_exchange() {
        let shape = TorusShape::new_2d(2, 2).unwrap();
        let bufs = complete_buffers(4);
        verify_full_exchange(&shape, &bufs).unwrap();
    }

    #[test]
    fn rejects_misdelivered_block() {
        let shape = TorusShape::new_2d(2, 2).unwrap();
        let mut bufs = complete_buffers(4);
        // plant a block destined elsewhere
        bufs.node_mut(0).push(Block::new(1, 2));
        let err = verify_full_exchange(&shape, &bufs).unwrap_err();
        assert!(matches!(err, ExchangeError::VerificationFailed(_)));
        assert!(err.to_string().contains("destined for 2"));
    }

    #[test]
    fn rejects_missing_block() {
        let shape = TorusShape::new_2d(2, 2).unwrap();
        let mut bufs = complete_buffers(4);
        bufs.node_mut(3).pop();
        let err = verify_full_exchange(&shape, &bufs).unwrap_err();
        assert!(err.to_string().contains("missing sources"));
    }

    #[test]
    fn rejects_duplicate_block() {
        let shape = TorusShape::new_2d(2, 2).unwrap();
        let mut bufs = complete_buffers(4);
        let dup = bufs.node(1)[0].clone();
        bufs.node_mut(1).push(dup);
        assert!(verify_full_exchange(&shape, &bufs).is_err());
    }

    #[test]
    fn degraded_accepts_survivor_completion() {
        let n = 4u32;
        let dead = [2u32];
        let mut bufs = Buffers::empty(n as usize);
        for d in 0..n {
            if dead.contains(&d) {
                continue;
            }
            for s in 0..n {
                if s != d && !dead.contains(&s) {
                    bufs.node_mut(d).push(Block::new(s, d));
                }
            }
        }
        let expected: Vec<Vec<NodeId>> = (0..n)
            .map(|d| (0..n).filter(|&s| s != d).collect())
            .collect();
        verify_delivery_degraded(&bufs, &expected, &dead).unwrap();
        // The full expectation must fail (dead sources are missing)…
        assert!(verify_delivery(&bufs, &expected).is_err());
        // …and a lingering block at the dead node is rejected.
        bufs.node_mut(2).push(Block::new(0, 2));
        let err = verify_delivery_degraded(&bufs, &expected, &dead).unwrap_err();
        assert!(err.to_string().contains("quarantined node 2"));
    }

    #[test]
    fn degraded_rejects_missing_survivor_block() {
        let mut bufs: Buffers = Buffers::empty(3);
        bufs.node_mut(0).push(Block::new(1, 0));
        let expected = vec![vec![1, 2], vec![0, 2], vec![0, 1]];
        // Node 2 dead: node 0 should hold exactly {1} — ok.
        verify_delivery_degraded(&bufs, &expected, &[2]).unwrap_err(); // node 1 empty
        bufs.node_mut(1).push(Block::new(0, 1));
        verify_delivery_degraded(&bufs, &expected, &[2]).unwrap();
    }

    #[test]
    fn delivery_with_partial_expectation() {
        let mut bufs: Buffers = Buffers::empty(3);
        bufs.node_mut(0).push(Block::new(2, 0));
        verify_delivery(&bufs, &[vec![2], vec![], vec![]]).unwrap();
        // node 2 beyond the expectation list must be empty: here it is.
        verify_delivery(&bufs, &[vec![2]]).unwrap();
        // but a block on an uncovered node fails
        bufs.node_mut(2).push(Block::new(0, 2));
        assert!(verify_delivery(&bufs, &[vec![2]]).is_err());
    }
}
