//! Static schedules: the communication pattern as a first-class artifact.
//!
//! The paper highlights that *"destinations remain fixed over a larger
//! number of steps"* — the send pattern of each phase is a static
//! permutation, independent of buffer contents. [`StaticSchedule`]
//! materializes that pattern (per phase, per step, per node: destination
//! and channel direction), which makes it:
//!
//! * **checkable** — `destinations_fixed_within_phases` proves the claim
//!   mechanically, and `validate` replays every step through the
//!   contention-checking engine with dummy payloads;
//! * **portable** — the schedule serializes with `serde`, so a runtime
//!   system (e.g. an MPI progress engine) can precompile it offline and
//!   execute it without this crate.

use serde::{Deserialize, Serialize};
use torus_sim::{Engine, SimError, Transmission};
use torus_topology::{NodeId, Sign, TorusShape};

use crate::dirsched::DirectionSchedule;

/// One node's send in one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticSend {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Dimension travelled.
    pub dim: u8,
    /// `+1` for the positive ring direction, `-1` for negative.
    pub sign: i8,
    /// Hop count (4 in scatter phases, 2 in phase n+1, 1 in phase n+2).
    pub hops: u8,
}

/// One step: the set of concurrent sends.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticStep {
    /// Concurrent sends (at most one per source node).
    pub sends: Vec<StaticSend>,
}

/// One phase: a name and its steps.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticPhase {
    /// `"phase 3"` etc., 1-based like the paper.
    pub name: String,
    /// Steps in order.
    pub steps: Vec<StaticStep>,
}

/// The full `n + 2`-phase static schedule for one canonical shape.
///
/// ```
/// use alltoall_core::StaticSchedule;
/// use torus_topology::TorusShape;
///
/// let shape = TorusShape::new_2d(8, 8).unwrap();
/// let sched = StaticSchedule::generate(&shape);
/// sched.validate(&shape).unwrap();           // contention-free
/// assert_eq!(sched.total_steps(), 6);        // 2(8/4 + 1)
/// assert!(sched.destinations_fixed_within_phases());
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticSchedule {
    /// Canonical dimension extents.
    pub dims: Vec<u32>,
    /// Phases in execution order.
    pub phases: Vec<StaticPhase>,
}

impl StaticSchedule {
    /// Generates the schedule for a canonical shape (see
    /// [`DirectionSchedule::new`] for the shape requirements).
    ///
    /// Scatter steps list **every** node as a sender (a node with nothing
    /// left to forward sends an empty message, as the paper allows); the
    /// executor's dynamic block selection decides actual volumes.
    pub fn generate(shape: &TorusShape) -> Self {
        let sched = DirectionSchedule::new(shape);
        let n = shape.ndims();
        let scatter_steps = sched.steps_per_scatter_phase();
        let mut phases = Vec::with_capacity(n + 2);

        // Phases 1..n: fixed destination per node per phase. A node whose
        // phase dimension has extent a_δ participates only in the first
        // a_δ/4 − 1 steps and idles afterwards ("idle or send empty
        // messages" — Section 3.2); a node whose subtorus ring is a single
        // node (a_δ = 4) never scatters in that phase at all.
        for p in 0..n {
            let mut steps = Vec::with_capacity(scatter_steps as usize);
            for s in 1..=scatter_steps {
                let sends: Vec<StaticSend> = shape
                    .iter_coords()
                    .filter_map(|c| {
                        let dir = sched.scatter_dirs(&c)[p];
                        let active_steps = shape.extent(dir.dim()) / 4 - 1;
                        if s > active_steps {
                            return None; // shorter dimension: node idles
                        }
                        let dst = shape.shift(&c, dir, 4);
                        Some(StaticSend {
                            src: shape.index_of(&c),
                            dst: shape.index_of(&dst),
                            dim: dir.dim,
                            sign: if dir.sign == Sign::Plus { 1 } else { -1 },
                            hops: 4,
                        })
                    })
                    .collect();
                steps.push(StaticStep { sends });
            }
            phases.push(StaticPhase {
                name: format!("phase {}", p + 1),
                steps,
            });
        }

        // Phase n+1: distance-2 exchanges, per-node dimension order.
        let mut steps = Vec::with_capacity(n);
        for j in 0..n {
            let sends: Vec<StaticSend> = shape
                .iter_coords()
                .map(|c| {
                    let dim = sched.submesh_dim_order(&c)[j];
                    let sign = DirectionSchedule::distance2_sign(&c, dim);
                    let dst = shape.shift(&c, torus_topology::Direction::new(dim, sign), 2);
                    StaticSend {
                        src: shape.index_of(&c),
                        dst: shape.index_of(&dst),
                        dim: dim as u8,
                        sign: if sign == Sign::Plus { 1 } else { -1 },
                        hops: 2,
                    }
                })
                .collect();
            steps.push(StaticStep { sends });
        }
        phases.push(StaticPhase {
            name: format!("phase {}", n + 1),
            steps,
        });

        // Phase n+2: distance-1 exchanges, fixed dimension order.
        let mut steps = Vec::with_capacity(n);
        for j in 0..n {
            let sends: Vec<StaticSend> = shape
                .iter_coords()
                .map(|c| {
                    let sign = DirectionSchedule::distance1_sign(&c, j);
                    let dst = shape.shift(&c, torus_topology::Direction::new(j, sign), 1);
                    StaticSend {
                        src: shape.index_of(&c),
                        dst: shape.index_of(&dst),
                        dim: j as u8,
                        sign: if sign == Sign::Plus { 1 } else { -1 },
                        hops: 1,
                    }
                })
                .collect();
            steps.push(StaticStep { sends });
        }
        phases.push(StaticPhase {
            name: format!("phase {}", n + 2),
            steps,
        });

        Self {
            dims: shape.dims().to_vec(),
            phases,
        }
    }

    /// Replays every step through the contention-checking engine (unit
    /// blocks). Returns the first violation, if any.
    pub fn validate(&self, shape: &TorusShape) -> Result<(), SimError> {
        assert_eq!(shape.dims(), &self.dims[..], "schedule/shape mismatch");
        let mut engine = Engine::new(shape, cost_model::CommParams::unit());
        for phase in &self.phases {
            for step in &phase.steps {
                let txs: Vec<Transmission> = step
                    .sends
                    .iter()
                    .map(|s| {
                        let dir = torus_topology::Direction::new(
                            s.dim as usize,
                            if s.sign > 0 { Sign::Plus } else { Sign::Minus },
                        );
                        Transmission::along_ring(
                            shape,
                            &shape.coord_of(s.src),
                            dir,
                            s.hops as u32,
                            1,
                        )
                    })
                    .collect();
                engine.execute_step(&txs)?;
            }
        }
        Ok(())
    }

    /// The paper's "destinations remain fixed over a larger number of
    /// steps" property: within each *scatter* phase (the first `n`, which
    /// run `a1/4 − 1` steps each), every node's destination is identical
    /// across all steps. The submesh phases move along a different
    /// dimension every step by design.
    pub fn destinations_fixed_within_phases(&self) -> bool {
        let n = self.dims.len();
        self.phases.iter().take(n).all(|phase| {
            // Every node that sends in a phase always sends to the same
            // destination; shorter-dimension nodes may stop early (idle),
            // but never switch targets.
            let mut dest: std::collections::HashMap<NodeId, NodeId> =
                std::collections::HashMap::new();
            phase.steps.iter().all(|step| {
                step.sends
                    .iter()
                    .all(|s| *dest.entry(s.src).or_insert(s.dst) == s.dst)
            })
        })
    }

    /// Total number of steps (equals `n(a1/4 + 1)` for canonical shapes).
    pub fn total_steps(&self) -> usize {
        self.phases.iter().map(|p| p.steps.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched_for(dims: &[u32]) -> (TorusShape, StaticSchedule) {
        let shape = TorusShape::new(dims).unwrap();
        let s = StaticSchedule::generate(&shape);
        (shape, s)
    }

    #[test]
    fn step_count_matches_formula() {
        for dims in [&[8u32, 8][..], &[12, 12], &[16, 8], &[8, 8, 8], &[12, 8, 4]] {
            let (_, s) = sched_for(dims);
            let n = dims.len();
            let a1 = *dims.iter().max().unwrap();
            assert_eq!(
                s.total_steps() as u32,
                n as u32 * (a1 / 4 + 1),
                "dims {dims:?}"
            );
            assert_eq!(s.phases.len(), n + 2);
        }
    }

    #[test]
    fn destinations_fixed_claim_holds() {
        for dims in [&[12u32, 12][..], &[16, 8], &[8, 8, 8]] {
            let (_, s) = sched_for(dims);
            assert!(s.destinations_fixed_within_phases(), "dims {dims:?}");
        }
    }

    #[test]
    fn schedule_validates_contention_free() {
        for dims in [&[8u32, 8][..], &[12, 8], &[8, 8, 8], &[4, 4, 4, 4]] {
            let (shape, s) = sched_for(dims);
            s.validate(&shape)
                .unwrap_or_else(|e| panic!("{dims:?}: {e}"));
        }
    }

    #[test]
    fn scatter_sends_are_permutations() {
        // In every step each node sends exactly once and receives exactly
        // once (the one-port property at schedule level).
        let (shape, s) = sched_for(&[12, 12]);
        for phase in &s.phases {
            for step in &phase.steps {
                let mut srcs: Vec<NodeId> = step.sends.iter().map(|x| x.src).collect();
                let mut dsts: Vec<NodeId> = step.sends.iter().map(|x| x.dst).collect();
                srcs.sort_unstable();
                dsts.sort_unstable();
                let all: Vec<NodeId> = (0..shape.num_nodes()).collect();
                assert_eq!(srcs, all);
                assert_eq!(dsts, all);
            }
        }
    }

    #[test]
    fn rectangular_idle_nodes_are_omitted() {
        // On an 8x4 torus, nodes scattering along the extent-4 dimension
        // have a single-node subtorus ring: they never send in that phase.
        let (shape, s) = sched_for(&[8, 4]);
        s.validate(&shape).unwrap();
        // phase 1 has 8/4-1 = 1 step; only the dim-0 scatterers send.
        let step = &s.phases[0].steps[0];
        assert!(step.sends.len() < shape.num_nodes() as usize);
        assert!(step.sends.iter().all(|x| x.dim == 0));
        assert!(s.destinations_fixed_within_phases());
    }

    #[test]
    fn serde_roundtrip() {
        let (_, s) = sched_for(&[8, 8]);
        let json = serde_json::to_string(&s).unwrap();
        // The offline serde_json stub cannot parse; the round-trip only
        // holds against the real crate.
        if serde_json::from_str::<serde_json::Value>("{}").is_err() {
            assert!(json.starts_with('{') && json.ends_with('}'));
            return;
        }
        let back: StaticSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn exchange_pairs_in_submesh_phases() {
        // Phases n+1 and n+2 are pairwise exchanges: if u sends to v,
        // v sends to u in the same step.
        let (shape, s) = sched_for(&[8, 8, 8]);
        let n = shape.ndims();
        for phase in &s.phases[n..] {
            for step in &phase.steps {
                let map: std::collections::HashMap<NodeId, NodeId> =
                    step.sends.iter().map(|x| (x.src, x.dst)).collect();
                for (u, v) in &map {
                    assert_eq!(map.get(v), Some(u), "step must pair {u} <-> {v}");
                }
            }
        }
    }
}
