//! Degraded-mode schedule repair: survivor replanning around dead nodes.
//!
//! The `n + 2`-phase schedule assumes a fault-free torus. When nodes are
//! quarantined mid-run (a kill fault, or a link whose retry budget is
//! exhausted), the remaining schedule must be *repaired* rather than
//! abandoned: survivors still owe each other their blocks, and the paper's
//! structure — ring scatters, submesh exchanges — mostly survives with
//! local surgery:
//!
//! * **Scatter phases** contract their within-group rings around dead
//!   members ([`torus_topology::ring::next_alive`]): the nearest live
//!   successor becomes the new ring neighbor, and forwarded blocks consume
//!   as many 4-stride shifts as the contracted link spans. Blocks that
//!   needed a *dead* ring position as their scatter target park for the
//!   fallback phase instead.
//! * **Distance-2 / distance-1 phases** have fixed pairwise partners; a
//!   send whose partner is dead parks its selected blocks for fallback.
//! * **Blocks with a dead endpoint** (source or final destination) are
//!   dropped everywhere — a survivor must end holding blocks from exactly
//!   the live sources — and accounted in [`DroppedBlock`] records.
//! * A **fallback phase** of direct pairwise exchanges is appended for
//!   every parked block: greedy rounds in which each holder sends at most
//!   one message and each destination receives at most one, preserving the
//!   runtime's one-sender-per-destination invariant. (Channel contention
//!   freedom is *not* preserved for these steps — see DESIGN.md §3a.3.)
//!
//! Because kills are pinned to `(step, node)` — never rate-sampled — the
//! set of dead nodes per step is a pure function of the fault plan, so the
//! whole repair is computed *before* execution by serially simulating the
//! base plan under the repair rules. The output is an explicit per-step
//! manifest ([`RepairedSchedule`]): for every step, who sends to whom and
//! exactly which `(src, dst)` blocks they fold in. A threaded runtime then
//! needs no shift bookkeeping or selection rules — and its behavior is
//! bitwise independent of the worker count.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::Serialize;
use torus_topology::{detour_hops, next_alive, NodeId, Sign};

use crate::block::{Block, Buffers};
use crate::observer::PhaseKind;
use crate::steps::{PlannedStep, StepKind, StepPlan};

/// A block removed from the exchange because its source or destination
/// was quarantined.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct DroppedBlock {
    /// Originating node (canonical id).
    pub src: NodeId,
    /// Final destination node (canonical id).
    pub dst: NodeId,
    /// Node whose buffer held the block when it was dropped.
    pub holder: NodeId,
    /// Global step index at which the drop takes effect.
    pub step: usize,
}

/// One node's send in one repaired step: destination plus the exact
/// blocks to fold in. `pairs` is sorted, so executors match blocks with a
/// binary search on `(src, dst)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairedSend {
    /// Receiving node.
    pub dst: NodeId,
    /// Dimension travelled (`0` for fallback steps, which are not
    /// constrained to a single dimension).
    pub dim: u8,
    /// Ring direction (`0` for fallback steps).
    pub sign: i8,
    /// Physical hop count of the message. Contracted scatter links span
    /// `4 × strides` hops; fallback sends use the shortest live detour.
    pub hops: u32,
    /// 4-stride ring shifts this link consumes (scatter steps only;
    /// `> 1` means the link was contracted past dead members, `0` for
    /// distance and fallback steps).
    pub strides: u32,
    /// Sorted `(src, dst)` identities of the blocks sent.
    pub pairs: Vec<(NodeId, NodeId)>,
}

/// One repaired step: per-node drop lists (quarantine taking effect at
/// this step's entry) followed by the step's sends.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RepairedStep {
    /// Nominal hop count of the base step (4 / 2 / 1; 0 for fallback).
    pub hops: u32,
    /// Indexed by node id: the node's send this step, `None` if it idles.
    pub sends: Vec<Option<RepairedSend>>,
    /// Blocks each holder must discard at step entry, sorted by holder;
    /// each pair list sorted. Non-empty only at quarantine steps.
    pub drops: Vec<(NodeId, Vec<(NodeId, NodeId)>)>,
}

/// One repaired phase: the base phases with surgically altered steps,
/// plus (when needed) a trailing [`PhaseKind::Fallback`] phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairedPhase {
    /// Phase label (base phases keep their names; `"fallback"` for the
    /// appended phase).
    pub name: String,
    /// Phase kind, [`PhaseKind::Fallback`] for the appended phase.
    pub kind: PhaseKind,
    /// Steps in execution order.
    pub steps: Vec<RepairedStep>,
    /// Whether the inter-phase rearrangement follows (carried over from
    /// the base plan; `false` for the fallback phase).
    pub rearrange_after: bool,
}

/// Why schedule repair failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairError {
    /// A quarantined node id is outside the plan's shape.
    UnknownNode {
        /// The offending node id.
        node: NodeId,
    },
    /// The dead set disconnects a fallback pair: no live path exists.
    Disconnected {
        /// Holder of the stranded blocks.
        from: NodeId,
        /// Their destination.
        to: NodeId,
    },
    /// Repair produced two senders for one destination in one step.
    /// This indicates a planner bug, not a property of the input.
    Contention {
        /// Global step index.
        step: usize,
        /// The doubly-targeted destination.
        dst: NodeId,
    },
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::UnknownNode { node } => write!(f, "quarantined node {node} is not in the shape"),
            Self::Disconnected { from, to } => {
                write!(f, "dead set disconnects fallback pair {from} -> {to}")
            }
            Self::Contention { step, dst } => {
                write!(
                    f,
                    "repair bug: two senders target node {dst} in step {step}"
                )
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// The repaired schedule: explicit per-step manifests plus the
/// bookkeeping a degraded-mode report needs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RepairedSchedule {
    /// Base phases (repaired) plus an optional trailing fallback phase.
    pub phases: Vec<RepairedPhase>,
    /// `(node, quarantine step)` sorted by node; steps are clamped to
    /// `base_steps` (a node quarantined there is dead for fallback only).
    pub dead: Vec<(NodeId, usize)>,
    /// Every dropped block, sorted by `(src, dst)` (each ordered pair
    /// exists at most once in an exchange).
    pub dropped: Vec<DroppedBlock>,
    /// Distinct scatter rings that contracted around dead members.
    pub contracted_rings: u64,
    /// Scatter sends spanning more than one 4-stride link.
    pub contracted_sends: u64,
    /// Steps in the appended fallback phase.
    pub fallback_steps: u64,
    /// Blocks delivered by fallback sends (in-place recoveries excluded).
    pub fallback_blocks: u64,
    /// Messages the *fault-free* base plan would send (one per scheduled
    /// send, empty or not) — the baseline for overhead accounting.
    pub base_messages: u64,
    /// Per-block transmission counts of the fault-free base plan, sorted
    /// by `(src, dst)`: how many times each block crosses the wire.
    pub base_tx: Vec<((NodeId, NodeId), u64)>,
    /// Number of steps in the base plan (fallback steps start here).
    pub base_steps: usize,
}

impl RepairedSchedule {
    /// Repairs `plan` around `quarantine`: node → global step index at
    /// which the node is dead (0 = dead from the start; values past the
    /// end of the base plan are clamped, meaning dead for the fallback
    /// phase only).
    ///
    /// `seeded` is the authoritative initial buffer state (canonical
    /// ids, correct shift vectors) — e.g.
    /// [`PreparedExchange::seeded_blocks`](crate::prepared::PreparedExchange::seeded_blocks).
    /// An empty quarantine yields a schedule equivalent to the base plan.
    pub fn plan(
        plan: &StepPlan,
        seeded: &[Vec<Block<()>>],
        quarantine: &BTreeMap<NodeId, usize>,
    ) -> Result<Self, RepairError> {
        let shape = plan.shape();
        let nn = shape.num_nodes() as usize;
        let base_steps: usize = plan.total_steps();

        let mut qstep: Vec<Option<usize>> = vec![None; nn];
        for (&node, &q) in quarantine {
            if (node as usize) >= nn {
                return Err(RepairError::UnknownNode { node });
            }
            qstep[node as usize] = Some(q.min(base_steps));
        }
        let mut by_step: BTreeMap<usize, Vec<NodeId>> = BTreeMap::new();
        for (v, q) in qstep.iter().enumerate() {
            if let Some(q) = q {
                by_step.entry(*q).or_default().push(v as NodeId);
            }
        }
        let alive_at = |v: NodeId, g: usize| match qstep[v as usize] {
            Some(q) => g < q,
            None => true,
        };

        // --- Fault-free baseline (messages + per-block transmissions). ---
        let mut base_tx: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
        let mut base_messages = 0u64;
        {
            let mut bufs = Buffers::from_vecs(seeded.to_vec());
            for phase in plan.phases() {
                for step in &phase.steps {
                    let mut deliveries: Vec<(NodeId, Vec<Block<()>>)> = Vec::new();
                    for v in 0..nn as NodeId {
                        let Some(send) = step.sends[v as usize] else {
                            continue;
                        };
                        base_messages += 1;
                        let mut sent = bufs.drain_matching(v, |b| plan.selects(step, v, b));
                        for b in &sent {
                            *base_tx.entry((b.src, b.dst)).or_insert(0) += 1;
                        }
                        if let Some(p) = StepPlan::shift_decrement(step) {
                            for b in &mut sent {
                                b.shifts[p] -= 1;
                            }
                        }
                        deliveries.push((send.dst, sent));
                    }
                    for (dst, blocks) in deliveries {
                        bufs.deliver(dst, blocks);
                    }
                }
            }
        }

        // --- Degraded simulation producing the manifests. ---
        let coords: Vec<torus_topology::Coord> = shape.iter_coords().collect();
        let mut bufs = Buffers::from_vecs(seeded.to_vec());
        let mut parked: Vec<(NodeId, Block<()>)> = Vec::new();
        let mut dropped: Vec<DroppedBlock> = Vec::new();
        let mut contracted_sends = 0u64;
        let mut contracted_ring_ids: BTreeSet<(usize, NodeId)> = BTreeSet::new();
        let mut out_phases: Vec<RepairedPhase> = Vec::new();
        let mut g = 0usize;

        for (pi, phase) in plan.phases().iter().enumerate() {
            let mut out_steps = Vec::with_capacity(phase.steps.len());
            for st in &phase.steps {
                let drops = apply_quarantine(
                    g,
                    by_step.get(&g).map(|v| v.as_slice()).unwrap_or(&[]),
                    nn,
                    &mut bufs,
                    &mut parked,
                    &mut dropped,
                );

                let mut sends: Vec<Option<RepairedSend>> = vec![None; nn];
                let mut deliveries: Vec<(NodeId, Vec<Block<()>>)> = Vec::new();
                let mut expect: Vec<Option<NodeId>> = vec![None; nn];
                for v in 0..nn as NodeId {
                    if !alive_at(v, g) {
                        continue;
                    }
                    let Some(base) = st.sends[v as usize] else {
                        continue;
                    };
                    let repaired = match st.kind {
                        StepKind::Scatter { phase: p } => {
                            let dim = base.dim as usize;
                            let k = shape.extent(dim);
                            let cv = coords[v as usize];
                            let sign = if base.sign > 0 {
                                Sign::Plus
                            } else {
                                Sign::Minus
                            };
                            let node_at = |pos: u32| shape.index_of(&cv.with(dim, pos)) as NodeId;
                            match next_alive(cv[dim], 4, k, sign, |pos| alive_at(node_at(pos), g)) {
                                // Sole survivor of its ring: nothing to
                                // scatter to; leftovers park at phase end.
                                None => None,
                                Some((wpos, s)) => {
                                    let s8 = s as u8;
                                    let mut sent = bufs.drain_matching(v, |b| b.shifts[p] >= s8);
                                    for b in &mut sent {
                                        b.shifts[p] -= s8;
                                    }
                                    if s > 1 {
                                        contracted_sends += 1;
                                        // Smallest ring position identifies
                                        // the ring (node ids are monotone in
                                        // a single coordinate).
                                        contracted_ring_ids.insert((pi, node_at(cv[dim] % 4)));
                                    }
                                    Some((node_at(wpos), 4 * s, s, sent))
                                }
                            }
                        }
                        StepKind::Distance2 { .. } | StepKind::Distance1 { .. } => {
                            let selected = bufs.drain_matching(v, |b| plan.selects(st, v, b));
                            if alive_at(base.dst, g) {
                                Some((base.dst, base.hops as u32, 0, selected))
                            } else {
                                // Dead submesh partner: the affected blocks
                                // go to the direct pairwise fallback.
                                parked.extend(selected.into_iter().map(|b| (v, b)));
                                None
                            }
                        }
                    };
                    if let Some((dst, hops, strides, sent)) = repaired {
                        if let Some(prev) = expect[dst as usize].replace(v) {
                            debug_assert_ne!(prev, v);
                            return Err(RepairError::Contention { step: g, dst });
                        }
                        let mut pairs: Vec<(NodeId, NodeId)> =
                            sent.iter().map(|b| (b.src, b.dst)).collect();
                        pairs.sort_unstable();
                        sends[v as usize] = Some(RepairedSend {
                            dst,
                            dim: base.dim,
                            sign: base.sign,
                            hops,
                            strides,
                            pairs,
                        });
                        deliveries.push((dst, sent));
                    }
                }
                for (dst, blocks) in deliveries {
                    bufs.deliver(dst, blocks);
                }
                out_steps.push(RepairedStep {
                    hops: plan_step_hops(st),
                    sends,
                    drops,
                });
                g += 1;
            }

            // Safety sweep: a scatter phase must leave no block still
            // owing shifts along its dimension — anything stranded by
            // contraction gaps parks for fallback. (Dead nodes' buffers
            // are already empty.)
            if let PhaseKind::Scatter { index: p } = phase.kind {
                for v in 0..nn as NodeId {
                    let stranded = bufs.drain_matching(v, |b| b.shifts[p] > 0);
                    parked.extend(stranded.into_iter().map(|b| (v, b)));
                }
            }
            out_phases.push(RepairedPhase {
                name: phase.name.clone(),
                kind: phase.kind,
                steps: out_steps,
                rearrange_after: phase.rearrange_after,
            });
        }

        // Quarantine events clamped to the end of the base plan (dead for
        // the fallback phase only).
        let end_drops = apply_quarantine(
            base_steps,
            by_step
                .get(&base_steps)
                .map(|v| v.as_slice())
                .unwrap_or(&[]),
            nn,
            &mut bufs,
            &mut parked,
            &mut dropped,
        );

        // Final sweep: any block not at its destination parks.
        for v in 0..nn as NodeId {
            let misplaced = bufs.drain_matching(v, |b| b.dst != v);
            parked.extend(misplaced.into_iter().map(|b| (v, b)));
        }

        // --- Fallback phase: direct pairwise delivery of parked blocks. ---
        let dead_set: Vec<NodeId> = qstep
            .iter()
            .enumerate()
            .filter_map(|(v, q)| q.map(|_| v as NodeId))
            .collect();
        let mut groups: BTreeMap<(NodeId, NodeId), Vec<Block<()>>> = BTreeMap::new();
        for (holder, b) in parked {
            if b.dst == holder {
                // Already at its destination — delivered in place.
                bufs.deliver(holder, vec![b]);
            } else {
                groups.entry((holder, b.dst)).or_default().push(b);
            }
        }
        let fallback_blocks: u64 = groups.values().map(|v| v.len() as u64).sum();
        type ParkedGroup = ((NodeId, NodeId), Vec<Block<()>>);
        let mut remaining: Vec<ParkedGroup> = groups.into_iter().collect();
        let mut fb_steps: Vec<RepairedStep> = Vec::new();
        let mut carried_drops = Some(end_drops);
        while !remaining.is_empty() {
            let mut used_src: BTreeSet<NodeId> = BTreeSet::new();
            let mut used_dst: BTreeSet<NodeId> = BTreeSet::new();
            let mut sends: Vec<Option<RepairedSend>> = vec![None; nn];
            let mut next = Vec::new();
            for ((holder, dst), blocks) in remaining {
                if used_src.contains(&holder) || used_dst.contains(&dst) {
                    next.push(((holder, dst), blocks));
                    continue;
                }
                used_src.insert(holder);
                used_dst.insert(dst);
                // A dead holder still routes its salvaged blocks out (the
                // salvage assumption, DESIGN.md §3a.3), so it is excluded
                // from its own detour's obstacle set.
                let obstacles: Vec<NodeId> =
                    dead_set.iter().copied().filter(|&d| d != holder).collect();
                let hops = detour_hops(shape, holder, dst, &obstacles).ok_or(
                    RepairError::Disconnected {
                        from: holder,
                        to: dst,
                    },
                )?;
                let mut pairs: Vec<(NodeId, NodeId)> =
                    blocks.iter().map(|b| (b.src, b.dst)).collect();
                pairs.sort_unstable();
                bufs.deliver(dst, blocks);
                sends[holder as usize] = Some(RepairedSend {
                    dst,
                    dim: 0,
                    sign: 0,
                    hops,
                    strides: 0,
                    pairs,
                });
            }
            fb_steps.push(RepairedStep {
                hops: 0,
                sends,
                drops: carried_drops.take().unwrap_or_default(),
            });
            remaining = next;
        }
        // Quarantine at the very end with nothing to deliver still needs a
        // carrier step for its drops.
        if let Some(drops) = carried_drops.take() {
            if !drops.is_empty() {
                fb_steps.push(RepairedStep {
                    hops: 0,
                    sends: vec![None; nn],
                    drops,
                });
            }
        }
        let fallback_steps = fb_steps.len() as u64;
        if !fb_steps.is_empty() {
            out_phases.push(RepairedPhase {
                name: "fallback".to_string(),
                kind: PhaseKind::Fallback,
                steps: fb_steps,
                rearrange_after: false,
            });
        }

        // Wait until drops/parks settle before moving blocks back: every
        // dead node must end empty, every survivor clean.
        debug_assert!(dead_set.iter().all(|&d| bufs.node(d).is_empty()));

        dropped.sort_unstable_by_key(|d| (d.src, d.dst));
        let dead: Vec<(NodeId, usize)> = qstep
            .iter()
            .enumerate()
            .filter_map(|(v, q)| q.map(|q| (v as NodeId, q)))
            .collect();
        Ok(Self {
            phases: out_phases,
            dead,
            dropped,
            contracted_rings: contracted_ring_ids.len() as u64,
            contracted_sends,
            fallback_steps,
            fallback_blocks,
            base_messages,
            base_tx: base_tx.into_iter().collect(),
            base_steps,
        })
    }

    /// The quarantined node ids, sorted.
    pub fn dead_nodes(&self) -> Vec<NodeId> {
        self.dead.iter().map(|&(v, _)| v).collect()
    }

    /// Total number of steps, fallback included.
    pub fn total_steps(&self) -> usize {
        self.phases.iter().map(|p| p.steps.len()).sum()
    }

    /// Reference interpreter: replays the repaired schedule on `bufs`
    /// sequentially (drop → send-by-manifest → deliver). Threaded
    /// executions must produce the same final buffer state.
    pub fn execute_serial<P: Clone>(&self, bufs: &mut Buffers<P>) {
        for phase in &self.phases {
            for step in &phase.steps {
                for (holder, pairs) in &step.drops {
                    bufs.drain_matching(*holder, |b| pairs.binary_search(&(b.src, b.dst)).is_ok());
                }
                let mut deliveries: Vec<(NodeId, Vec<Block<P>>)> = Vec::new();
                for v in 0..bufs.num_nodes() as NodeId {
                    let Some(send) = &step.sends[v as usize] else {
                        continue;
                    };
                    let sent = bufs
                        .drain_matching(v, |b| send.pairs.binary_search(&(b.src, b.dst)).is_ok());
                    debug_assert_eq!(sent.len(), send.pairs.len());
                    deliveries.push((send.dst, sent));
                }
                for (dst, blocks) in deliveries {
                    bufs.deliver(dst, blocks);
                }
            }
        }
    }
}

/// Nominal hop count of a base step (matches [`PlannedStep::hops`]).
fn plan_step_hops(st: &PlannedStep) -> u32 {
    st.hops
}

/// Processes the quarantine events firing at step `g`: drops every block
/// whose source or destination just died (wherever it is held, parked
/// included), then evacuates the dead nodes' surviving-transit blocks to
/// the parked set. Returns the per-holder drop lists for the manifest.
fn apply_quarantine(
    g: usize,
    dying: &[NodeId],
    nn: usize,
    bufs: &mut Buffers<()>,
    parked: &mut Vec<(NodeId, Block<()>)>,
    dropped: &mut Vec<DroppedBlock>,
) -> Vec<(NodeId, Vec<(NodeId, NodeId)>)> {
    if dying.is_empty() {
        return Vec::new();
    }
    let hit = |b: &Block<()>| dying.contains(&b.src) || dying.contains(&b.dst);
    let mut drop_map: BTreeMap<NodeId, Vec<(NodeId, NodeId)>> = BTreeMap::new();
    for v in 0..nn as NodeId {
        for b in bufs.drain_matching(v, hit) {
            drop_map.entry(v).or_default().push((b.src, b.dst));
            dropped.push(DroppedBlock {
                src: b.src,
                dst: b.dst,
                holder: v,
                step: g,
            });
        }
    }
    let mut kept = Vec::with_capacity(parked.len());
    for (holder, b) in parked.drain(..) {
        if hit(&b) {
            drop_map.entry(holder).or_default().push((b.src, b.dst));
            dropped.push(DroppedBlock {
                src: b.src,
                dst: b.dst,
                holder,
                step: g,
            });
        } else {
            kept.push((holder, b));
        }
    }
    *parked = kept;
    for &u in dying {
        let evacuated = std::mem::take(bufs.node_mut(u));
        parked.extend(evacuated.into_iter().map(|b| (u, b)));
    }
    let mut drops: Vec<(NodeId, Vec<(NodeId, NodeId)>)> = drop_map.into_iter().collect();
    for (_, pairs) in &mut drops {
        pairs.sort_unstable();
    }
    drops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_delivery_degraded, verify_full_exchange};
    use torus_topology::TorusShape;

    fn full_expectation(nn: u32) -> Vec<Vec<NodeId>> {
        (0..nn)
            .map(|d| (0..nn).filter(|&s| s != d).collect())
            .collect()
    }

    fn seeded(plan: &StepPlan) -> Vec<Vec<Block<()>>> {
        plan.seed_counting().as_slices().to_vec()
    }

    #[test]
    fn empty_quarantine_matches_base_plan() {
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let plan = StepPlan::new(&shape);
        let seed = seeded(&plan);
        let rep = RepairedSchedule::plan(&plan, &seed, &BTreeMap::new()).unwrap();
        assert_eq!(rep.phases.len(), plan.phases().len()); // no fallback
        assert_eq!(rep.total_steps(), plan.total_steps());
        assert!(rep.dropped.is_empty());
        assert_eq!(rep.contracted_sends, 0);
        assert_eq!(rep.fallback_blocks, 0);
        let mut bufs = Buffers::from_vecs(seed);
        rep.execute_serial(&mut bufs);
        verify_full_exchange(&shape, &bufs).unwrap();
    }

    #[test]
    fn single_kill_at_every_step_completes_for_survivors() {
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let plan = StepPlan::new(&shape);
        let seed = seeded(&plan);
        let nn = shape.num_nodes();
        let expected = full_expectation(nn);
        let victim: NodeId = 13;
        for q in 0..=plan.total_steps() {
            let quarantine = BTreeMap::from([(victim, q)]);
            let rep = RepairedSchedule::plan(&plan, &seed, &quarantine).unwrap();
            let mut bufs = Buffers::from_vecs(seed.clone());
            rep.execute_serial(&mut bufs);
            verify_delivery_degraded(&bufs, &expected, &[victim])
                .unwrap_or_else(|e| panic!("kill at step {q}: {e}"));
            // Exactly the blocks with a dead endpoint are dropped.
            let want: BTreeSet<(NodeId, NodeId)> = (0..nn)
                .flat_map(|a| [(victim, a), (a, victim)])
                .filter(|(s, d)| s != d)
                .collect();
            let got: BTreeSet<(NodeId, NodeId)> =
                rep.dropped.iter().map(|d| (d.src, d.dst)).collect();
            assert_eq!(got, want, "kill at step {q}");
        }
    }

    #[test]
    fn early_kill_contracts_rings_on_a_long_dimension() {
        // 16 × 4: dimension-0 stride rings have four members, so a dead
        // member leaves three survivors and forces contracted links.
        let shape = TorusShape::new(&[16, 4]).unwrap();
        let plan = StepPlan::new(&shape);
        let seed = seeded(&plan);
        let nn = shape.num_nodes();
        let victim: NodeId = 5;
        let quarantine = BTreeMap::from([(victim, 0)]);
        let rep = RepairedSchedule::plan(&plan, &seed, &quarantine).unwrap();
        assert!(rep.contracted_sends > 0);
        assert!(rep.contracted_rings > 0);
        let mut bufs = Buffers::from_vecs(seed);
        rep.execute_serial(&mut bufs);
        verify_delivery_degraded(&bufs, &full_expectation(nn), &[victim]).unwrap();
    }

    #[test]
    fn staggered_double_kill_completes_for_survivors() {
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let plan = StepPlan::new(&shape);
        let seed = seeded(&plan);
        let nn = shape.num_nodes();
        let quarantine = BTreeMap::from([(3 as NodeId, 1), (42 as NodeId, 4)]);
        let rep = RepairedSchedule::plan(&plan, &seed, &quarantine).unwrap();
        let mut bufs = Buffers::from_vecs(seed);
        rep.execute_serial(&mut bufs);
        verify_delivery_degraded(&bufs, &full_expectation(nn), &[3, 42]).unwrap();
        assert_eq!(rep.dead, vec![(3, 1), (42, 4)]);
        // Both directions of both victims' traffic (minus the overlap
        // pair counted twice) are dropped.
        assert_eq!(rep.dropped.len(), 2 * (2 * (nn as usize - 1)) - 2);
    }

    #[test]
    fn planning_is_deterministic() {
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let plan = StepPlan::new(&shape);
        let seed = seeded(&plan);
        let quarantine = BTreeMap::from([(9 as NodeId, 3)]);
        let a = RepairedSchedule::plan(&plan, &seed, &quarantine).unwrap();
        let b = RepairedSchedule::plan(&plan, &seed, &quarantine).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn quarantine_past_the_end_is_dead_for_fallback_only() {
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let plan = StepPlan::new(&shape);
        let seed = seeded(&plan);
        let nn = shape.num_nodes();
        let victim: NodeId = 20;
        let quarantine = BTreeMap::from([(victim, plan.total_steps() + 100)]);
        let rep = RepairedSchedule::plan(&plan, &seed, &quarantine).unwrap();
        assert_eq!(rep.dead, vec![(victim, plan.total_steps())]);
        let mut bufs = Buffers::from_vecs(seed);
        rep.execute_serial(&mut bufs);
        verify_delivery_degraded(&bufs, &full_expectation(nn), &[victim]).unwrap();
    }

    #[test]
    fn unknown_node_is_rejected() {
        let shape = TorusShape::new_2d(4, 4).unwrap();
        let plan = StepPlan::new(&shape);
        let seed = seeded(&plan);
        let quarantine = BTreeMap::from([(999 as NodeId, 0)]);
        assert_eq!(
            RepairedSchedule::plan(&plan, &seed, &quarantine),
            Err(RepairError::UnknownNode { node: 999 })
        );
    }

    #[test]
    fn padded_shape_repairs_on_the_canonical_plan() {
        // 6×6 pads to canonical 8×8: the repair consumes the prepared
        // (real-pairs-only) seed and must still complete survivors.
        let shape = TorusShape::new_2d(6, 6).unwrap();
        let prepared = crate::prepared::PreparedExchange::new(&shape).unwrap();
        let plan = prepared.step_plan();
        let victim = prepared.exchange().to_canonical(7);
        let quarantine = BTreeMap::from([(victim, 2usize)]);
        let rep = RepairedSchedule::plan(&plan, prepared.seeded_blocks(), &quarantine).unwrap();
        let mut bufs = Buffers::from_vecs(prepared.seeded_blocks().to_vec());
        rep.execute_serial(&mut bufs);
        verify_delivery_degraded(&bufs, prepared.expected_delivery(), &[victim]).unwrap();
        // Exactly the victim's incident pairs (real peers only) drop.
        let real_n = shape.num_nodes() as usize;
        assert_eq!(rep.dropped.len(), 2 * (real_n - 1));
    }

    #[test]
    fn base_accounting_counts_every_scheduled_send() {
        let shape = TorusShape::new_2d(8, 8).unwrap();
        let plan = StepPlan::new(&shape);
        let seed = seeded(&plan);
        let rep = RepairedSchedule::plan(&plan, &seed, &BTreeMap::new()).unwrap();
        let scheduled: u64 = plan
            .phases()
            .iter()
            .flat_map(|p| &p.steps)
            .map(|s| s.sends.iter().flatten().count() as u64)
            .sum();
        assert_eq!(rep.base_messages, scheduled);
        // Every block crosses the wire at least once.
        let nn = shape.num_nodes() as u64;
        assert_eq!(rep.base_tx.len() as u64, nn * (nn - 1));
        assert!(rep.base_tx.iter().all(|&(_, tx)| tx >= 1));
    }
}
