//! Execution observers.
//!
//! The benchmark harness regenerates the paper's illustrations (Figures 1
//! and 3) by watching buffer states evolve step by step; an [`Observer`]
//! receives a callback after every executed step with read access to all
//! node buffers.

use crate::block::Buffers;

/// Which of the `n + 2` phases a step belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PhaseKind {
    /// Within-group ring scatter, phases `1..=n` (0-based `index`).
    Scatter {
        /// 0-based phase index (`0` is the paper's phase 1).
        index: usize,
    },
    /// Distance-2 exchange in `4×…×4` submeshes (phase `n+1`).
    Distance2,
    /// Distance-1 exchange in `2×…×2` submeshes (phase `n+2`).
    Distance1,
    /// Degraded-mode direct pairwise exchange appended by schedule repair
    /// (see [`crate::repair`]); never present in a fault-free plan.
    Fallback,
}

/// Callback interface invoked by the executor.
pub trait Observer<P> {
    /// Called once before the first step, with the initial buffers.
    fn on_start(&mut self, _buffers: &Buffers<P>) {}

    /// Called after each executed step.
    fn on_step(&mut self, _phase: PhaseKind, _step: usize, _buffers: &Buffers<P>) {}

    /// Called after each inter-phase rearrangement.
    fn on_rearrange(&mut self, _after_phase: PhaseKind, _buffers: &Buffers<P>) {}
}

/// The do-nothing observer (zero overhead — calls inline away).
#[derive(Default, Clone, Copy, Debug)]
pub struct NullObserver;

impl<P> Observer<P> for NullObserver {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;

    struct Counting {
        starts: usize,
        steps: usize,
        rearranges: usize,
    }

    impl Observer<()> for Counting {
        fn on_start(&mut self, _: &Buffers<()>) {
            self.starts += 1;
        }
        fn on_step(&mut self, _: PhaseKind, _: usize, _: &Buffers<()>) {
            self.steps += 1;
        }
        fn on_rearrange(&mut self, _: PhaseKind, _: &Buffers<()>) {
            self.rearranges += 1;
        }
    }

    #[test]
    fn callbacks_fire() {
        let mut obs = Counting {
            starts: 0,
            steps: 0,
            rearranges: 0,
        };
        let mut bufs: Buffers = Buffers::empty(2);
        bufs.deliver(0, vec![Block::new(0, 1)]);
        obs.on_start(&bufs);
        obs.on_step(PhaseKind::Scatter { index: 0 }, 1, &bufs);
        obs.on_rearrange(PhaseKind::Scatter { index: 0 }, &bufs);
        assert_eq!((obs.starts, obs.steps, obs.rearranges), (1, 1, 1));
    }

    #[test]
    fn null_observer_is_usable() {
        let bufs: Buffers = Buffers::empty(1);
        let mut o = NullObserver;
        Observer::<()>::on_start(&mut o, &bufs);
        Observer::<()>::on_step(&mut o, PhaseKind::Distance1, 0, &bufs);
    }
}
