//! The poll reactor: a fixed pool of threads driving every connection.
//!
//! The daemon's first connection plane spent one reader thread per
//! connection plus one pump thread per submitted job — fine for tens of
//! clients, hopeless for thousands. This module replaces both with a
//! hand-rolled `poll(2)` reactor, in keeping with the workspace's
//! no-async-runtime, threads-and-locks style:
//!
//! * **Fixed thread pool.** [`Daemon::run`](crate::server::Daemon::run)
//!   spawns `reactor_threads` reactor threads; accepted connections are
//!   assigned round-robin and stay on their reactor for life. Daemon
//!   thread count is O(reactor pool + engine drivers), independent of
//!   connection and job counts.
//! * **Non-blocking sockets, `poll` via direct FFI.** The container
//!   vendors no libc crate, so the three syscall entry points the
//!   reactor needs (`poll`, `pipe`, plus raw `read`/`write`/`close` for
//!   the wake pipe) are declared `extern "C"` directly, the same way
//!   [`crate::signal`] declares `signal`.
//! * **Per-connection write queues.** Events are appended to an owned
//!   byte buffer and flushed on `POLLOUT`, replacing the mutex-guarded
//!   writer clone the pump threads shared. A client that stops reading
//!   past [`MAX_WRITE_BUFFER`] queued bytes is disconnected rather than
//!   ballooning the daemon.
//! * **Inline job pumping.** Each reactor iteration polls the tracked
//!   jobs of its connections (`status` transitions, heartbeats, final
//!   `done`), so a connection with a thousand in-flight jobs costs one
//!   scan, not a thousand threads.
//!
//! ## Admission batching and the durability barrier
//!
//! Submissions do not fsync individually. Each admission appends its
//! journal record via [`Journal::record_accepted_async`] and parks in
//! the connection's pending list; once the iteration has drained every
//! readable socket, one [`Journal::wait_durable`] on the highest
//! pending sequence covers them all (the group-commit flusher syncs the
//! batch in one `sync_data`). Only after that barrier does any client
//! hear `accepted` — the documented "fsync before the client hears
//! accepted" invariant holds per admission while fsyncs-per-job drops
//! well below one under bursts, across connections and across
//! pipelined submits on a single connection.
//!
//! To keep per-connection reply order intact, the pending list is an
//! *ordered reply queue*, not just a durability ledger: a submit that
//! resolves immediately while earlier admissions are parked — a
//! `queue_full` or `invalid_spec` rejection mid-burst — parks its
//! reply in the same queue rather than jumping to the wire, so a
//! positional client ([`Client::submit_batch`]) always attributes each
//! reply to the right spec. And a connection with parked submits
//! defers any *non*-submit request to the next iteration: consecutive
//! pipelined submits coalesce into the batch, but a `ping` behind a
//! `submit` never overtakes its `accepted`.
//!
//! [`Client::submit_batch`]: crate::client::Client::submit_batch
//!
//! If the journal cannot make an admission durable, the job is
//! cancelled out of the engine queue ([`Engine::cancel_queued`]) and
//! the client gets a typed `journal_unavailable` rejection instead of
//! an acknowledgment the daemon could not honor.
//!
//! [`Engine::cancel_queued`]: torus_service::Engine::cancel_queued

use std::io::{self, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::raw::{c_int, c_ulong, c_void};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use torus_service::{CancelOutcome, JobHandle, JobStatus, SubmitError};

use crate::journal::JournalError;
use crate::json::Json;
use crate::proto::{self, Request, MAX_LINE_BYTES};
use crate::server::{done_event, CancelLookup, DaemonShared, Terminal};
use crate::spec::JobSpec;

/// A client that stops reading while events stream is disconnected once
/// this many bytes are queued for it, bounding daemon memory per
/// connection.
pub(crate) const MAX_WRITE_BUFFER: usize = 4 * 1024 * 1024;

/// How long a closing reactor keeps trying to flush final events
/// (`done`, `drained`) to slow clients before giving up.
const CLOSE_FLUSH_DEADLINE: Duration = Duration::from_secs(5);

/// Poll timeout while no connection has live jobs or unflushed output —
/// the reactor still wakes for inbox messages via the wake pipe, so
/// this only bounds how stale the `closed` check can get.
const IDLE_POLL: Duration = Duration::from_millis(50);

fn lk<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// poll(2) FFI — declared directly; the container vendors no libc crate.
// ---------------------------------------------------------------------

#[repr(C)]
struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    fn pipe(fds: *mut c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// A self-pipe wakeup. The write end is signalled by other threads
/// (accept loop handing over a connection, the drain helper announcing
/// the published final stats); the reactor polls the read end
/// alongside its sockets.
///
/// The pipe stays in blocking mode on purpose: the reactor only reads
/// it after `POLLIN`, and a read never asks for more than one buffer
/// (pipe reads return what is available), so it cannot block. Writes
/// are elided while one is already pending, so at most a handful of
/// bytes ever sit in the pipe — far below its buffer.
pub(crate) struct Waker {
    rd: c_int,
    wr: c_int,
    pending: AtomicBool,
}

impl Waker {
    fn new() -> io::Result<Self> {
        let mut fds = [0 as c_int; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            rd: fds[0],
            wr: fds[1],
            pending: AtomicBool::new(false),
        })
    }

    /// Makes the reactor's next (or current) `poll` return promptly.
    pub(crate) fn wake(&self) {
        if !self.pending.swap(true, Ordering::SeqCst) {
            let byte = 1u8;
            unsafe {
                write(self.wr, (&byte as *const u8).cast::<c_void>(), 1);
            }
        }
    }

    /// Clears the pipe after `POLLIN`. The byte is consumed *before*
    /// the flag is cleared: a wake landing in between is elided (the
    /// flag is still set) and its message is picked up by the next
    /// inbox pass, which the reactor reaches without blocking again,
    /// while a wake after the clear writes a fresh byte. The reverse order could consume a byte written
    /// *after* the flag was re-armed, leaving `pending` true over an
    /// empty pipe — every later wake elided, the reactor reduced to
    /// its poll timeout forever.
    fn drain(&self) {
        let mut buf = [0u8; 64];
        unsafe {
            read(self.rd, buf.as_mut_ptr().cast::<c_void>(), buf.len());
        }
        self.pending.store(false, Ordering::SeqCst);
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            close(self.rd);
            close(self.wr);
        }
    }
}

/// A message injected into a reactor from another thread.
pub(crate) enum Inject {
    /// A freshly accepted connection.
    Conn(TcpStream),
}

/// The handle other threads use to feed a reactor.
pub(crate) struct ReactorHandle {
    inbox: Mutex<Vec<Inject>>,
    waker: Waker,
}

impl ReactorHandle {
    pub(crate) fn new() -> io::Result<Self> {
        Ok(Self {
            inbox: Mutex::new(Vec::new()),
            waker: Waker::new()?,
        })
    }

    pub(crate) fn send(&self, msg: Inject) {
        lk(&self.inbox).push(msg);
        self.waker.wake();
    }

    /// Wakes the reactor without a message — used when a shared flag
    /// (`closed`) changed.
    pub(crate) fn wake(&self) {
        self.waker.wake();
    }
}

/// One job whose lifecycle this connection streams.
struct JobTrack {
    handle: JobHandle,
    last_state: &'static str,
    polls: u32,
}

/// One slot in a connection's parked submit-reply queue. Replies to a
/// pipelined burst go on the wire strictly in request order, so once an
/// admission is parked awaiting durability, every later submit's reply
/// parks behind it — including replies that already resolved (a
/// rejection needs no fsync, but it must not overtake an earlier
/// `accepted` that a positional client would attribute to it).
enum PendingReply {
    /// An admission whose journal record is appended but not yet
    /// durable; resolves at the iteration's durability barrier.
    Admission { handle: JobHandle, seq: u64 },
    /// A reply that resolved immediately (a rejection) but is queued
    /// behind earlier parked admissions to keep its place in line.
    Resolved(Json),
}

/// Per-connection state owned by exactly one reactor thread.
struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    tenant: Option<String>,
    tracks: Vec<JobTrack>,
    /// Submit replies owed in request order; non-empty only between a
    /// parked admission and the iteration's durability barrier.
    pending: Vec<PendingReply>,
    /// A `drain` reply is owed; requests queue behind it.
    await_drain: bool,
    /// Peer closed its write half; we stop reading but keep streaming
    /// tracked jobs until done, matching the old reader/pump split.
    eof: bool,
    dead: bool,
    /// When the peer last sent bytes; drives idle reaping. Only truly
    /// quiet connections are reaped — one with tracked jobs, parked
    /// replies, or unflushed output is never idle.
    last_activity: Instant,
}

impl Conn {
    fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            tenant: None,
            tracks: Vec::new(),
            pending: Vec::new(),
            await_drain: false,
            eof: false,
            dead: false,
            last_activity: Instant::now(),
        })
    }

    fn has_unflushed(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Whether a closing reactor still owes this connection anything.
    fn has_final_work(&self) -> bool {
        !self.dead
            && (self.has_unflushed()
                || !self.tracks.is_empty()
                || !self.pending.is_empty()
                || self.await_drain)
    }
}

fn queue_event(wbuf: &mut Vec<u8>, event: &Json) {
    wbuf.extend_from_slice(event.dump().as_bytes());
    wbuf.push(b'\n');
}

/// The reactor thread body. Runs until the daemon is closed and every
/// final event is flushed (or the flush deadline passes).
pub(crate) fn reactor_loop(shared: &Arc<DaemonShared>, handle: &Arc<ReactorHandle>) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut fds: Vec<PollFd> = Vec::new();
    let mut close_deadline: Option<Instant> = None;

    loop {
        // Inbox: adopt new connections.
        for msg in lk(&handle.inbox).drain(..) {
            match msg {
                Inject::Conn(stream) => {
                    if let Ok(conn) = Conn::new(stream) {
                        conns.push(conn);
                    }
                }
            }
        }

        let closed = shared.closed.load(Ordering::SeqCst);
        if closed && close_deadline.is_none() {
            close_deadline = Some(Instant::now() + CLOSE_FLUSH_DEADLINE);
        }

        // Poll: the wake pipe plus every live socket.
        fds.clear();
        fds.push(PollFd {
            fd: handle.waker.rd,
            events: POLLIN,
            revents: 0,
        });
        for conn in &conns {
            let mut events = 0i16;
            // Stop reading (backpressure, not disconnect) when deferred
            // complete lines have piled up past the write-queue bound —
            // they drain as soon as the pending batch or drain reply
            // resolves.
            if !conn.eof && !conn.dead && conn.rbuf.len() <= MAX_WRITE_BUFFER {
                events |= POLLIN;
            }
            if conn.has_unflushed() && !conn.dead {
                events |= POLLOUT;
            }
            fds.push(PollFd {
                fd: conn.stream.as_raw_fd(),
                events,
                revents: 0,
            });
        }
        let busy = conns
            .iter()
            .any(|c| !c.tracks.is_empty() || !c.pending.is_empty() || c.has_unflushed());
        let timeout = if busy || closed {
            shared.status_poll.max(Duration::from_millis(1))
        } else {
            IDLE_POLL
        };
        let rc = unsafe {
            poll(
                fds.as_mut_ptr(),
                fds.len() as c_ulong,
                timeout.as_millis().min(i32::MAX as u128) as c_int,
            )
        };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() != ErrorKind::Interrupted {
                // poll itself failing is unrecoverable for this thread;
                // drop the connections rather than spinning.
                return;
            }
            continue;
        }
        if fds[0].revents & POLLIN != 0 {
            handle.waker.drain();
        }

        // Read every readable socket fully (edge towards exhaustion so
        // pipelined requests land in one iteration and batch).
        for (i, conn) in conns.iter_mut().enumerate() {
            let revents = fds[i + 1].revents;
            if revents & (POLLIN | POLLHUP | POLLERR) != 0 && !conn.eof && !conn.dead {
                read_ready(conn);
            }
        }

        // Parse and handle requests; admissions park in `pending`.
        for conn in &mut conns {
            process_lines(conn, shared);
        }

        // Durability barrier: one wait covers every admission parked
        // this iteration (the first wait blocks for the group-commit
        // batch; the rest resolve instantly). Replies drain in request
        // order, so a rejection parked mid-burst stays behind the
        // earlier admissions' `accepted` lines.
        let any_pending = conns.iter().any(|c| !c.pending.is_empty());
        if any_pending {
            // A `Resolved` reply only parks behind an `Admission`, and
            // admissions only park on a journaling daemon.
            let journal = shared
                .journal
                .as_ref()
                .expect("pending submits only exist on a journaling daemon");
            for conn in &mut conns {
                for reply in std::mem::take(&mut conn.pending) {
                    match reply {
                        PendingReply::Admission { handle, seq } => {
                            match journal.wait_durable(seq) {
                                Ok(()) => accept_job(conn, shared, handle),
                                Err(e) => reject_undurable(conn, shared, handle, &e),
                            }
                        }
                        PendingReply::Resolved(event) => queue_event(&mut conn.wbuf, &event),
                    }
                }
            }
        }

        // Deliver the drain verdict: once the (single) drain helper has
        // published the final stats, every connection owed a `drained`
        // reply gets it — whichever reactor it lives on.
        if conns.iter().any(|c| c.await_drain) {
            if let Some(event) = lk(&shared.drained_event).clone() {
                for conn in &mut conns {
                    if conn.await_drain {
                        queue_event(&mut conn.wbuf, &event);
                        conn.await_drain = false;
                    }
                }
            }
        }

        // Pump tracked jobs: transitions, heartbeats, final `done`.
        for conn in &mut conns {
            pump_tracks(conn, shared);
        }

        // Flush write queues.
        for conn in &mut conns {
            if conn.has_unflushed() && !conn.dead {
                flush_writes(conn);
            }
            // A connection at EOF with nothing left to stream is done.
            if conn.eof && conn.tracks.is_empty() && !conn.has_unflushed() && !conn.await_drain {
                conn.dead = true;
            }
        }

        // Idle reaping: a connection that has sent nothing for the
        // configured timeout and is owed nothing (no tracked jobs, no
        // parked replies, no unflushed bytes) is closed so abandoned
        // sockets cannot accumulate poll slots forever.
        if let Some(idle) = shared.idle_timeout {
            let now = Instant::now();
            for conn in &mut conns {
                if !conn.dead
                    && conn.tracks.is_empty()
                    && conn.pending.is_empty()
                    && !conn.await_drain
                    && !conn.has_unflushed()
                    && now.duration_since(conn.last_activity) >= idle
                {
                    conn.dead = true;
                    shared.idle_reaped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        conns.retain(|c| !c.dead);

        if closed {
            let deadline_passed = close_deadline.is_some_and(|d| Instant::now() >= d);
            if deadline_passed || conns.iter().all(|c| !c.has_final_work()) {
                // Dropping the connections closes them; clients see EOF
                // after their final events, same as the old reader exit.
                return;
            }
        }
    }
}

/// Drains the socket into the connection's read buffer.
fn read_ready(conn: &mut Conn) {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                conn.eof = true;
                return;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&chunk[..n]);
                conn.last_activity = Instant::now();
                if n < chunk.len() {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
}

/// Parses and handles every complete line in the read buffer, stopping
/// early to preserve reply order (non-submit behind a parked submit)
/// or when a drain reply is owed.
fn process_lines(conn: &mut Conn, shared: &Arc<DaemonShared>) {
    if conn.dead {
        return;
    }
    let mut consumed = 0usize;
    while !conn.await_drain {
        let Some(nl) = conn.rbuf[consumed..].iter().position(|&b| b == b'\n') else {
            break;
        };
        let line = String::from_utf8_lossy(&conn.rbuf[consumed..consumed + nl]).into_owned();
        if line.trim().is_empty() {
            consumed += nl + 1;
            continue;
        }
        let request = proto::parse_request(&line);
        // Ordering: once submits are parked awaiting durability, only
        // further submits may join the batch — anything else would need
        // its reply queued ahead of their `accepted` lines, so it waits
        // for the next iteration.
        if !conn.pending.is_empty() && !matches!(request, Ok(Request::Submit { .. })) {
            break;
        }
        consumed += nl + 1;
        match request {
            // Malformed lines get a reply but keep the connection: a
            // client with one buggy request shouldn't lose its jobs.
            Err(e) => queue_event(&mut conn.wbuf, &proto::error_event(&e.message)),
            Ok(request) => dispatch(conn, request, shared),
        }
    }
    conn.rbuf.drain(..consumed);
    if oversized_tail(&conn.rbuf) {
        queue_event(
            &mut conn.wbuf,
            &proto::error_event(&format!("request line exceeds {MAX_LINE_BYTES} bytes")),
        );
        conn.eof = true; // stop reading; flush the error, then close
        conn.rbuf.clear();
    }
}

/// Whether the read buffer holds a single line past [`MAX_LINE_BYTES`].
/// Only the unterminated tail (bytes after the last newline) counts:
/// complete lines legitimately sit buffered when they are deferred
/// behind parked submits or an owed drain reply, and any number of
/// small deferred lines must not be mistaken for one oversized line.
fn oversized_tail(rbuf: &[u8]) -> bool {
    let tail_start = rbuf
        .iter()
        .rposition(|&b| b == b'\n')
        .map_or(0, |pos| pos + 1);
    rbuf.len() - tail_start > MAX_LINE_BYTES
}

/// Handles one parsed request.
fn dispatch(conn: &mut Conn, request: Request, shared: &Arc<DaemonShared>) {
    match request {
        Request::Hello { tenant } => {
            let event = proto::hello_ok(&tenant);
            conn.tenant = Some(tenant);
            queue_event(&mut conn.wbuf, &event);
        }
        Request::Ping => queue_event(&mut conn.wbuf, &proto::pong()),
        Request::Schema => queue_event(&mut conn.wbuf, &proto::schema(JobSpec::schema())),
        Request::Validate { spec } => match JobSpec::from_json(&spec) {
            Ok(s) => queue_event(&mut conn.wbuf, &proto::valid(s.to_json())),
            Err(e) => queue_event(
                &mut conn.wbuf,
                &proto::rejected("invalid_spec", &e.to_string()),
            ),
        },
        Request::Stats => {
            let journal_stats = shared
                .journal
                .as_deref()
                .map(crate::journal::Journal::stats);
            let (live, terminal) = shared.registry.counts();
            let daemon = Json::obj([
                ("reactor_threads", Json::u64(shared.reactor_threads as u64)),
                ("registry_live", Json::u64(live as u64)),
                ("registry_terminal", Json::u64(terminal as u64)),
                (
                    "idle_reaped",
                    Json::u64(shared.idle_reaped.load(Ordering::Relaxed)),
                ),
            ]);
            queue_event(
                &mut conn.wbuf,
                &proto::stats(
                    &shared.engine.stats(),
                    &shared.engine.tenant_stats(),
                    journal_stats.as_ref(),
                    Some(&daemon),
                ),
            );
        }
        Request::Status { job_id } => {
            let reply = crate::server::status_reply(shared, job_id);
            queue_event(&mut conn.wbuf, &reply);
        }
        Request::Cancel { job_id } => {
            let Some(tenant) = conn.tenant.clone() else {
                queue_event(
                    &mut conn.wbuf,
                    &proto::rejected("unauthenticated", "send hello with a tenant first"),
                );
                return;
            };
            let reply = cancel_job(shared, job_id, &tenant);
            queue_event(&mut conn.wbuf, &reply);
        }
        Request::Drain => {
            shared.draining.store(true, Ordering::SeqCst);
            // Already drained: answer from the cached verdict.
            if let Some(event) = lk(&shared.drained_event).clone() {
                queue_event(&mut conn.wbuf, &event);
                return;
            }
            conn.await_drain = true;
            // The engine drain can take arbitrarily long; a single
            // helper thread (first drain request wins — repeated drains
            // must not each add a thread) waits it out, publishes the
            // final stats, and wakes every reactor so each delivers the
            // `drained` reply to its own waiting connections.
            if !shared.drain_helper_spawned.swap(true, Ordering::SeqCst) {
                let shared = Arc::clone(shared);
                std::thread::Builder::new()
                    .name("serviced-drain".to_string())
                    .spawn(move || {
                        let stats = shared.engine.shutdown();
                        *lk(&shared.drained_event) = Some(proto::drained(&stats));
                        for reactor in lk(&shared.reactors).iter() {
                            reactor.wake();
                        }
                    })
                    .expect("spawn drain helper");
            }
        }
        Request::Submit { spec } => handle_submit(conn, spec, shared),
    }
}

/// Resolves a tenant-scoped cancel. Ownership is checked against the
/// registry before the engine is asked anything, so one tenant can
/// neither cancel nor probe another tenant's job ids. The engine
/// racing a cancelled job to terminal is fine: the registry's
/// event-hook record or a final [`CancelOutcome::Unknown`] both map to
/// `already_terminal`.
fn cancel_job(shared: &DaemonShared, job_id: u64, tenant: &str) -> Json {
    match shared.registry.cancel_lookup(job_id, tenant) {
        CancelLookup::Unknown => proto::cancel_reply(job_id, "unknown", None),
        CancelLookup::Forbidden => proto::cancel_reply(job_id, "forbidden", None),
        CancelLookup::Terminal(state) => {
            proto::cancel_reply(job_id, "already_terminal", Some(&state))
        }
        CancelLookup::Live => match shared.engine.cancel(job_id) {
            CancelOutcome::Cancelled => proto::cancel_reply(job_id, "cancelled", None),
            CancelOutcome::Cancelling => proto::cancel_reply(job_id, "cancelling", None),
            // Raced to terminal between the registry lookup and the
            // engine call; the event hook has (or is about to have)
            // recorded the outcome.
            CancelOutcome::Unknown => proto::cancel_reply(job_id, "already_terminal", None),
        },
    }
}

/// Queues a submit reply in request order: while earlier admissions sit
/// parked awaiting durability, an already-resolved reply (a rejection)
/// parks behind them instead of overtaking their `accepted` lines on
/// the wire — clients match burst replies positionally.
fn submit_reply(conn: &mut Conn, event: Json) {
    if conn.pending.is_empty() {
        queue_event(&mut conn.wbuf, &event);
    } else {
        conn.pending.push(PendingReply::Resolved(event));
    }
}

/// Admission: engine submit, then journal append (durability parked for
/// the iteration barrier) or immediate acceptance without a journal.
fn handle_submit(conn: &mut Conn, spec: Json, shared: &Arc<DaemonShared>) {
    if shared.draining.load(Ordering::SeqCst) {
        submit_reply(
            conn,
            proto::rejected("draining", "daemon is draining; no new jobs"),
        );
        return;
    }
    let Some(tenant) = conn.tenant.clone() else {
        submit_reply(
            conn,
            proto::rejected("unauthenticated", "send hello with a tenant first"),
        );
        return;
    };
    let spec = match JobSpec::from_json(&spec) {
        Ok(s) => s,
        Err(e) => {
            submit_reply(conn, proto::rejected("invalid_spec", &e.to_string()));
            return;
        }
    };
    let submitted = shared.engine.submit_op_with_deadline(
        &tenant,
        spec.torus_shape(),
        spec.op,
        spec.payload,
        spec.runtime_config(),
        spec.deadline,
    );
    match submitted {
        Ok(handle) => match &shared.journal {
            Some(journal) => {
                match journal.record_accepted_async(handle.id(), &tenant, spec.to_json()) {
                    Ok(seq) => conn.pending.push(PendingReply::Admission { handle, seq }),
                    Err(e) => reject_undurable(conn, shared, handle, &e),
                }
            }
            None => accept_job(conn, shared, handle),
        },
        Err(SubmitError::QueueFull {
            depth,
            retry_after_ms,
        }) => {
            journal_reject(shared, &tenant, "queue_full");
            submit_reply(
                conn,
                proto::rejected_backoff(
                    "queue_full",
                    &format!("global queue at depth {depth}"),
                    retry_after_ms,
                ),
            );
        }
        Err(SubmitError::TenantQueueFull {
            tenant,
            max_queued,
            retry_after_ms,
        }) => {
            journal_reject(shared, &tenant, "tenant_queue_full");
            submit_reply(
                conn,
                proto::rejected_backoff(
                    "tenant_queue_full",
                    &format!("tenant {tenant:?} at its queued-jobs quota ({max_queued})"),
                    retry_after_ms,
                ),
            );
        }
        Err(SubmitError::RateLimited {
            tenant,
            retry_after_ms,
        }) => {
            journal_reject(shared, &tenant, "rate_limited");
            submit_reply(
                conn,
                proto::rejected_backoff(
                    "rate_limited",
                    &format!("tenant {tenant:?} is over its admission rate"),
                    retry_after_ms,
                ),
            );
        }
        Err(SubmitError::ShuttingDown) => submit_reply(
            conn,
            proto::rejected("draining", "daemon is draining; no new jobs"),
        ),
    }
}

/// The admission is durable (or the daemon runs journal-free): register
/// it, acknowledge it, and start streaming its lifecycle.
fn accept_job(conn: &mut Conn, shared: &DaemonShared, handle: JobHandle) {
    let tenant = conn.tenant.as_deref().unwrap_or("");
    shared.registry.register_live(handle.clone(), tenant);
    queue_event(&mut conn.wbuf, &proto::accepted(handle.id()));
    conn.tracks.push(JobTrack {
        handle,
        last_state: "",
        polls: 0,
    });
}

/// The journal could not make the admission durable: the daemon must
/// not acknowledge a job it could lose, so cancel it out of the queue
/// and reject with the typed `journal_unavailable` reason.
fn reject_undurable(conn: &mut Conn, shared: &DaemonShared, handle: JobHandle, err: &JournalError) {
    let id = handle.id();
    let canceled = shared.engine.cancel_queued(id);
    if canceled {
        // Best-effort terminal record: if the appended admission ever
        // reaches disk (page cache surviving this process's sync
        // failure), replay must not resurrect a job whose client heard
        // `rejected`.
        if let Some(journal) = &shared.journal {
            let _ = journal.record_done(
                id,
                false,
                false,
                None,
                Some("canceled: admission journal unavailable"),
            );
        }
        shared.registry.finish(
            id,
            Terminal {
                ok: false,
                degraded: false,
                checksum: None,
                error: Some("canceled: admission journal unavailable".to_string()),
                recovered: false,
                state: "failed".to_string(),
                tenant: conn.tenant.clone(),
            },
        );
    } else {
        // A driver claimed the job before the cancel landed; it runs to
        // completion engine-side. The client still gets the rejection —
        // the admission was never durable — but the registry keeps the
        // handle so `status` stays answerable.
        shared
            .registry
            .register_live(handle, conn.tenant.as_deref().unwrap_or(""));
    }
    submit_reply(
        conn,
        proto::rejected(
            "journal_unavailable",
            &format!("admission journal unavailable: {err}"),
        ),
    );
}

/// Appends a `rejected` record when the daemon journals.
fn journal_reject(shared: &DaemonShared, tenant: &str, reason: &str) {
    if let Some(journal) = &shared.journal {
        let _ = journal.record_rejected(tenant, reason);
    }
}

/// Streams tracked jobs: a `status` line per transition (plus periodic
/// heartbeats), then the final `done`, after which the track is
/// dropped.
fn pump_tracks(conn: &mut Conn, shared: &DaemonShared) {
    if conn.tracks.is_empty() || conn.dead {
        return;
    }
    let mut tracks = std::mem::take(&mut conn.tracks);
    tracks.retain_mut(|track| {
        let state = match track.handle.try_status() {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            status => {
                // Terminal (completed, failed, cancelled, or past its
                // deadline), so `wait` returns without blocking.
                let result = track.handle.wait();
                queue_event(&mut conn.wbuf, &done_event(status, &result));
                return false;
            }
        };
        if state != track.last_state || track.polls.is_multiple_of(shared.heartbeat_polls) {
            queue_event(&mut conn.wbuf, &proto::status(track.handle.id(), state));
            track.last_state = state;
        }
        track.polls += 1;
        true
    });
    conn.tracks = tracks;
}

/// Writes as much queued output as the socket accepts.
fn flush_writes(conn: &mut Conn) {
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.wpos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    } else if conn.wbuf.len() - conn.wpos > MAX_WRITE_BUFFER {
        conn.dead = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The oversized-line cap must fire on one unterminated line past
    /// the limit — and only on that, never on a backlog of small
    /// complete lines deferred behind a parked batch or drain reply.
    #[test]
    fn line_cap_applies_to_the_unterminated_tail_only() {
        let small_line = b"{\"op\":\"ping\"}\n";
        let mut deferred: Vec<u8> = Vec::new();
        while deferred.len() <= MAX_LINE_BYTES + small_line.len() {
            deferred.extend_from_slice(small_line);
        }
        assert!(
            !oversized_tail(&deferred),
            "complete small lines must pass no matter how many are buffered"
        );

        let mut with_tail = deferred.clone();
        with_tail.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 1]);
        assert!(
            oversized_tail(&with_tail),
            "an oversized unterminated tail must trip the cap"
        );

        assert!(!oversized_tail(&vec![b'x'; MAX_LINE_BYTES]));
        assert!(oversized_tail(&vec![b'x'; MAX_LINE_BYTES + 1]));
        assert!(!oversized_tail(b""));
    }

    /// Regression for a lost-wakeup race: the old drain cleared the
    /// `pending` flag *before* reading the pipe, so a wake landing in
    /// between had its byte consumed while the flag ended up set —
    /// every later wake elided against an empty pipe, permanently.
    /// Hammer wake/drain from two threads and then prove a fresh wake
    /// still makes the pipe readable.
    #[test]
    fn waker_survives_racing_wakes() {
        let waker = Arc::new(Waker::new().expect("wake pipe"));

        fn readable(waker: &Waker, timeout_ms: c_int) -> bool {
            let mut fds = [PollFd {
                fd: waker.rd,
                events: POLLIN,
                revents: 0,
            }];
            unsafe { poll(fds.as_mut_ptr(), 1, timeout_ms) > 0 }
        }

        let racer = {
            let waker = Arc::clone(&waker);
            std::thread::spawn(move || {
                for _ in 0..20_000 {
                    waker.wake();
                }
            })
        };
        // Drain as the racer wakes — only ever after POLLIN, as the
        // reactor does (the pipe is blocking).
        while !racer.is_finished() {
            if readable(&waker, 1) {
                waker.drain();
            }
        }
        racer.join().unwrap();
        while readable(&waker, 0) {
            waker.drain();
        }

        // The pipe must still be armed: one wake, one POLLIN.
        waker.wake();
        assert!(
            readable(&waker, 1_000),
            "a wake after heavy wake/drain interleaving must still reach poll"
        );
    }
}
