//! Client library for the daemon's wire protocol.
//!
//! One [`Client`] owns one connection. Because `submit` streams
//! (`accepted` now, `status`/`done` later) while other requests are
//! strict request/response, events for in-flight jobs can interleave
//! with the reply the caller is waiting for. The client routes instead
//! of assuming order: `status` events accumulate in a per-job trace,
//! `done` events park in a buffer until [`Client::wait_done`] claims
//! them, and everything else is handed to whichever call is pending.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::Json;
use crate::spec::JobSpec;

/// Default read timeout, used until [`Client::with_read_timeout`]
/// overrides it. Generous — drains of deep queues legitimately take a
/// while — but finite, so a wedged daemon fails a test instead of
/// hanging it.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(120);

/// The final `done` event for one job, decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DoneEvent {
    /// Engine-assigned job id.
    pub job_id: u64,
    /// `true` when the job finished without error.
    pub ok: bool,
    /// `true` when the job completed in degraded mode (dead nodes
    /// quarantined, survivors exchanged).
    pub degraded: bool,
    /// The runtime's own end-to-end verification verdict.
    pub verified: bool,
    /// Whether the exchange plan came from the engine's cache.
    pub cache_hit: bool,
    /// Bytes the exchange put on the (simulated) wire.
    pub wire_bytes: u64,
    /// FNV-1a 64 digest of the delivered blocks, hex; `None` for
    /// degraded or failed runs.
    pub checksum: Option<String>,
    /// Failure description when `ok` is false.
    pub error: Option<String>,
    /// Terminal state token: `"completed"`, `"failed"`, `"cancelled"`,
    /// or `"deadline_exceeded"`. Derived from `ok` when talking to a
    /// daemon predating the field.
    pub state: String,
}

impl DoneEvent {
    fn from_json(event: &Json) -> Result<Self, ClientError> {
        let field = |k: &str| {
            event
                .get(k)
                .ok_or_else(|| ClientError::Protocol(format!("done event missing {k:?}")))
        };
        let ok = field("ok")?.as_bool().unwrap_or(false);
        Ok(Self {
            job_id: field("job_id")?
                .as_u64()
                .ok_or_else(|| ClientError::Protocol("done.job_id not a u64".into()))?,
            ok,
            degraded: field("degraded")?.as_bool().unwrap_or(false),
            verified: field("verified")?.as_bool().unwrap_or(false),
            cache_hit: field("cache_hit")?.as_bool().unwrap_or(false),
            wire_bytes: field("wire_bytes")?.as_u64().unwrap_or(0),
            checksum: field("checksum")?.as_str().map(str::to_string),
            error: field("error")?.as_str().map(str::to_string),
            state: event
                .get("state")
                .and_then(Json::as_str)
                .map(str::to_string)
                .unwrap_or_else(|| if ok { "completed" } else { "failed" }.to_string()),
        })
    }
}

/// Everything that can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes read timeouts).
    Io(io::Error),
    /// The connection died mid-conversation — EOF, `ECONNRESET`, or a
    /// broken pipe, typically a daemon crash. Distinct from [`Io`](Self::Io)
    /// so retry logic can reconnect and *resume* via the `status` op
    /// (on a journaling daemon the job survived) instead of blindly
    /// resubmitting and double-running the job.
    Disconnected {
        /// A one-line description of the last streamed event seen
        /// before the connection died (e.g. `"status job 3: running"`),
        /// when any arrived.
        last_event: Option<String>,
    },
    /// The daemon sent something the client could not interpret.
    Protocol(String),
    /// The daemon refused the request with a typed reason
    /// (`queue_full`, `tenant_queue_full`, `rate_limited`,
    /// `invalid_spec`, `draining`, `unauthenticated`).
    Rejected {
        /// Stable machine-readable reason token.
        reason: String,
        /// Human-readable elaboration.
        detail: String,
        /// The daemon's backoff hint, present on overload rejections;
        /// [`Client::submit_with_retry`] honors it.
        retry_after_ms: Option<u64>,
    },
    /// The daemon answered with an `error` event (malformed request).
    Daemon(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Disconnected { last_event } => match last_event {
                Some(ev) => write!(f, "connection lost (last event: {ev})"),
                None => write!(f, "connection lost"),
            },
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Rejected { reason, detail, .. } => {
                write!(f, "rejected ({reason}): {detail}")
            }
            Self::Daemon(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// The decoded reply to a `status` lookup (`ev:"job_status"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobStatusReply {
    /// The queried job id.
    pub job_id: u64,
    /// `"queued"`, `"running"`, `"completed"`, `"failed"`,
    /// `"cancelled"`, `"deadline_exceeded"`, or `"unknown"`.
    pub state: String,
    /// Terminal outcome, when the job is terminal.
    pub ok: Option<bool>,
    /// Whether the run completed degraded, when terminal.
    pub degraded: Option<bool>,
    /// The FNV-1a delivery checksum (hex), when recorded.
    pub checksum: Option<String>,
    /// The failure description, when the job failed.
    pub error: Option<String>,
    /// `true` when the answer came from a recovered journal rather
    /// than a job this daemon process executed.
    pub recovered: bool,
}

/// The decoded reply to a `cancel` op (`ev:"cancel"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CancelReply {
    /// The job the cancel addressed.
    pub job_id: u64,
    /// Stable outcome token: `"cancelled"` (was queued, now terminal),
    /// `"cancelling"` (running; its `done` will report
    /// `state:"cancelled"`), `"already_terminal"`, `"forbidden"`
    /// (another tenant's job), or `"unknown"`.
    pub outcome: String,
    /// For `already_terminal`, the recorded terminal state when known.
    pub state: Option<String>,
}

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    /// `done` events read while waiting for something else, keyed by
    /// job id, until `wait_done` collects them.
    parked_done: HashMap<u64, DoneEvent>,
    /// Every `status` state seen per job, in arrival order (duplicates
    /// from heartbeats collapsed).
    status_trace: HashMap<u64, Vec<String>>,
    /// One-line description of the last streamed event, carried in
    /// [`ClientError::Disconnected`] when the connection dies.
    last_event: Option<String>,
}

impl Client {
    /// Connects; does not authenticate (see [`Client::hello`]). Reads
    /// time out after [`DEFAULT_READ_TIMEOUT`]; adjust with
    /// [`Client::with_read_timeout`].
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(DEFAULT_READ_TIMEOUT))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream),
            parked_done: HashMap::new(),
            status_trace: HashMap::new(),
            last_event: None,
        })
    }

    /// Overrides how long a read may block before failing with a
    /// timeout. `None` means block forever — only sensible for
    /// interactive tools; tests and services should keep a bound so a
    /// wedged daemon surfaces as an error instead of a hang.
    pub fn with_read_timeout(self, timeout: Option<Duration>) -> io::Result<Self> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(self)
    }

    /// Classifies a socket error: a dead peer becomes `Disconnected`
    /// (carrying the last streamed event), everything else stays `Io`.
    fn map_io(&self, e: io::Error) -> ClientError {
        match e.kind() {
            ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe
            | ErrorKind::UnexpectedEof => ClientError::Disconnected {
                last_event: self.last_event.clone(),
            },
            _ => ClientError::Io(e),
        }
    }

    fn send_line(&mut self, request: &Json) -> Result<(), ClientError> {
        let mut line = request.dump();
        line.push('\n');
        self.reader
            .get_mut()
            .write_all(line.as_bytes())
            .map_err(|e| self.map_io(e))
    }

    /// Reads the next event of any kind.
    fn read_event(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| self.map_io(e))?;
        if n == 0 {
            // EOF mid-conversation: the daemon is gone (crash or kill),
            // not merely misbehaving.
            return Err(ClientError::Disconnected {
                last_event: self.last_event.clone(),
            });
        }
        crate::json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable event: {e}")))
    }

    /// Reads until a non-streaming event arrives, parking `status` and
    /// `done` events for their jobs along the way.
    fn next_reply(&mut self) -> Result<Json, ClientError> {
        loop {
            let event = self.read_event()?;
            match event.get("ev").and_then(Json::as_str) {
                Some("status") => self.record_status(&event),
                Some("done") => {
                    let done = DoneEvent::from_json(&event)?;
                    self.last_event = Some(format!("done job {}", done.job_id));
                    self.parked_done.insert(done.job_id, done);
                }
                Some(_) => return Ok(event),
                None => {
                    return Err(ClientError::Protocol(format!(
                        "event without 'ev': {}",
                        event.dump()
                    )))
                }
            }
        }
    }

    fn record_status(&mut self, event: &Json) {
        let (Some(id), Some(state)) = (
            event.get("job_id").and_then(Json::as_u64),
            event.get("state").and_then(Json::as_str),
        ) else {
            return;
        };
        self.last_event = Some(format!("status job {id}: {state}"));
        let trace = self.status_trace.entry(id).or_default();
        if trace.last().map(String::as_str) != Some(state) {
            trace.push(state.to_string());
        }
    }

    /// Converts a reply into `Err` when it is `rejected` or `error`.
    fn expect_ev(&mut self, want: &str) -> Result<Json, ClientError> {
        let event = self.next_reply()?;
        match event.get("ev").and_then(Json::as_str) {
            Some(ev) if ev == want => Ok(event),
            Some("rejected") => Err(ClientError::Rejected {
                reason: event
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                detail: event
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
                retry_after_ms: event.get("retry_after_ms").and_then(Json::as_u64),
            }),
            Some("error") => Err(ClientError::Daemon(
                event
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            )),
            _ => Err(ClientError::Protocol(format!(
                "expected {want:?}, got {}",
                event.dump()
            ))),
        }
    }

    /// Authenticates the connection as `tenant`. Must precede submits.
    pub fn hello(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.send_line(&Json::obj([
            ("op", Json::str("hello")),
            ("tenant", Json::str(tenant)),
        ]))?;
        self.expect_ev("hello_ok").map(|_| ())
    }

    /// Submits a job, returning its id once the daemon accepts it. The
    /// job then runs asynchronously; collect it with
    /// [`Client::wait_done`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ClientError> {
        self.submit_raw(spec.to_json())
    }

    /// Submits a raw spec object verbatim — lets tests send invalid
    /// specs through the real admission path.
    pub fn submit_raw(&mut self, spec: Json) -> Result<u64, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("submit")), ("spec", spec)]))?;
        let event = self.expect_ev("accepted")?;
        event
            .get("job_id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("accepted without job_id".into()))
    }

    /// Pipelines `specs` down the socket as one burst — every `submit`
    /// line is written before any reply is read — then collects the
    /// replies in order. This is how a latency-insensitive producer
    /// should talk to the daemon: parked submits arriving within one
    /// reactor iteration share a single journal group-commit, so the
    /// fsync cost amortizes across the burst. Returns one result per
    /// spec, `Ok(job_id)` or the typed rejection, in submission order;
    /// socket-level failures abort the whole call.
    pub fn submit_batch(
        &mut self,
        specs: &[JobSpec],
    ) -> Result<Vec<Result<u64, ClientError>>, ClientError> {
        let raw: Vec<Json> = specs.iter().map(JobSpec::to_json).collect();
        self.submit_batch_raw(&raw)
    }

    /// [`Client::submit_batch`] over raw spec objects sent verbatim —
    /// lets tests pipeline bursts that mix valid and invalid specs
    /// through the real admission path and check that each positional
    /// reply lands on the spec that caused it.
    pub fn submit_batch_raw(
        &mut self,
        specs: &[Json],
    ) -> Result<Vec<Result<u64, ClientError>>, ClientError> {
        let mut burst = String::new();
        for spec in specs {
            burst
                .push_str(&Json::obj([("op", Json::str("submit")), ("spec", spec.clone())]).dump());
            burst.push('\n');
        }
        self.reader
            .get_mut()
            .write_all(burst.as_bytes())
            .map_err(|e| self.map_io(e))?;
        let mut replies = Vec::with_capacity(specs.len());
        for _ in specs {
            let reply = self.expect_ev("accepted").and_then(|event| {
                event
                    .get("job_id")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| ClientError::Protocol("accepted without job_id".into()))
            });
            match reply {
                Ok(id) => replies.push(Ok(id)),
                Err(rej @ ClientError::Rejected { .. }) => replies.push(Err(rej)),
                Err(fatal) => return Err(fatal),
            }
        }
        Ok(replies)
    }

    /// Submits with bounded-jitter exponential backoff on overload:
    /// `queue_full`, `tenant_queue_full`, and `rate_limited` rejections
    /// are retried up to `max_attempts` times, sleeping the daemon's
    /// `retry_after_ms` hint (or a doubling fallback when absent) plus
    /// deterministic jitter in `[-50%, 0%]` of the base, capped at 5 s
    /// per wait. Every other error — including the final overload
    /// rejection — propagates unchanged, so overload degrades to slower
    /// admission rather than hard failure.
    pub fn submit_with_retry(
        &mut self,
        spec: &JobSpec,
        max_attempts: u32,
    ) -> Result<u64, ClientError> {
        let max_attempts = max_attempts.max(1);
        // Deterministic jitter (an LCG stepped per retry): calibrated
        // backoff without pulling in a clock or an RNG dependency, and
        // reproducible in tests.
        let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut fallback_ms: u64 = 10;
        for attempt in 1..=max_attempts {
            match self.submit(spec) {
                Ok(id) => return Ok(id),
                Err(ClientError::Rejected {
                    reason,
                    detail,
                    retry_after_ms,
                }) => {
                    let overload = matches!(
                        reason.as_str(),
                        "queue_full" | "tenant_queue_full" | "rate_limited"
                    );
                    if !overload || attempt == max_attempts {
                        return Err(ClientError::Rejected {
                            reason,
                            detail,
                            retry_after_ms,
                        });
                    }
                    let base = retry_after_ms.unwrap_or(fallback_ms).clamp(1, 5_000);
                    rng = rng
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let jitter = (rng >> 33) % (base / 2 + 1);
                    std::thread::sleep(Duration::from_millis(base - jitter));
                    fallback_ms = (fallback_ms * 2).min(5_000);
                }
                Err(other) => return Err(other),
            }
        }
        unreachable!("loop returns on the final attempt")
    }

    /// Looks up one job by id — including, on a journaling daemon, jobs
    /// accepted by a pre-crash process this client never talked to.
    pub fn status(&mut self, job_id: u64) -> Result<JobStatusReply, ClientError> {
        self.send_line(&Json::obj([
            ("op", Json::str("status")),
            ("job_id", Json::u64(job_id)),
        ]))?;
        let event = self.expect_ev("job_status")?;
        Ok(JobStatusReply {
            job_id: event
                .get("job_id")
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol("job_status without job_id".into()))?,
            state: event
                .get("state")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("job_status without state".into()))?
                .to_string(),
            ok: event.get("ok").and_then(Json::as_bool),
            degraded: event.get("degraded").and_then(Json::as_bool),
            checksum: event
                .get("checksum")
                .and_then(Json::as_str)
                .map(str::to_string),
            error: event
                .get("error")
                .and_then(Json::as_str)
                .map(str::to_string),
            recovered: event
                .get("recovered")
                .and_then(Json::as_bool)
                .unwrap_or(false),
        })
    }

    /// Cancels one job by id. Only jobs submitted by this connection's
    /// tenant are cancellable; a `cancelling` outcome means the job is
    /// running and its `done` event (with `state:"cancelled"`) follows
    /// on the submitting connection.
    pub fn cancel(&mut self, job_id: u64) -> Result<CancelReply, ClientError> {
        self.send_line(&Json::obj([
            ("op", Json::str("cancel")),
            ("job_id", Json::u64(job_id)),
        ]))?;
        let event = self.expect_ev("cancel")?;
        Ok(CancelReply {
            job_id: event
                .get("job_id")
                .and_then(Json::as_u64)
                .ok_or_else(|| ClientError::Protocol("cancel without job_id".into()))?,
            outcome: event
                .get("outcome")
                .and_then(Json::as_str)
                .ok_or_else(|| ClientError::Protocol("cancel without outcome".into()))?
                .to_string(),
            state: event
                .get("state")
                .and_then(Json::as_str)
                .map(str::to_string),
        })
    }

    /// Blocks until `job_id`'s `done` event arrives (tolerating any
    /// interleaved events for other jobs) and returns it.
    pub fn wait_done(&mut self, job_id: u64) -> Result<DoneEvent, ClientError> {
        loop {
            if let Some(done) = self.parked_done.remove(&job_id) {
                return Ok(done);
            }
            let event = self.read_event()?;
            match event.get("ev").and_then(Json::as_str) {
                Some("status") => self.record_status(&event),
                Some("done") => {
                    let done = DoneEvent::from_json(&event)?;
                    self.last_event = Some(format!("done job {}", done.job_id));
                    self.parked_done.insert(done.job_id, done);
                }
                Some(other) => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected {other:?} event while waiting for job {job_id}"
                    )))
                }
                None => {
                    return Err(ClientError::Protocol(format!(
                        "event without 'ev': {}",
                        event.dump()
                    )))
                }
            }
        }
    }

    /// The distinct status states seen for `job_id`, in order.
    pub fn status_trace(&self, job_id: u64) -> &[String] {
        self.status_trace.get(&job_id).map_or(&[], Vec::as_slice)
    }

    /// Fetches the `stats` event (service aggregate + per-tenant).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("stats"))]))?;
        self.expect_ev("stats")
    }

    /// Validates a spec server-side; returns the normalized form.
    pub fn validate(&mut self, spec: Json) -> Result<Json, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("validate")), ("spec", spec)]))?;
        let event = self.expect_ev("valid")?;
        event
            .get("spec")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("valid without spec".into()))
    }

    /// Fetches the daemon's job-spec schema.
    pub fn schema(&mut self) -> Result<Json, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("schema"))]))?;
        let event = self.expect_ev("schema")?;
        event
            .get("spec")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("schema without spec".into()))
    }

    /// Asks the daemon to drain and shut down; blocks until every
    /// admitted job finishes, then returns the final service stats
    /// object. Jobs submitted on this connection get their `done`
    /// events parked as usual, so `wait_done` still works afterwards.
    pub fn drain(&mut self) -> Result<Json, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("drain"))]))?;
        let event = self.expect_ev("drained")?;
        event
            .get("service")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("drained without service".into()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_line(&Json::obj([("op", Json::str("ping"))]))?;
        self.expect_ev("pong").map(|_| ())
    }

    /// Sends raw bytes down the socket — for protocol-robustness tests
    /// that need to speak garbage.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.reader.get_mut().write_all(bytes)?;
        Ok(())
    }

    /// Reads one event without interpretation — paired with
    /// [`Client::send_raw_bytes`] in robustness tests.
    pub fn read_raw_event(&mut self) -> Result<Json, ClientError> {
        self.read_event()
    }
}
