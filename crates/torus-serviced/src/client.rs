//! Client library for the daemon's wire protocol.
//!
//! One [`Client`] owns one connection. Because `submit` streams
//! (`accepted` now, `status`/`done` later) while other requests are
//! strict request/response, events for in-flight jobs can interleave
//! with the reply the caller is waiting for. The client routes instead
//! of assuming order: `status` events accumulate in a per-job trace,
//! `done` events park in a buffer until [`Client::wait_done`] claims
//! them, and everything else is handed to whichever call is pending.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::Json;
use crate::spec::JobSpec;

/// How long a read may block before the client gives up on the daemon.
/// Generous — drains of deep queues legitimately take a while — but
/// finite, so a wedged daemon fails a test instead of hanging it.
const READ_TIMEOUT: Duration = Duration::from_secs(120);

/// The final `done` event for one job, decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DoneEvent {
    /// Engine-assigned job id.
    pub job_id: u64,
    /// `true` when the job finished without error.
    pub ok: bool,
    /// `true` when the job completed in degraded mode (dead nodes
    /// quarantined, survivors exchanged).
    pub degraded: bool,
    /// The runtime's own end-to-end verification verdict.
    pub verified: bool,
    /// Whether the exchange plan came from the engine's cache.
    pub cache_hit: bool,
    /// Bytes the exchange put on the (simulated) wire.
    pub wire_bytes: u64,
    /// FNV-1a 64 digest of the delivered blocks, hex; `None` for
    /// degraded or failed runs.
    pub checksum: Option<String>,
    /// Failure description when `ok` is false.
    pub error: Option<String>,
}

impl DoneEvent {
    fn from_json(event: &Json) -> Result<Self, ClientError> {
        let field = |k: &str| {
            event
                .get(k)
                .ok_or_else(|| ClientError::Protocol(format!("done event missing {k:?}")))
        };
        Ok(Self {
            job_id: field("job_id")?
                .as_u64()
                .ok_or_else(|| ClientError::Protocol("done.job_id not a u64".into()))?,
            ok: field("ok")?.as_bool().unwrap_or(false),
            degraded: field("degraded")?.as_bool().unwrap_or(false),
            verified: field("verified")?.as_bool().unwrap_or(false),
            cache_hit: field("cache_hit")?.as_bool().unwrap_or(false),
            wire_bytes: field("wire_bytes")?.as_u64().unwrap_or(0),
            checksum: field("checksum")?.as_str().map(str::to_string),
            error: field("error")?.as_str().map(str::to_string),
        })
    }
}

/// Everything that can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (includes read timeouts).
    Io(io::Error),
    /// The daemon sent something the client could not interpret, or
    /// closed the connection mid-conversation.
    Protocol(String),
    /// The daemon refused the request with a typed reason
    /// (`queue_full`, `tenant_queue_full`, `invalid_spec`,
    /// `draining`, `unauthenticated`).
    Rejected {
        /// Stable machine-readable reason token.
        reason: String,
        /// Human-readable elaboration.
        detail: String,
    },
    /// The daemon answered with an `error` event (malformed request).
    Daemon(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Protocol(m) => write!(f, "protocol error: {m}"),
            Self::Rejected { reason, detail } => {
                write!(f, "rejected ({reason}): {detail}")
            }
            Self::Daemon(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// One connection to a running daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    /// `done` events read while waiting for something else, keyed by
    /// job id, until `wait_done` collects them.
    parked_done: HashMap<u64, DoneEvent>,
    /// Every `status` state seen per job, in arrival order (duplicates
    /// from heartbeats collapsed).
    status_trace: HashMap<u64, Vec<String>>,
}

impl Client {
    /// Connects; does not authenticate (see [`Client::hello`]).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        stream.set_nodelay(true).ok();
        Ok(Self {
            reader: BufReader::new(stream),
            parked_done: HashMap::new(),
            status_trace: HashMap::new(),
        })
    }

    fn send_line(&mut self, request: &Json) -> Result<(), ClientError> {
        let mut line = request.dump();
        line.push('\n');
        self.reader.get_mut().write_all(line.as_bytes())?;
        Ok(())
    }

    /// Reads the next event of any kind.
    fn read_event(&mut self) -> Result<Json, ClientError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ClientError::Protocol("daemon closed the connection".into()));
        }
        crate::json::parse(line.trim_end())
            .map_err(|e| ClientError::Protocol(format!("unparseable event: {e}")))
    }

    /// Reads until a non-streaming event arrives, parking `status` and
    /// `done` events for their jobs along the way.
    fn next_reply(&mut self) -> Result<Json, ClientError> {
        loop {
            let event = self.read_event()?;
            match event.get("ev").and_then(Json::as_str) {
                Some("status") => self.record_status(&event),
                Some("done") => {
                    let done = DoneEvent::from_json(&event)?;
                    self.parked_done.insert(done.job_id, done);
                }
                Some(_) => return Ok(event),
                None => {
                    return Err(ClientError::Protocol(format!(
                        "event without 'ev': {}",
                        event.dump()
                    )))
                }
            }
        }
    }

    fn record_status(&mut self, event: &Json) {
        let (Some(id), Some(state)) = (
            event.get("job_id").and_then(Json::as_u64),
            event.get("state").and_then(Json::as_str),
        ) else {
            return;
        };
        let trace = self.status_trace.entry(id).or_default();
        if trace.last().map(String::as_str) != Some(state) {
            trace.push(state.to_string());
        }
    }

    /// Converts a reply into `Err` when it is `rejected` or `error`.
    fn expect_ev(&mut self, want: &str) -> Result<Json, ClientError> {
        let event = self.next_reply()?;
        match event.get("ev").and_then(Json::as_str) {
            Some(ev) if ev == want => Ok(event),
            Some("rejected") => Err(ClientError::Rejected {
                reason: event
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string(),
                detail: event
                    .get("detail")
                    .and_then(Json::as_str)
                    .unwrap_or_default()
                    .to_string(),
            }),
            Some("error") => Err(ClientError::Daemon(
                event
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            )),
            _ => Err(ClientError::Protocol(format!(
                "expected {want:?}, got {}",
                event.dump()
            ))),
        }
    }

    /// Authenticates the connection as `tenant`. Must precede submits.
    pub fn hello(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.send_line(&Json::obj([
            ("op", Json::str("hello")),
            ("tenant", Json::str(tenant)),
        ]))?;
        self.expect_ev("hello_ok").map(|_| ())
    }

    /// Submits a job, returning its id once the daemon accepts it. The
    /// job then runs asynchronously; collect it with
    /// [`Client::wait_done`].
    pub fn submit(&mut self, spec: &JobSpec) -> Result<u64, ClientError> {
        self.submit_raw(spec.to_json())
    }

    /// Submits a raw spec object verbatim — lets tests send invalid
    /// specs through the real admission path.
    pub fn submit_raw(&mut self, spec: Json) -> Result<u64, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("submit")), ("spec", spec)]))?;
        let event = self.expect_ev("accepted")?;
        event
            .get("job_id")
            .and_then(Json::as_u64)
            .ok_or_else(|| ClientError::Protocol("accepted without job_id".into()))
    }

    /// Blocks until `job_id`'s `done` event arrives (tolerating any
    /// interleaved events for other jobs) and returns it.
    pub fn wait_done(&mut self, job_id: u64) -> Result<DoneEvent, ClientError> {
        loop {
            if let Some(done) = self.parked_done.remove(&job_id) {
                return Ok(done);
            }
            let event = self.read_event()?;
            match event.get("ev").and_then(Json::as_str) {
                Some("status") => self.record_status(&event),
                Some("done") => {
                    let done = DoneEvent::from_json(&event)?;
                    self.parked_done.insert(done.job_id, done);
                }
                Some(other) => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected {other:?} event while waiting for job {job_id}"
                    )))
                }
                None => {
                    return Err(ClientError::Protocol(format!(
                        "event without 'ev': {}",
                        event.dump()
                    )))
                }
            }
        }
    }

    /// The distinct status states seen for `job_id`, in order.
    pub fn status_trace(&self, job_id: u64) -> &[String] {
        self.status_trace.get(&job_id).map_or(&[], Vec::as_slice)
    }

    /// Fetches the `stats` event (service aggregate + per-tenant).
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("stats"))]))?;
        self.expect_ev("stats")
    }

    /// Validates a spec server-side; returns the normalized form.
    pub fn validate(&mut self, spec: Json) -> Result<Json, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("validate")), ("spec", spec)]))?;
        let event = self.expect_ev("valid")?;
        event
            .get("spec")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("valid without spec".into()))
    }

    /// Fetches the daemon's job-spec schema.
    pub fn schema(&mut self) -> Result<Json, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("schema"))]))?;
        let event = self.expect_ev("schema")?;
        event
            .get("spec")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("schema without spec".into()))
    }

    /// Asks the daemon to drain and shut down; blocks until every
    /// admitted job finishes, then returns the final service stats
    /// object. Jobs submitted on this connection get their `done`
    /// events parked as usual, so `wait_done` still works afterwards.
    pub fn drain(&mut self) -> Result<Json, ClientError> {
        self.send_line(&Json::obj([("op", Json::str("drain"))]))?;
        let event = self.expect_ev("drained")?;
        event
            .get("service")
            .cloned()
            .ok_or_else(|| ClientError::Protocol("drained without service".into()))
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.send_line(&Json::obj([("op", Json::str("ping"))]))?;
        self.expect_ev("pong").map(|_| ())
    }

    /// Sends raw bytes down the socket — for protocol-robustness tests
    /// that need to speak garbage.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.reader.get_mut().write_all(bytes)?;
        Ok(())
    }

    /// Reads one event without interpretation — paired with
    /// [`Client::send_raw_bytes`] in robustness tests.
    pub fn read_raw_event(&mut self) -> Result<Json, ClientError> {
        self.read_event()
    }
}
