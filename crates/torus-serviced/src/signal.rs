//! SIGTERM hookup without a signal-handling dependency.
//!
//! The daemon's graceful-drain contract is "SIGTERM behaves like a
//! `drain` request". All a signal handler can safely do is set a flag,
//! so that is all this module does: `install()` registers a handler
//! that stores into a process-global atomic, and the daemon's accept
//! loop polls [`triggered`]. The libc `signal` entry point is declared
//! directly — the container has no signal crate, and one `extern "C"`
//! line beats carrying one.

use std::sync::atomic::{AtomicBool, Ordering};

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

/// `SIGTERM` on every platform Linux CI runs this on.
#[cfg(unix)]
const SIGTERM: i32 = 15;

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn raise(signum: i32) -> i32;
}

#[cfg(unix)]
extern "C" fn on_sigterm(_signum: i32) {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGTERM-sets-a-flag handler. Safe to call repeatedly.
/// On non-unix targets this is a no-op ([`triggered`] then only fires
/// via [`trigger_for_test`]).
pub fn install() {
    #[cfg(unix)]
    unsafe {
        signal(SIGTERM, on_sigterm as *const () as usize);
    }
}

/// Whether a SIGTERM has arrived since [`install`].
pub fn triggered() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}

/// Resets the flag — for tests that exercise the drain path twice.
pub fn reset() {
    TERM_REQUESTED.store(false, Ordering::SeqCst);
}

/// Delivers a real SIGTERM to this process (unix) or just sets the flag
/// (elsewhere). Used by the drain tests; with the handler installed the
/// process survives and the daemon sees [`triggered`].
pub fn raise_sigterm() {
    #[cfg(unix)]
    unsafe {
        raise(SIGTERM);
    }
    #[cfg(not(unix))]
    trigger_for_test();
}

/// Sets the flag directly, bypassing the OS. For non-unix tests.
pub fn trigger_for_test() {
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_sigterm_sets_flag_and_process_survives() {
        install();
        reset();
        assert!(!triggered());
        raise_sigterm();
        assert!(triggered(), "handler must have caught the signal");
        reset();
    }
}
