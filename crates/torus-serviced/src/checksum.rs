//! End-to-end payload checksums.
//!
//! Shipping every delivered block back over the socket would drown the
//! protocol in payload bytes, so bit-exactness is proven with a
//! checksum instead: the daemon folds every delivered `(dst, src,
//! payload)` triple into an FNV-1a 64 digest, and the client — which
//! knows the spec's deterministic payload streams — computes the same
//! digest independently. Equal digests mean every block arrived at the
//! right node with the right bytes; the two sides never share payload
//! data, only the 16-hex-digit answer.

use bytes::Bytes;
use torus_runtime::{CollectivePlan, JobOp};
use torus_service::PayloadSpec;

use crate::spec::JobSpec;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fold(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// Digest of an actual delivery set, in the engine's order (ascending
/// destination, each destination's deliveries as the runtime returns
/// them: ascending key — the source node for an all-to-all, the
/// collective key for broadcast/allgather/reduce/etc.).
pub fn delivery_checksum(deliveries: &[Vec<(u32, Bytes)>]) -> u64 {
    let mut hash = FNV_OFFSET;
    for (dst, got) in deliveries.iter().enumerate() {
        for (src, payload) in got {
            fold(&mut hash, &(dst as u32).to_le_bytes());
            fold(&mut hash, &src.to_le_bytes());
            fold(&mut hash, payload);
        }
    }
    hash
}

/// The digest a clean (non-degraded) run of `spec` must produce,
/// computed purely from the spec's deterministic payload streams.
///
/// All-to-all enumerates the `(src != dst)` pair stream directly; a
/// collective replays the plan's serial reference fold
/// ([`CollectivePlan::reference_finals`]) over the same diagonal seed
/// payloads the engine uses, so the digest covers the *reduced* bytes,
/// not just the seeds. Spec validation guarantees the plan and lane
/// checks cannot fail here.
pub fn expected_checksum(spec: &JobSpec) -> u64 {
    let mut hash = FNV_OFFSET;
    match spec.op {
        JobOp::Alltoall => {
            let nn = spec.torus_shape().num_nodes();
            for dst in 0..nn {
                for src in (0..nn).filter(|&s| s != dst) {
                    let payload = match spec.payload {
                        PayloadSpec::Pattern => {
                            torus_runtime::pattern_payload(src, dst, spec.block_bytes)
                        }
                        PayloadSpec::Seeded { seed } => {
                            torus_runtime::seeded_payload(seed, src, dst, spec.block_bytes)
                        }
                    };
                    fold(&mut hash, &dst.to_le_bytes());
                    fold(&mut hash, &src.to_le_bytes());
                    fold(&mut hash, &payload);
                }
            }
        }
        JobOp::Collective(op) => {
            let plan = CollectivePlan::new(&spec.torus_shape(), op)
                .expect("spec validation admits only plannable collective ops");
            let finals = plan
                .reference_finals(spec.block_bytes, |id| {
                    spec.payload.key_payload(id, spec.block_bytes).to_vec()
                })
                .expect("spec validation enforces the lane check");
            for (dst, got) in finals.iter().enumerate() {
                for (key, payload) in got {
                    fold(&mut hash, &(dst as u32).to_le_bytes());
                    fold(&mut hash, &key.to_le_bytes());
                    fold(&mut hash, payload);
                }
            }
        }
    }
    hash
}

/// Formats a digest the way the wire protocol carries it.
pub fn to_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_matches_a_synthetic_delivery_set() {
        let spec = JobSpec {
            shape: vec![2, 2],
            block_bytes: 16,
            payload: PayloadSpec::Seeded { seed: 5 },
            ..JobSpec::default()
        };
        // Build the delivery set the engine would produce for a clean
        // 2x2 run: per dst, ascending src, self-pair absent.
        let deliveries: Vec<Vec<(u32, Bytes)>> = (0..4)
            .map(|dst| {
                (0..4)
                    .filter(|&src| src != dst)
                    .map(|src| (src, torus_runtime::seeded_payload(5, src, dst, 16)))
                    .collect()
            })
            .collect();
        assert_eq!(delivery_checksum(&deliveries), expected_checksum(&spec));
    }

    #[test]
    fn collective_expected_matches_a_real_runtime_run() {
        use torus_runtime::{CollectiveOp, CollectiveRuntime, Dtype, ReduceOp, RuntimeConfig};
        let ops = [
            CollectiveOp::Broadcast { root: 2 },
            CollectiveOp::Allgather,
            CollectiveOp::Allreduce {
                op: ReduceOp::Sum,
                dtype: Dtype::U64,
            },
            CollectiveOp::Reduce {
                root: 1,
                op: ReduceOp::Max,
                dtype: Dtype::F32,
            },
        ];
        for op in ops {
            let spec = JobSpec {
                shape: vec![2, 2],
                block_bytes: 16,
                payload: PayloadSpec::Seeded { seed: 9 },
                op: torus_runtime::JobOp::Collective(op),
                ..JobSpec::default()
            };
            let runtime = CollectiveRuntime::new(
                &spec.torus_shape(),
                op,
                RuntimeConfig::default()
                    .with_workers(2)
                    .with_block_bytes(spec.block_bytes),
            )
            .unwrap();
            let (_, deliveries) = runtime
                .run_with_payloads(|id| spec.payload.key_payload(id, spec.block_bytes))
                .unwrap();
            assert_eq!(
                delivery_checksum(&deliveries),
                expected_checksum(&spec),
                "digest mismatch for {op:?}"
            );
        }
    }

    #[test]
    fn digest_is_sensitive_to_bytes_source_and_placement() {
        let base: Vec<Vec<(u32, Bytes)>> = (0..4)
            .map(|dst| {
                (0..4u32)
                    .filter(|&src| src != dst)
                    .map(|src| (src, torus_runtime::pattern_payload(src, dst, 8)))
                    .collect()
            })
            .collect();
        let good = delivery_checksum(&base);

        let mut wrong_bytes = base.clone();
        let flipped: Vec<u8> = wrong_bytes[1][0].1.iter().map(|b| b ^ 1).collect();
        wrong_bytes[1][0].1 = Bytes::from(flipped);
        assert_ne!(delivery_checksum(&wrong_bytes), good);

        let mut wrong_src = base.clone();
        wrong_src[1][0].0 = 3;
        assert_ne!(delivery_checksum(&wrong_src), good);

        let mut swapped = base;
        swapped.swap(0, 2);
        assert_ne!(delivery_checksum(&swapped), good);
    }

    #[test]
    fn hex_form_is_fixed_width() {
        assert_eq!(to_hex(0x1a), "000000000000001a");
        assert_eq!(to_hex(u64::MAX), "ffffffffffffffff");
    }
}
