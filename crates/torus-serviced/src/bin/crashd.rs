//! A minimal journaling daemon runner for the crash-recovery harness.
//!
//! The integration tests (`tests/crash_recovery.rs`) spawn this binary
//! via `CARGO_BIN_EXE_crashd`, SIGKILL it mid-batch, and restart it on
//! the same `--journal-dir` to exercise replay. It is deliberately a
//! thin shell around [`Daemon`]: parse a few flags, write the bound
//! port atomically to `--port-file`, serve until drained, remove the
//! port file on the clean exit path (a SIGKILL leaves it behind — the
//! harness treats a stale file's port as possibly dead and retries).

use std::time::Duration;

use torus_service::EngineConfig;
use torus_serviced::{Daemon, DaemonConfig, JournalConfig};

fn usage() -> ! {
    eprintln!(
        "usage: crashd --journal-dir DIR [--port-file PATH] [--pool N] \
         [--drivers N] [--queue-depth N] [--status-poll-ms N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut journal_dir: Option<String> = None;
    let mut port_file: Option<String> = None;
    let mut pool = 4usize;
    let mut drivers = 2usize;
    let mut queue_depth = 256usize;
    let mut status_poll_ms = 1u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |slot: &mut String| match args.next() {
            Some(v) => *slot = v,
            None => usage(),
        };
        let mut value = String::new();
        match arg.as_str() {
            "--journal-dir" => {
                take(&mut value);
                journal_dir = Some(value);
            }
            "--port-file" => {
                take(&mut value);
                port_file = Some(value);
            }
            "--pool" => {
                take(&mut value);
                pool = value.parse().unwrap_or_else(|_| usage());
            }
            "--drivers" => {
                take(&mut value);
                drivers = value.parse().unwrap_or_else(|_| usage());
            }
            "--queue-depth" => {
                take(&mut value);
                queue_depth = value.parse().unwrap_or_else(|_| usage());
            }
            "--status-poll-ms" => {
                take(&mut value);
                status_poll_ms = value.parse().unwrap_or_else(|_| usage());
            }
            _ => usage(),
        }
    }
    let Some(journal_dir) = journal_dir else {
        usage();
    };

    let config = DaemonConfig {
        engine: EngineConfig::default()
            .with_pool_size(pool)
            .with_drivers(drivers)
            .with_queue_depth(queue_depth),
        status_poll: Duration::from_millis(status_poll_ms),
        journal: Some(JournalConfig::new(&journal_dir)),
        ..DaemonConfig::default()
    };
    let daemon = match Daemon::bind(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("crashd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    let addr = daemon.local_addr().expect("bound address");
    if let Some(path) = &port_file {
        // tmp + rename: a reader never sees a half-written port.
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, format!("{}\n", addr.port())).expect("write port file");
        std::fs::rename(&tmp, path).expect("publish port file");
    }
    eprintln!("crashd: listening on {addr}");
    let stats = daemon.run();
    eprintln!(
        "crashd: drained with {} completed / {} failed",
        stats.jobs_completed, stats.jobs_failed
    );
    if let Some(path) = &port_file {
        let _ = std::fs::remove_file(path);
    }
}
