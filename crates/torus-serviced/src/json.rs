//! A hand-rolled JSON value, parser, and writer.
//!
//! The workspace's vendored `serde_json` is an offline stub (its
//! `to_string` emits `{}` and its `from_str` always errs), so the wire
//! protocol cannot lean on it. This module is a small, real JSON
//! implementation: a recursive-descent parser with a depth cap and an
//! escaping writer. Objects preserve insertion order (a `Vec` of pairs),
//! which keeps output deterministic for tests and diffing.

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts. Protocol messages are
/// nearly flat; the cap turns pathological `[[[[…]]]]` input into a
/// clean error instead of a stack overflow.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (IEEE double, like real `serde_json`'s default).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from anything convertible to f64 losslessly
    /// enough for the protocol (ids and counters stay exact to 2^53).
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// A u64 counter as a JSON number. Values above 2^53 would round;
    /// the protocol's counters (job ids, byte totals) stay far below.
    pub fn u64(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Object field lookup; `None` on non-objects and missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, rejecting fractions,
    /// negatives, and magnitudes above 2^53 (where doubles go lossy).
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n)).then_some(n as u64)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes to compact JSON text (no added whitespace).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                } else {
                    // JSON has no Inf/NaN; emit null like serde_json.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", expected as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_protocol_shapes() {
        let v = Json::obj([
            ("op", Json::str("submit")),
            (
                "spec",
                Json::obj([
                    ("shape", Json::Arr(vec![Json::u64(4), Json::u64(4)])),
                    ("block_bytes", Json::u64(64)),
                    ("seed", Json::u64(7)),
                ]),
            ),
            ("flag", Json::Bool(true)),
            ("note", Json::Null),
        ]);
        let text = v.dump();
        assert_eq!(parse(&text).unwrap(), v);
        assert!(text.contains("\"op\":\"submit\""));
    }

    #[test]
    fn parses_whitespace_numbers_and_escapes() {
        let v = parse(" { \"a\" : [ -1.5e2 , 0, \"x\\n\\u0041\\ud83d\\ude00\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(-150.0));
        assert_eq!(arr[1].as_u64(), Some(0));
        assert_eq!(arr[2].as_str(), Some("x\nA😀"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "nul",
            "truex",
            "\"unterminated",
            "{\"a\" 1}",
            "01x",
            "[1 2]",
            "\u{7f}",
            "{\"k\":\"\\q\"}",
            "1 2",
            "\"\\ud800\"",
        ] {
            assert!(parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn depth_cap_rejects_deep_nesting_cleanly() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("deep"));
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn escaped_output_reparses() {
        let nasty = "quote\" back\\ nl\n tab\t ctrl\u{1} unicode\u{2603}";
        let v = Json::str(nasty);
        assert_eq!(parse(&v.dump()).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e17).as_u64(), None);
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
    }
}
