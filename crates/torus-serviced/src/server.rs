//! The daemon: a blocking TCP accept loop in front of a fixed pool of
//! poll-reactor threads ([`crate::reactor`]). No async runtime — the
//! concurrency story is the same hand-rolled threads-and-locks the rest
//! of the workspace uses.
//!
//! ## Threading model
//!
//! * **Accept loop** (the thread calling [`Daemon::run`]): nonblocking
//!   accept + short sleep, so it can poll the drain/SIGTERM flags.
//!   Accepted connections are assigned round-robin to…
//! * **A fixed pool of reactor threads** (`reactor_threads`, default
//!   4): each drives all reads, request handling, job-status streaming,
//!   and writes for its connections over non-blocking sockets and
//!   `poll(2)`. Connection count and in-flight job count add *no*
//!   threads — total daemon threads are O(reactor pool + engine
//!   drivers + worker pool), plus the journal's single flusher.
//! * **Transient drain helper**: the first `drain` request spawns one
//!   short-lived helper thread that waits out the engine drain and
//!   publishes the final stats, so the reactors keep serving every
//!   other connection meanwhile. Repeated drains share that helper —
//!   they park for the published verdict rather than each adding a
//!   thread, keeping thread count a function of configuration, never
//!   of client behavior.
//!
//! ## Durability
//!
//! With a journal configured, no client hears `accepted` before its
//! admission record is fsync'd. Admissions arriving close together
//! share one group-commit fsync (see [`crate::journal`] and the
//! batching notes in [`crate::reactor`]); if the journal cannot make an
//! admission durable the job is cancelled and the client receives a
//! typed `journal_unavailable` rejection instead of an acknowledgment
//! the daemon could not honor.
//!
//! ## Drain
//!
//! A `drain` request (or SIGTERM, via [`crate::signal`]) stops
//! admission and lets every admitted job finish: the engine's own
//! shutdown drains the queue, the reactors deliver each job's `done`,
//! the drain caller gets the final aggregate stats, and [`Daemon::run`]
//! returns them. New submissions during the drain are rejected with
//! reason `"draining"`. Concurrent drains are safe — the engine's
//! shutdown snapshot is taken exactly once.

use std::collections::{HashMap, VecDeque};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use torus_service::{
    Engine, EngineConfig, JobEvent, JobHandle, JobResult, JobStatus, ServiceStats,
};

use crate::checksum;
use crate::journal::{Journal, JournalConfig};
use crate::json::Json;
use crate::proto;
use crate::reactor::{self, Inject, ReactorHandle};
use crate::signal;
use crate::spec::JobSpec;

/// Daemon sizing and behavior knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Daemon::local_addr`]). Default `127.0.0.1:0`.
    pub addr: String,
    /// The engine the daemon fronts.
    pub engine: EngineConfig,
    /// How often reactors poll tracked job status (and the accept loop
    /// polls shutdown).
    pub status_poll: Duration,
    /// Resend the current status every this many polls, so a client
    /// watching a long-queued job sees liveness, not silence.
    pub heartbeat_polls: u32,
    /// Reactor threads driving the connection plane. Default 4.
    pub reactor_threads: usize,
    /// Write-ahead admission journal. `Some` makes every admission
    /// durable (fsync'd before the client hears `accepted`) and lets
    /// [`Daemon::bind`] recover accepted-but-unfinished jobs from a
    /// previous process's journal directory. Default: none.
    pub journal: Option<JournalConfig>,
    /// Close connections with no live jobs, no pending replies, and no
    /// traffic for this long, so slow-loris clients cannot pin reactor
    /// slots forever. Default: none (connections idle indefinitely).
    pub idle_timeout: Option<Duration>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            status_poll: Duration::from_millis(2),
            heartbeat_polls: 250,
            reactor_threads: 4,
            journal: None,
            idle_timeout: None,
        }
    }
}

/// How many ways the job registry is sharded (by job id), so `status`
/// lookups, admissions, and driver-side finish transitions for
/// different jobs don't serialize on one mutex.
const REG_SHARDS: usize = 16;

/// Terminal entries kept per registry shard. A long-lived daemon under
/// millions of jobs holds at most `REG_SHARDS *
/// TERMINAL_CAP_PER_SHARD` terminal records; the oldest are evicted
/// (their `status` answers become `"unknown"`), bounding memory where
/// the registry previously grew forever.
const TERMINAL_CAP_PER_SHARD: usize = 4096;

/// A terminal job's recorded outcome — everything `status` needs
/// without keeping the full result (deliveries included) alive.
pub(crate) struct Terminal {
    pub(crate) ok: bool,
    pub(crate) degraded: bool,
    pub(crate) checksum: Option<String>,
    pub(crate) error: Option<String>,
    /// Terminal state label: `"completed"`, `"failed"`, `"cancelled"`,
    /// or `"deadline_exceeded"`.
    pub(crate) state: String,
    /// Owning tenant; `None` when reconstructed from a journal replay
    /// (pre-crash `done` records do not carry the tenant).
    pub(crate) tenant: Option<String>,
    /// `true` when the outcome was reconstructed from the journal
    /// rather than executed by this process.
    pub(crate) recovered: bool,
}

/// A live registry entry: the engine handle plus the owning tenant, so
/// the `cancel` op can be scoped without a second lookup table.
struct LiveEntry {
    handle: JobHandle,
    tenant: Arc<str>,
}

struct RegShard {
    /// Jobs admitted or replayed by this process, not yet terminal.
    live: HashMap<u64, LiveEntry>,
    /// Terminal outcomes, bounded by [`TERMINAL_CAP_PER_SHARD`].
    terminal: HashMap<u64, Terminal>,
    /// Insertion order of `terminal`, for eviction.
    order: VecDeque<u64>,
}

/// What a `status` lookup found, cloned out of the registry so no
/// shard lock is held while the caller inspects (or waits on) it.
enum Lookup {
    Unknown,
    Live(JobHandle),
    Terminal {
        ok: bool,
        degraded: bool,
        checksum: Option<String>,
        error: Option<String>,
        state: String,
        recovered: bool,
    },
}

/// What a tenant-scoped `cancel` lookup found.
pub(crate) enum CancelLookup {
    /// No job with this id (or its terminal record was evicted).
    Unknown,
    /// The job exists but belongs to a different tenant.
    Forbidden,
    /// The job is live (queued or running) and owned by the caller.
    Live,
    /// The job is already terminal; carries its state label. A replayed
    /// terminal with no recorded tenant is reported here rather than
    /// guessed at — cancelling a finished job is a no-op either way.
    Terminal(String),
}

/// The sharded job registry: every id the daemon can answer `status`
/// for. Live entries move to the bounded terminal index when the
/// engine's event hook reports them finished.
pub(crate) struct Registry {
    shards: Vec<Mutex<RegShard>>,
}

impl Registry {
    fn new() -> Self {
        Self {
            shards: (0..REG_SHARDS)
                .map(|_| {
                    Mutex::new(RegShard {
                        live: HashMap::new(),
                        terminal: HashMap::new(),
                        order: VecDeque::new(),
                    })
                })
                .collect(),
        }
    }

    fn shard(&self, job_id: u64) -> &Mutex<RegShard> {
        &self.shards[(job_id % REG_SHARDS as u64) as usize]
    }

    /// Registers a job the engine just admitted. A fast job can finish
    /// (and its hook fire) before this runs; the terminal entry then
    /// wins and the stale handle is not inserted.
    pub(crate) fn register_live(&self, handle: JobHandle, tenant: &str) {
        let mut shard = lk(self.shard(handle.id()));
        if shard.terminal.contains_key(&handle.id()) {
            return;
        }
        shard.live.insert(
            handle.id(),
            LiveEntry {
                handle,
                tenant: Arc::from(tenant),
            },
        );
    }

    /// Moves a job to the terminal index (evicting the oldest terminal
    /// entry past the per-shard cap) and drops its live handle.
    pub(crate) fn finish(&self, job_id: u64, term: Terminal) {
        let mut shard = lk(self.shard(job_id));
        shard.live.remove(&job_id);
        if shard.terminal.insert(job_id, term).is_none() {
            shard.order.push_back(job_id);
            if shard.order.len() > TERMINAL_CAP_PER_SHARD {
                if let Some(evicted) = shard.order.pop_front() {
                    shard.terminal.remove(&evicted);
                }
            }
        }
    }

    fn lookup(&self, job_id: u64) -> Lookup {
        let shard = lk(self.shard(job_id));
        if let Some(entry) = shard.live.get(&job_id) {
            return Lookup::Live(entry.handle.clone());
        }
        match shard.terminal.get(&job_id) {
            Some(t) => Lookup::Terminal {
                ok: t.ok,
                degraded: t.degraded,
                checksum: t.checksum.clone(),
                error: t.error.clone(),
                state: t.state.clone(),
                recovered: t.recovered,
            },
            None => Lookup::Unknown,
        }
    }

    /// Tenant-scoped lookup for the `cancel` op: only the owning tenant
    /// may cancel a live job. Terminal replays with no recorded tenant
    /// answer as terminal (the op is a no-op there regardless).
    pub(crate) fn cancel_lookup(&self, job_id: u64, tenant: &str) -> CancelLookup {
        let shard = lk(self.shard(job_id));
        if let Some(entry) = shard.live.get(&job_id) {
            return if entry.tenant.as_ref() == tenant {
                CancelLookup::Live
            } else {
                CancelLookup::Forbidden
            };
        }
        match shard.terminal.get(&job_id) {
            Some(t) => match &t.tenant {
                Some(owner) if owner != tenant => CancelLookup::Forbidden,
                _ => CancelLookup::Terminal(t.state.clone()),
            },
            None => CancelLookup::Unknown,
        }
    }

    /// `(live, terminal)` entry counts across all shards, for `stats`.
    pub(crate) fn counts(&self) -> (usize, usize) {
        let mut live = 0;
        let mut terminal = 0;
        for shard in &self.shards {
            let shard = lk(shard);
            live += shard.live.len();
            terminal += shard.terminal.len();
        }
        (live, terminal)
    }
}

pub(crate) struct DaemonShared {
    pub(crate) engine: Engine,
    /// Admission stopped (drain op or SIGTERM); accept loop exits.
    pub(crate) draining: AtomicBool,
    /// Engine fully drained; reactors flush final events and exit.
    pub(crate) closed: AtomicBool,
    pub(crate) status_poll: Duration,
    pub(crate) heartbeat_polls: u32,
    pub(crate) reactor_threads: usize,
    /// Reap connections idle (no live jobs, no buffered traffic) past
    /// this, when configured.
    pub(crate) idle_timeout: Option<Duration>,
    /// Connections the reactors closed for idling past `idle_timeout`.
    pub(crate) idle_reaped: AtomicU64,
    /// The write-ahead admission journal, when configured.
    pub(crate) journal: Option<Arc<Journal>>,
    /// Every job id this daemon can answer `status` for.
    pub(crate) registry: Arc<Registry>,
    /// Set by the first `drain` request to claim the (single) helper
    /// thread; repeated drains wait on its published verdict instead of
    /// each adding a thread blocked on the engine's final-stats lock.
    pub(crate) drain_helper_spawned: AtomicBool,
    /// The final `drained` event, published once by the drain helper;
    /// every connection owed a drain reply is answered from it.
    pub(crate) drained_event: Mutex<Option<Json>>,
    /// Every reactor's handle, so the drain helper can wake the whole
    /// pool when the verdict lands. Populated by [`Daemon::run`].
    pub(crate) reactors: Mutex<Vec<Arc<ReactorHandle>>>,
}

fn lk<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<DaemonShared>,
}

impl Daemon {
    /// Binds the listener and starts the engine (drivers spawn now;
    /// they idle until jobs arrive).
    ///
    /// With a journal configured this also replays the journal
    /// directory: jobs `accepted` but never `done` by a previous
    /// process are re-enqueued under their original ids (exactly once —
    /// a recorded `done` suppresses the re-run), and terminal pre-crash
    /// ids become answerable via the `status` op. A recovered job that
    /// cannot be re-enqueued (unparseable spec, or the engine refuses
    /// the resubmission) is closed out with a `done{ok:false}` record
    /// rather than silently dropped, so it never vanishes without a
    /// terminal answer. A corrupt journal fails the bind with
    /// [`ErrorKind::InvalidData`] rather than silently dropping
    /// records.
    pub fn bind(config: DaemonConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let registry = Arc::new(Registry::new());
        let mut engine_config = config.engine;
        let opened = match config.journal {
            Some(journal_config) => {
                let (journal, recovery) = Journal::open(journal_config)
                    .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
                Some((Arc::new(journal), recovery))
            }
            None => None,
        };
        // The hook runs on driver threads at every job start/finish:
        // journal records first (when journaling), then the registry's
        // live→terminal transition, so `status` stops holding full job
        // results for the daemon's lifetime.
        let hook_journal = opened.as_ref().map(|(journal, _)| Arc::clone(journal));
        let hook_registry = Arc::clone(&registry);
        engine_config = engine_config.with_event_hook(Arc::new(move |event| {
            if let Some(journal) = &hook_journal {
                journal_hook(journal, &event);
            }
            registry_hook(&hook_registry, &event);
        }));
        let engine = Engine::new(engine_config);
        let journal = opened.map(|(journal, recovery)| {
            engine.reserve_ids_through(recovery.max_job_id);
            for done in recovery.terminal {
                registry.finish(
                    done.job_id,
                    Terminal {
                        ok: done.ok,
                        degraded: done.degraded,
                        checksum: done.checksum,
                        error: done.error,
                        state: done.state,
                        tenant: None,
                        recovered: true,
                    },
                );
            }
            for job in recovery.pending {
                let resubmitted = JobSpec::from_json(&job.spec)
                    .map_err(|e| format!("recovered spec invalid: {e}"))
                    .and_then(|spec| {
                        engine
                            .resubmit_op_as(
                                &job.tenant,
                                job.job_id,
                                spec.torus_shape(),
                                spec.op,
                                spec.payload,
                                spec.runtime_config(),
                                spec.deadline,
                            )
                            .map_err(|e| format!("recovery resubmit failed: {e}"))
                    });
                match resubmitted {
                    Ok(handle) => registry.register_live(handle, &job.tenant),
                    Err(error) => {
                        // A journaled-accepted job must never vanish:
                        // close it out with a terminal record (so it
                        // stops replaying forever) and answer `status`
                        // with the failure.
                        let _ = journal.record_done(job.job_id, false, false, None, Some(&error));
                        registry.finish(
                            job.job_id,
                            Terminal {
                                ok: false,
                                degraded: false,
                                checksum: None,
                                error: Some(error),
                                state: "failed".to_string(),
                                tenant: Some(job.tenant.clone()),
                                recovered: true,
                            },
                        );
                    }
                }
            }
            journal
        });
        Ok(Self {
            listener,
            shared: Arc::new(DaemonShared {
                engine,
                draining: AtomicBool::new(false),
                closed: AtomicBool::new(false),
                status_poll: config.status_poll,
                heartbeat_polls: config.heartbeat_polls.max(1),
                reactor_threads: config.reactor_threads.clamp(1, 64),
                idle_timeout: config.idle_timeout,
                idle_reaped: AtomicU64::new(0),
                journal,
                registry,
                drain_helper_spawned: AtomicBool::new(false),
                drained_event: Mutex::new(None),
                reactors: Mutex::new(Vec::new()),
            }),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Requests a drain as if a client had sent `drain` — used to stop
    /// a daemon from the thread that owns it.
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Serves until drained (by a `drain` request, [`request_drain`],
    /// or SIGTERM), then returns the final aggregate stats. Installs
    /// the SIGTERM flag handler and spawns the reactor pool.
    ///
    /// [`request_drain`]: Daemon::request_drain
    pub fn run(self) -> ServiceStats {
        signal::install();
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let mut reactors: Vec<Arc<ReactorHandle>> = Vec::new();
        let mut reactor_threads: Vec<JoinHandle<()>> = Vec::new();
        for i in 0..self.shared.reactor_threads {
            let handle = Arc::new(ReactorHandle::new().expect("reactor wake pipe"));
            let shared = Arc::clone(&self.shared);
            let thread_handle = Arc::clone(&handle);
            reactor_threads.push(
                std::thread::Builder::new()
                    .name(format!("serviced-reactor-{i}"))
                    .spawn(move || reactor::reactor_loop(&shared, &thread_handle))
                    .expect("spawn reactor thread"),
            );
            reactors.push(handle);
        }
        // Registered before the first accept, so a drain helper always
        // sees the full pool when it wakes the reactors.
        *lk(&self.shared.reactors) = reactors.clone();
        let mut next_conn_id = 0u64;
        loop {
            if signal::triggered() {
                self.shared.draining.store(true, Ordering::SeqCst);
            }
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let target = (next_conn_id % reactors.len() as u64) as usize;
                    next_conn_id += 1;
                    reactors[target].send(Inject::Conn(stream));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(self.shared.status_poll.max(Duration::from_millis(2)));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        // Idempotent: if a drain request already shut the engine down,
        // this returns the same frozen snapshot. Every job is terminal
        // once it returns, so the reactors' final passes deliver all
        // remaining `done` events.
        let stats = self.shared.engine.shutdown();
        self.shared.closed.store(true, Ordering::SeqCst);
        for handle in &reactors {
            handle.wake();
        }
        for thread in reactor_threads {
            let _ = thread.join();
        }
        stats
    }

    /// Convenience for tests and embedders: run on a background thread,
    /// returning the bound address and the join handle for the final
    /// stats.
    pub fn spawn(config: DaemonConfig) -> io::Result<(SocketAddr, JoinHandle<ServiceStats>)> {
        let daemon = Self::bind(config)?;
        let addr = daemon.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("serviced-accept".to_string())
            .spawn(move || daemon.run())
            .expect("spawn daemon thread");
        Ok((addr, handle))
    }
}

/// Extracts a terminal result's `(ok, degraded, checksum, error)` the
/// way the wire protocol reports it: the FNV-1a delivery checksum only
/// for clean completions (degraded runs drop dead-node blocks, so their
/// digest intentionally stays absent rather than faking a match).
/// The wire label for a terminal [`JobStatus`].
pub(crate) fn status_label(status: JobStatus) -> &'static str {
    match status {
        JobStatus::Queued => "queued",
        JobStatus::Running => "running",
        JobStatus::Completed => "completed",
        JobStatus::Failed => "failed",
        JobStatus::Cancelled => "cancelled",
        JobStatus::DeadlineExceeded => "deadline_exceeded",
    }
}

fn terminal_fields(result: &JobResult) -> (bool, bool, Option<String>) {
    let report = result.report.as_ref();
    let degraded = report.is_some_and(|r| r.degraded.is_some());
    let checksum = match (&result.deliveries, degraded) {
        (Some(deliveries), false) => {
            Some(checksum::to_hex(checksum::delivery_checksum(deliveries)))
        }
        _ => None,
    };
    (result.error.is_none(), degraded, checksum)
}

/// The engine's event hook on a journaling daemon: every job start and
/// terminal outcome (with its FNV-1a delivery checksum) goes to disk,
/// from the driver thread that owns the transition.
fn journal_hook(journal: &Journal, event: &JobEvent<'_>) {
    match event {
        JobEvent::Started { job_id, .. } => {
            let _ = journal.record_started(*job_id);
        }
        JobEvent::Finished {
            job_id,
            status,
            result,
            ..
        } => {
            let (_, degraded, checksum) = terminal_fields(result);
            let _ = journal.record_done_state(
                *job_id,
                *status == JobStatus::Completed,
                degraded,
                checksum.as_deref(),
                result.error.as_deref(),
                status_label(*status),
            );
        }
    }
}

/// The registry half of the event hook: finished jobs move from the
/// live map to the bounded terminal index, dropping the handle (and the
/// full result it pins) so the registry's memory stays bounded.
fn registry_hook(registry: &Registry, event: &JobEvent<'_>) {
    if let JobEvent::Finished {
        job_id,
        tenant,
        status,
        result,
    } = event
    {
        let (ok, degraded, checksum) = terminal_fields(result);
        registry.finish(
            *job_id,
            Terminal {
                ok,
                degraded,
                checksum,
                error: result.error.clone(),
                state: status_label(*status).to_string(),
                tenant: Some(tenant.to_string()),
                recovered: false,
            },
        );
    }
}

/// Answers a `status` lookup from the registry: live jobs through their
/// handle, terminal jobs (including pre-crash recoveries) from the
/// bounded terminal index. The handle is cloned out of the registry
/// before any blocking inspection, so a slow terminal transition never
/// stalls other connections' lookups.
pub(crate) fn status_reply(shared: &DaemonShared, job_id: u64) -> Json {
    match shared.registry.lookup(job_id) {
        Lookup::Unknown => proto::job_status(job_id, "unknown", None, None, None, None, false),
        Lookup::Terminal {
            ok,
            degraded,
            checksum,
            error,
            state,
            recovered,
        } => proto::job_status(
            job_id,
            &state,
            Some(ok),
            Some(degraded),
            checksum.as_deref(),
            error.as_deref(),
            recovered,
        ),
        Lookup::Live(handle) => match handle.try_status() {
            JobStatus::Queued => proto::job_status(job_id, "queued", None, None, None, None, false),
            JobStatus::Running => {
                proto::job_status(job_id, "running", None, None, None, None, false)
            }
            status => {
                // Terminal, so `wait` returns without blocking; no
                // registry lock is held here.
                let result = handle.wait();
                let (ok, degraded, checksum) = terminal_fields(&result);
                proto::job_status(
                    job_id,
                    status_label(status),
                    Some(ok),
                    Some(degraded),
                    checksum.as_deref(),
                    result.error.as_deref(),
                    false,
                )
            }
        },
    }
}

/// The `done` event: a compact job summary plus the delivery checksum
/// (clean completions only). `status` is the job's terminal status,
/// surfaced as the typed `state` field so clients can tell a cancel or
/// deadline reap apart from a genuine failure.
pub(crate) fn done_event(status: JobStatus, result: &JobResult) -> Json {
    let report = result.report.as_ref();
    let (ok, degraded, checksum) = terminal_fields(result);
    Json::obj([
        ("ev", Json::str("done")),
        ("job_id", Json::u64(result.job_id)),
        ("ok", Json::Bool(ok)),
        ("state", Json::str(status_label(status))),
        ("degraded", Json::Bool(degraded)),
        ("verified", Json::Bool(report.is_some_and(|r| r.verified))),
        ("cache_hit", Json::Bool(result.cache_hit)),
        ("wire_bytes", Json::u64(report.map_or(0, |r| r.wire_bytes))),
        ("checksum", checksum.map_or(Json::Null, Json::str)),
        (
            "error",
            match &result.error {
                Some(e) => Json::str(e.clone()),
                None => Json::Null,
            },
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn term(error: Option<&str>) -> Terminal {
        Terminal {
            ok: error.is_none(),
            degraded: false,
            checksum: None,
            error: error.map(str::to_string),
            state: if error.is_none() {
                "completed".to_string()
            } else {
                "failed".to_string()
            },
            tenant: Some("acme".to_string()),
            recovered: false,
        }
    }

    /// The terminal index is bounded: past the per-shard cap the oldest
    /// outcome is evicted (its `status` becomes `"unknown"`), so a
    /// long-lived daemon's registry cannot grow without bound.
    #[test]
    fn terminal_index_evicts_oldest_past_the_per_shard_cap() {
        let registry = Registry::new();
        const OVERFLOW: usize = 8;
        // All in one shard: ids congruent mod REG_SHARDS.
        let ids: Vec<u64> = (0..(TERMINAL_CAP_PER_SHARD + OVERFLOW) as u64)
            .map(|i| 5 + i * REG_SHARDS as u64)
            .collect();
        for &id in &ids {
            registry.finish(id, term(None));
        }
        let (live, terminal) = registry.counts();
        assert_eq!(live, 0);
        assert_eq!(terminal, TERMINAL_CAP_PER_SHARD, "cap must hold");
        for &id in &ids[..OVERFLOW] {
            assert!(
                matches!(registry.lookup(id), Lookup::Unknown),
                "oldest entries must have been evicted"
            );
        }
        for &id in &ids[OVERFLOW..] {
            assert!(
                matches!(registry.lookup(id), Lookup::Terminal { .. }),
                "newest entries must survive"
            );
        }
    }

    /// `cancel` must be tenant-scoped: another tenant's terminal job
    /// answers `forbidden`, an evicted/unknown id answers `unknown`.
    #[test]
    fn cancel_lookup_is_tenant_scoped() {
        let registry = Registry::new();
        registry.finish(1, term(None)); // owned by "acme"
        assert!(matches!(
            registry.cancel_lookup(1, "acme"),
            CancelLookup::Terminal(state) if state == "completed"
        ));
        assert!(matches!(
            registry.cancel_lookup(1, "zeta"),
            CancelLookup::Forbidden
        ));
        assert!(matches!(
            registry.cancel_lookup(99, "acme"),
            CancelLookup::Unknown
        ));
    }

    /// Re-finishing an id (journal replay rediscovering a done record)
    /// must not double-count it in the eviction order.
    #[test]
    fn refinishing_a_job_does_not_duplicate_eviction_order() {
        let registry = Registry::new();
        registry.finish(3, term(None));
        registry.finish(3, term(Some("second verdict")));
        let (_, terminal) = registry.counts();
        assert_eq!(terminal, 1);
        match registry.lookup(3) {
            Lookup::Terminal { ok, error, .. } => {
                assert!(!ok, "latest verdict wins");
                assert_eq!(error.as_deref(), Some("second verdict"));
            }
            _ => panic!("job 3 must be terminal"),
        }
    }
}
