//! The daemon: a blocking TCP accept loop, per-connection reader
//! threads, and per-job status pumps. No async runtime — the
//! concurrency story is the same hand-rolled threads-and-locks the rest
//! of the workspace uses.
//!
//! ## Threading model
//!
//! * **Accept loop** (the thread calling [`Daemon::run`]): nonblocking
//!   accept + short sleep, so it can poll the drain/SIGTERM flags.
//! * **One reader thread per connection**: parses request lines and
//!   answers everything except job completion inline. Responses go
//!   through a mutex-guarded writer clone of the stream, because…
//! * **One pump thread per submitted job** shares that writer: it
//!   streams `status` heartbeats while the job is queued/running and
//!   the final `done` event, concurrently with the reader answering new
//!   requests on the same connection.
//!
//! ## Drain
//!
//! A `drain` request (or SIGTERM, via [`crate::signal`]) stops
//! admission and lets every admitted job finish: the engine's own
//! shutdown drains the queue, the pumps deliver each job's `done`, the
//! drain caller gets the final aggregate stats, and [`Daemon::run`]
//! returns them. New submissions during the drain are rejected with
//! reason `"draining"`. Concurrent drains are safe — the engine's
//! shutdown snapshot is taken exactly once.

use std::collections::HashMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use torus_service::{
    Engine, EngineConfig, JobEvent, JobHandle, JobResult, JobStatus, ServiceStats, SubmitError,
};

use crate::checksum;
use crate::journal::{Journal, JournalConfig};
use crate::json::Json;
use crate::proto::{self, Request, MAX_LINE_BYTES};
use crate::signal;
use crate::spec::JobSpec;

/// Daemon sizing and behavior knobs.
#[derive(Clone, Debug)]
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Daemon::local_addr`]). Default `127.0.0.1:0`.
    pub addr: String,
    /// The engine the daemon fronts.
    pub engine: EngineConfig,
    /// How often pumps poll job status (and readers poll shutdown).
    pub status_poll: Duration,
    /// Resend the current status every this many polls, so a client
    /// watching a long-queued job sees liveness, not silence.
    pub heartbeat_polls: u32,
    /// Write-ahead admission journal. `Some` makes every admission
    /// durable (fsync'd before the client hears `accepted`) and lets
    /// [`Daemon::bind`] recover accepted-but-unfinished jobs from a
    /// previous process's journal directory. Default: none.
    pub journal: Option<JournalConfig>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            engine: EngineConfig::default(),
            status_poll: Duration::from_millis(2),
            heartbeat_polls: 250,
            journal: None,
        }
    }
}

/// What the daemon knows about a job id, for `status` lookups.
enum RegEntry {
    /// A job this process admitted or replayed; terminal answers read
    /// through the handle.
    Live(JobHandle),
    /// A terminal job reconstructed from the journal — this process
    /// never executed it, only its recorded outcome survives.
    Recovered {
        ok: bool,
        degraded: bool,
        checksum: Option<String>,
        error: Option<String>,
    },
}

struct DaemonShared {
    engine: Engine,
    /// Admission stopped (drain op or SIGTERM); accept loop exits.
    draining: AtomicBool,
    /// Engine fully drained; connection readers must exit.
    closed: AtomicBool,
    status_poll: Duration,
    heartbeat_polls: u32,
    /// The write-ahead admission journal, when configured.
    journal: Option<Arc<Journal>>,
    /// Every job id this daemon can answer `status` for.
    registry: Mutex<HashMap<u64, RegEntry>>,
}

fn lk<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A bound, not-yet-running daemon.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<DaemonShared>,
}

impl Daemon {
    /// Binds the listener and starts the engine (drivers spawn now;
    /// they idle until jobs arrive).
    ///
    /// With a journal configured this also replays the journal
    /// directory: jobs `accepted` but never `done` by a previous
    /// process are re-enqueued under their original ids (exactly once —
    /// a recorded `done` suppresses the re-run), and terminal pre-crash
    /// ids become answerable via the `status` op. A corrupt journal
    /// fails the bind with [`ErrorKind::InvalidData`] rather than
    /// silently dropping records.
    pub fn bind(config: DaemonConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let mut engine_config = config.engine;
        let opened = match config.journal {
            Some(journal_config) => {
                let (journal, recovery) = Journal::open(journal_config)
                    .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
                let journal = Arc::new(journal);
                let hook_journal = Arc::clone(&journal);
                engine_config = engine_config
                    .with_event_hook(Arc::new(move |event| journal_hook(&hook_journal, event)));
                Some((journal, recovery))
            }
            None => None,
        };
        let engine = Engine::new(engine_config);
        let mut registry = HashMap::new();
        let journal = opened.map(|(journal, recovery)| {
            engine.reserve_ids_through(recovery.max_job_id);
            for done in recovery.terminal {
                registry.insert(
                    done.job_id,
                    RegEntry::Recovered {
                        ok: done.ok,
                        degraded: done.degraded,
                        checksum: done.checksum,
                        error: done.error,
                    },
                );
            }
            for job in recovery.pending {
                match JobSpec::from_json(&job.spec) {
                    Ok(spec) => {
                        if let Ok(handle) = engine.resubmit_as(
                            &job.tenant,
                            job.job_id,
                            spec.torus_shape(),
                            spec.payload,
                            spec.runtime_config(),
                        ) {
                            registry.insert(job.job_id, RegEntry::Live(handle));
                        }
                    }
                    Err(e) => {
                        // An unparseable recovered spec cannot re-run;
                        // close it out so it stops replaying forever.
                        let error = format!("recovered spec invalid: {e}");
                        let _ = journal.record_done(job.job_id, false, false, None, Some(&error));
                        registry.insert(
                            job.job_id,
                            RegEntry::Recovered {
                                ok: false,
                                degraded: false,
                                checksum: None,
                                error: Some(error),
                            },
                        );
                    }
                }
            }
            journal
        });
        Ok(Self {
            listener,
            shared: Arc::new(DaemonShared {
                engine,
                draining: AtomicBool::new(false),
                closed: AtomicBool::new(false),
                status_poll: config.status_poll,
                heartbeat_polls: config.heartbeat_polls.max(1),
                journal,
                registry: Mutex::new(registry),
            }),
        })
    }

    /// The actually-bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Requests a drain as if a client had sent `drain` — used to stop
    /// a daemon from the thread that owns it.
    pub fn request_drain(&self) {
        self.shared.draining.store(true, Ordering::SeqCst);
    }

    /// Serves until drained (by a `drain` request, [`request_drain`],
    /// or SIGTERM), then returns the final aggregate stats. Installs
    /// the SIGTERM flag handler.
    ///
    /// [`request_drain`]: Daemon::request_drain
    pub fn run(self) -> ServiceStats {
        signal::install();
        self.listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        loop {
            if signal::triggered() {
                self.shared.draining.store(true, Ordering::SeqCst);
            }
            if self.shared.draining.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    conns.push(
                        std::thread::Builder::new()
                            .name("serviced-conn".to_string())
                            .spawn(move || handle_connection(stream, &shared))
                            .expect("spawn connection thread"),
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(self.shared.status_poll.max(Duration::from_millis(2)));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
        // Idempotent: if a drain request already shut the engine down,
        // this returns the same frozen snapshot.
        let stats = self.shared.engine.shutdown();
        self.shared.closed.store(true, Ordering::SeqCst);
        for conn in conns {
            let _ = conn.join();
        }
        stats
    }

    /// Convenience for tests and embedders: run on a background thread,
    /// returning the bound address and the join handle for the final
    /// stats.
    pub fn spawn(config: DaemonConfig) -> io::Result<(SocketAddr, JoinHandle<ServiceStats>)> {
        let daemon = Self::bind(config)?;
        let addr = daemon.local_addr()?;
        let handle = std::thread::Builder::new()
            .name("serviced-accept".to_string())
            .spawn(move || daemon.run())
            .expect("spawn daemon thread");
        Ok((addr, handle))
    }
}

/// One line read from the connection.
enum Line {
    Ok(String),
    /// Peer closed (EOF).
    Eof,
    /// The daemon finished draining; stop serving.
    Closed,
    /// The peer exceeded [`MAX_LINE_BYTES`] without a newline.
    TooLong,
    /// Hard I/O failure.
    Err,
}

/// A bounded, shutdown-aware line reader over the raw stream. BufReader
/// would work for the happy path but makes the length cap and the
/// periodic closed-flag check awkward; this is ~30 lines of explicit
/// state instead.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl LineReader {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            buf: Vec::new(),
        }
    }

    fn read_line(&mut self, closed: &AtomicBool) -> Line {
        loop {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=pos).collect();
                return Line::Ok(String::from_utf8_lossy(&line[..pos]).into_owned());
            }
            if self.buf.len() > MAX_LINE_BYTES {
                return Line::TooLong;
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Line::Eof,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    if closed.load(Ordering::SeqCst) {
                        return Line::Closed;
                    }
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return Line::Err,
            }
        }
    }
}

/// Writes one response line; `false` means the client is gone.
fn send(writer: &Mutex<TcpStream>, event: &Json) -> bool {
    let mut line = event.dump();
    line.push('\n');
    let mut stream = lk(writer);
    stream.write_all(line.as_bytes()).is_ok()
}

fn handle_connection(stream: TcpStream, shared: &Arc<DaemonShared>) {
    // The read timeout doubles as the shutdown poll interval.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let writer = match stream.try_clone() {
        Ok(w) => Arc::new(Mutex::new(w)),
        Err(_) => return,
    };
    let mut reader = LineReader::new(stream);
    let mut tenant: Option<String> = None;
    let mut pumps: Vec<JoinHandle<()>> = Vec::new();
    loop {
        match reader.read_line(&shared.closed) {
            Line::Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                if !dispatch(&line, &writer, &mut tenant, &mut pumps, shared) {
                    break;
                }
            }
            Line::TooLong => {
                let _ = send(
                    &writer,
                    &proto::error_event(&format!("request line exceeds {MAX_LINE_BYTES} bytes")),
                );
                break;
            }
            Line::Eof | Line::Closed | Line::Err => break,
        }
    }
    // A mid-job disconnect lands here with pumps still streaming; their
    // writes fail and they exit — the jobs themselves run to completion
    // in the engine, so no queue or in-flight slot leaks.
    for pump in pumps {
        let _ = pump.join();
    }
}

/// Handles one request; `false` ends the connection.
fn dispatch(
    line: &str,
    writer: &Arc<Mutex<TcpStream>>,
    tenant: &mut Option<String>,
    pumps: &mut Vec<JoinHandle<()>>,
    shared: &Arc<DaemonShared>,
) -> bool {
    let request = match proto::parse_request(line) {
        Ok(r) => r,
        // Malformed lines get a reply but keep the connection: a
        // client with one buggy request shouldn't lose its jobs.
        Err(e) => return send(writer, &proto::error_event(&e.message)),
    };
    match request {
        Request::Hello { tenant: t } => {
            let event = proto::hello_ok(&t);
            *tenant = Some(t);
            send(writer, &event)
        }
        Request::Ping => send(writer, &proto::pong()),
        Request::Schema => send(writer, &proto::schema(JobSpec::schema())),
        Request::Validate { spec } => match JobSpec::from_json(&spec) {
            Ok(s) => send(writer, &proto::valid(s.to_json())),
            Err(e) => send(writer, &proto::rejected("invalid_spec", &e.to_string())),
        },
        Request::Stats => {
            let journal_stats = shared.journal.as_deref().map(Journal::stats);
            send(
                writer,
                &proto::stats(
                    &shared.engine.stats(),
                    &shared.engine.tenant_stats(),
                    journal_stats.as_ref(),
                ),
            )
        }
        Request::Status { job_id } => send(writer, &status_reply(shared, job_id)),
        Request::Drain => {
            shared.draining.store(true, Ordering::SeqCst);
            // Blocks until every admitted job has finished; pumps send
            // their `done` events before this returns the final books.
            let stats = shared.engine.shutdown();
            send(writer, &proto::drained(&stats))
        }
        Request::Submit { spec } => {
            if shared.draining.load(Ordering::SeqCst) {
                return send(
                    writer,
                    &proto::rejected("draining", "daemon is draining; no new jobs"),
                );
            }
            let Some(tenant) = tenant.as_deref() else {
                return send(
                    writer,
                    &proto::rejected("unauthenticated", "send hello with a tenant first"),
                );
            };
            let spec = match JobSpec::from_json(&spec) {
                Ok(s) => s,
                Err(e) => return send(writer, &proto::rejected("invalid_spec", &e.to_string())),
            };
            let submitted = shared.engine.submit_as(
                tenant,
                spec.torus_shape(),
                spec.payload,
                spec.runtime_config(),
            );
            match submitted {
                Ok(handle) => {
                    // Durability barrier: the admission is fsync'd to the
                    // journal before the client ever hears `accepted`, so
                    // a crash from here on cannot lose the job.
                    if let Some(journal) = &shared.journal {
                        if let Err(e) = journal.record_accepted(handle.id(), tenant, spec.to_json())
                        {
                            eprintln!("torus-serviced: journal append failed: {e}");
                        }
                    }
                    lk(&shared.registry).insert(handle.id(), RegEntry::Live(handle.clone()));
                    if !send(writer, &proto::accepted(handle.id())) {
                        return false;
                    }
                    let writer = Arc::clone(writer);
                    let shared = Arc::clone(shared);
                    pumps.push(
                        std::thread::Builder::new()
                            .name("serviced-pump".to_string())
                            .spawn(move || pump_job(handle, &writer, &shared))
                            .expect("spawn pump thread"),
                    );
                    true
                }
                Err(SubmitError::QueueFull {
                    depth,
                    retry_after_ms,
                }) => {
                    journal_reject(shared, tenant, "queue_full");
                    send(
                        writer,
                        &proto::rejected_backoff(
                            "queue_full",
                            &format!("global queue at depth {depth}"),
                            retry_after_ms,
                        ),
                    )
                }
                Err(SubmitError::TenantQueueFull {
                    tenant,
                    max_queued,
                    retry_after_ms,
                }) => {
                    journal_reject(shared, &tenant, "tenant_queue_full");
                    send(
                        writer,
                        &proto::rejected_backoff(
                            "tenant_queue_full",
                            &format!("tenant {tenant:?} at its queued-jobs quota ({max_queued})"),
                            retry_after_ms,
                        ),
                    )
                }
                Err(SubmitError::RateLimited {
                    tenant,
                    retry_after_ms,
                }) => {
                    journal_reject(shared, &tenant, "rate_limited");
                    send(
                        writer,
                        &proto::rejected_backoff(
                            "rate_limited",
                            &format!("tenant {tenant:?} is over its admission rate"),
                            retry_after_ms,
                        ),
                    )
                }
                Err(SubmitError::ShuttingDown) => send(
                    writer,
                    &proto::rejected("draining", "daemon is draining; no new jobs"),
                ),
            }
        }
    }
}

/// Appends a `rejected` record when the daemon journals.
fn journal_reject(shared: &DaemonShared, tenant: &str, reason: &str) {
    if let Some(journal) = &shared.journal {
        let _ = journal.record_rejected(tenant, reason);
    }
}

/// The engine's event hook on a journaling daemon: every job start and
/// terminal outcome (with its FNV-1a delivery checksum) goes to disk,
/// from the driver thread that owns the transition.
fn journal_hook(journal: &Journal, event: JobEvent<'_>) {
    match event {
        JobEvent::Started { job_id, .. } => {
            let _ = journal.record_started(job_id);
        }
        JobEvent::Finished {
            job_id,
            status,
            result,
            ..
        } => {
            let report = result.report.as_ref();
            let degraded = report.is_some_and(|r| r.degraded.is_some());
            let checksum = match (&result.deliveries, degraded) {
                (Some(deliveries), false) => {
                    Some(checksum::to_hex(checksum::delivery_checksum(deliveries)))
                }
                _ => None,
            };
            let _ = journal.record_done(
                job_id,
                status == JobStatus::Completed,
                degraded,
                checksum.as_deref(),
                result.error.as_deref(),
            );
        }
    }
}

/// Answers a `status` lookup from the registry: live jobs through their
/// handle, pre-crash terminal jobs from the recovered journal index.
fn status_reply(shared: &DaemonShared, job_id: u64) -> Json {
    let registry = lk(&shared.registry);
    match registry.get(&job_id) {
        None => proto::job_status(job_id, "unknown", None, None, None, None, false),
        Some(RegEntry::Recovered {
            ok,
            degraded,
            checksum,
            error,
        }) => proto::job_status(
            job_id,
            if *ok { "completed" } else { "failed" },
            Some(*ok),
            Some(*degraded),
            checksum.as_deref(),
            error.as_deref(),
            true,
        ),
        Some(RegEntry::Live(handle)) => match handle.try_status() {
            JobStatus::Queued => proto::job_status(job_id, "queued", None, None, None, None, false),
            JobStatus::Running => {
                proto::job_status(job_id, "running", None, None, None, None, false)
            }
            JobStatus::Completed | JobStatus::Failed => {
                // Terminal, so `wait` returns without blocking.
                let result = handle.wait();
                let report = result.report.as_ref();
                let degraded = report.is_some_and(|r| r.degraded.is_some());
                let checksum = match (&result.deliveries, degraded) {
                    (Some(deliveries), false) => {
                        Some(checksum::to_hex(checksum::delivery_checksum(deliveries)))
                    }
                    _ => None,
                };
                let ok = result.error.is_none();
                proto::job_status(
                    job_id,
                    if ok { "completed" } else { "failed" },
                    Some(ok),
                    Some(degraded),
                    checksum.as_deref(),
                    result.error.as_deref(),
                    false,
                )
            }
        },
    }
}

/// Streams one job's lifecycle to the client: `status` on every
/// transition (plus periodic heartbeats), then the final `done`.
fn pump_job(handle: JobHandle, writer: &Mutex<TcpStream>, shared: &DaemonShared) {
    let id = handle.id();
    let mut last_state = "";
    let mut polls = 0u32;
    loop {
        let state = match handle.try_status() {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Completed | JobStatus::Failed => break,
        };
        if state != last_state || polls.is_multiple_of(shared.heartbeat_polls) {
            if !send(writer, &proto::status(id, state)) {
                return; // client gone; the job still finishes engine-side
            }
            last_state = state;
        }
        polls += 1;
        std::thread::sleep(shared.status_poll);
    }
    let result = handle.wait();
    let _ = send(writer, &done_event(&result));
}

/// The `done` event: a compact job summary plus the delivery checksum
/// (clean completions only — degraded runs drop dead-node blocks, so
/// their digest intentionally stays null rather than faking a match).
fn done_event(result: &JobResult) -> Json {
    let report = result.report.as_ref();
    let degraded = report.is_some_and(|r| r.degraded.is_some());
    let checksum = match (&result.deliveries, degraded) {
        (Some(deliveries), false) => {
            Json::str(checksum::to_hex(checksum::delivery_checksum(deliveries)))
        }
        _ => Json::Null,
    };
    Json::obj([
        ("ev", Json::str("done")),
        ("job_id", Json::u64(result.job_id)),
        ("ok", Json::Bool(result.error.is_none())),
        ("degraded", Json::Bool(degraded)),
        ("verified", Json::Bool(report.is_some_and(|r| r.verified))),
        ("cache_hit", Json::Bool(result.cache_hit)),
        ("wire_bytes", Json::u64(report.map_or(0, |r| r.wire_bytes))),
        ("checksum", checksum),
        (
            "error",
            match &result.error {
                Some(e) => Json::str(e.clone()),
                None => Json::Null,
            },
        ),
    ])
}
